(* chipmunk-cli: command-line front end for the Chipmunk crash-consistency
   testing framework.

     chipmunk-cli list                        file systems and catalogued bugs
     chipmunk-cli ace --fs nova --suite seq1  run an ACE suite
     chipmunk-cli fuzz --fs winefs --execs N  run a fuzzing campaign
     chipmunk-cli bug --no 4                  reproduce one catalogued bug
     chipmunk-cli minimize report.json        shrink a finding to a reproducer
     chipmunk-cli reproduce bug.repro.json    rebuild and re-verify a reproducer

   The campaign-style subcommands (ace, fuzz, replay) parse one shared
   execution/budget flag table — --cap, --no-dedup, --no-vcache, --jobs,
   --max-seconds, --stop-after, --minimize — into the Chipmunk.Run records
   instead of keeping per-subcommand copies. *)

open Cmdliner

let fs_names = List.map fst Catalog.clean_drivers

let driver_of_name ~buggy name =
  if buggy then
    match Catalog.buggy_driver name with
    | Some mk -> Ok (mk ())
    | None -> Error (Printf.sprintf "unknown file system %S" name)
  else
    match List.assoc_opt name Catalog.clean_drivers with
    | Some mk -> Ok (mk ())
    | None -> Error (Printf.sprintf "unknown file system %S" name)

let fs_arg =
  let doc = "File system under test: " ^ String.concat ", " fs_names ^ "." in
  Arg.(value & opt string "nova" & info [ "fs" ] ~docv:"FS" ~doc)

let buggy_arg =
  let doc = "Arm the catalogued bugs of the chosen file system." in
  Arg.(value & flag & info [ "buggy" ] ~doc)

(* --- The shared execution/budget flag table --- *)

type common = {
  cap : int;  (* 0 = subcommand default *)
  no_dedup : bool;
  no_vcache : bool;
  vcache_keys : Chipmunk.Vcache.keying;
  jobs : int;
  max_seconds : float option;
  stop_after : int option;
  minimize : bool;
}

let cap_arg =
  let doc =
    "Cap on in-flight writes replayed per crash state (0 = the subcommand default: \
     exhaustive for ace/replay, 2 for fuzz)."
  in
  Arg.(value & opt int 0 & info [ "cap" ] ~docv:"N" ~doc)

let no_dedup_arg =
  let doc = "Disable the crash-state dedup cache (mount and check every enumerated state)." in
  Arg.(value & flag & info [ "no-dedup" ] ~doc)

let no_vcache_arg =
  let doc =
    "Disable the campaign-wide verdict cache (re-run mount+check even for crash states \
     equivalent to ones already checked in other workloads). Findings are identical either \
     way."
  in
  Arg.(value & flag & info [ "no-vcache" ] ~doc)

let vcache_keys_arg =
  let doc =
    "Verdict-cache key scheme: $(b,digest) reads the oracle's incremental boundary \
     digests (O(1) per phase); $(b,serialized) re-serializes whole oracle trees (the \
     historical scheme, kept as a differential baseline). Findings are identical under \
     either."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("digest", Chipmunk.Vcache.Oracle_digest);
             ("serialized", Chipmunk.Vcache.Tree_serialization);
           ])
        Chipmunk.Vcache.Oracle_digest
    & info [ "vcache-keys" ] ~docv:"SCHEME" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the campaign (0 = one per core). 1 runs in the calling domain; \
     findings are identical at any job count."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let max_seconds_arg =
  let doc = "Wall-clock budget in seconds (default: unlimited for ace, 30 for fuzz)." in
  Arg.(value & opt (some float) None & info [ "max-seconds"; "seconds" ] ~docv:"S" ~doc)

let stop_after_arg =
  let doc = "Stop after this many unique findings." in
  Arg.(value & opt (some int) None & info [ "stop-after" ] ~docv:"N" ~doc)

let minimize_flag =
  let doc = "Minimize each finding with the delta-debugging shrinker before printing." in
  Arg.(value & flag & info [ "minimize" ] ~doc)

let common_term =
  let mk cap no_dedup no_vcache vcache_keys jobs max_seconds stop_after minimize =
    { cap; no_dedup; no_vcache; vcache_keys; jobs; max_seconds; stop_after; minimize }
  in
  Term.(
    const mk $ cap_arg $ no_dedup_arg $ no_vcache_arg $ vcache_keys_arg $ jobs_arg
    $ max_seconds_arg $ stop_after_arg $ minimize_flag)

(* The shared "cache:" stats footer line: hit counts and rates over the
   enumerated crash states. *)
let cache_line ~crash_states ~dedup_hits ~vcache_hits =
  let rate n = if crash_states = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int crash_states in
  Printf.printf "cache: dedup %d hits (%.1f%%), vcache %d hits (%.1f%%)\n" dedup_hits
    (rate dedup_hits) vcache_hits (rate vcache_hits)

(* Harness opts from the shared flags; [default_cap] is the subcommand's
   cap when --cap is 0 (None = exhaustive). *)
let opts_of_common ?default_cap (c : common) =
  let cap = if c.cap <= 0 then default_cap else Some c.cap in
  {
    Chipmunk.Harness.default_opts with
    cap;
    dedup_states = not c.no_dedup;
    vcache_keying = c.vcache_keys;
  }

let list_cmd =
  let run () =
    Printf.printf "File systems:\n";
    List.iter
      (fun (name, mk) ->
        let d = mk () in
        Printf.printf "  %-12s %-6s atomic-data=%b device=%d bytes\n" name
          (match d.Vfs.Driver.consistency with
          | Vfs.Driver.Strong -> "strong"
          | Vfs.Driver.Weak -> "weak")
          d.Vfs.Driver.atomic_data d.Vfs.Driver.device_size)
      Catalog.clean_drivers;
    Printf.printf "\nCatalogued bugs (%d instances, %d unique):\n" (List.length Catalog.all)
      Catalog.unique_bugs;
    List.iter
      (fun (b : Catalog.t) ->
        Printf.printf "  %2d %-12s [%s] %s\n" b.Catalog.bug_no b.Catalog.fs
          (Catalog.bug_type_label b.Catalog.bug_type)
          b.Catalog.consequence)
      Catalog.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List file systems and catalogued bugs")
    Term.(const (fun () -> run (); 0) $ const ())

let suite_arg =
  let doc = "ACE suite: seq1, seq2 or seq3." in
  Arg.(value & opt string "seq1" & info [ "suite" ] ~docv:"SUITE" ~doc)

let max_workloads_arg =
  let doc = "Stop after this many workloads (0 = whole suite)." in
  Arg.(value & opt int 0 & info [ "max-workloads" ] ~docv:"N" ~doc)

let ace_cmd =
  let run fs buggy suite max_workloads (c : common) =
    match driver_of_name ~buggy fs with
    | Error e ->
      prerr_endline e;
      1
    | Ok driver ->
      let mode =
        if driver.Vfs.Driver.consistency = Vfs.Driver.Weak then Ace.Fsync else Ace.Strong
      in
      let workloads =
        match suite with
        | "seq1" -> Ok (Ace.seq1 mode)
        | "seq2" -> Ok (Ace.seq2 mode)
        | "seq3" -> Ok (Ace.seq3_metadata mode)
        | s -> Error (Printf.sprintf "unknown suite %S" s)
      in
      (match workloads with
      | Error e ->
        prerr_endline e;
        1
      | Ok workloads ->
        let max_workloads = if max_workloads = 0 then None else Some max_workloads in
        let opts = opts_of_common c in
        let minimize =
          if c.minimize then Some (Shrink.Minimize.rewrite ~opts driver) else None
        in
        let exec =
          Chipmunk.Run.exec ~opts ?minimize ~jobs:c.jobs ~use_vcache:(not c.no_vcache) ()
        in
        let budget =
          Chipmunk.Run.budget ?max_seconds:c.max_seconds ?stop_after_findings:c.stop_after
            ?max_workloads ()
        in
        let r = Chipmunk.Campaign.run ~exec ~budget driver workloads in
        Printf.printf
          "%s/%s: %d workloads, %d crash points, %d crash states, %.2fs, max in-flight %d\n"
          fs suite r.Chipmunk.Campaign.workloads_run r.Chipmunk.Campaign.crash_points
          r.Chipmunk.Campaign.crash_states r.Chipmunk.Campaign.elapsed
          r.Chipmunk.Campaign.max_in_flight;
        cache_line ~crash_states:r.Chipmunk.Campaign.crash_states
          ~dedup_hits:r.Chipmunk.Campaign.dedup_hits
          ~vcache_hits:r.Chipmunk.Campaign.vcache_hits;
        if r.Chipmunk.Campaign.events = [] then print_endline "no bugs found"
        else begin
          Printf.printf "%d unique finding(s):\n" (List.length r.Chipmunk.Campaign.events);
          List.iter
            (fun (e : Chipmunk.Campaign.event) ->
              Printf.printf "\n--- found in %s after %.2fs ---\n%s" e.Chipmunk.Campaign.workload_name
                e.Chipmunk.Campaign.elapsed
                (Format.asprintf "%a" Chipmunk.Report.pp e.Chipmunk.Campaign.report))
            r.Chipmunk.Campaign.events
        end;
        0)
  in
  Cmd.v
    (Cmd.info "ace" ~doc:"Run an ACE workload suite under Chipmunk")
    Term.(const run $ fs_arg $ buggy_arg $ suite_arg $ max_workloads_arg $ common_term)

let execs_arg =
  let doc = "Maximum fuzzer executions." in
  Arg.(value & opt int 500 & info [ "execs" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Fuzzer RNG seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let save_arg =
  let doc =
    "Directory to save each finding's workload and report JSON into (created if missing)."
  in
  Arg.(value & opt (some string) None & info [ "save" ] ~docv:"DIR" ~doc)

let fuzz_cmd =
  let run fs buggy execs seed save (c : common) =
    match driver_of_name ~buggy fs with
    | Error e ->
      prerr_endline e;
      1
    | Ok driver ->
      (* The paper runs the fuzzer with a replayed-writes cap of 2. *)
      let opts = opts_of_common ~default_cap:2 c in
      let exec = Chipmunk.Run.exec ~opts ~jobs:c.jobs ~use_vcache:(not c.no_vcache) () in
      let budget =
        Chipmunk.Run.budget ~max_execs:execs
          ~max_seconds:(Option.value c.max_seconds ~default:30.0)
          ?stop_after_findings:c.stop_after ()
      in
      let config = Fuzz.Fuzzer.config ~rng_seed:seed ~budget ~exec () in
      let r = Fuzz.Fuzzer.run ~config driver in
      Printf.printf
        "%s: %d execs, %d crash states, coverage %d, corpus %d, %.2fs (jobs=%d)\n" fs
        r.Fuzz.Fuzzer.execs r.Fuzz.Fuzzer.crash_states r.Fuzz.Fuzzer.coverage
        r.Fuzz.Fuzzer.corpus_size r.Fuzz.Fuzzer.elapsed c.jobs;
      cache_line ~crash_states:r.Fuzz.Fuzzer.crash_states
        ~dedup_hits:r.Fuzz.Fuzzer.dedup_hits ~vcache_hits:r.Fuzz.Fuzzer.vcache_hits;
      Printf.printf "%d unique finding(s) in %d cluster(s)\n"
        (List.length r.Fuzz.Fuzzer.events)
        (List.length r.Fuzz.Fuzzer.clusters);
      (* One line per unique finding; every field here is deterministic
         across job counts, which is what the CI fuzz-parallel smoke test
         diffs. *)
      List.iter
        (fun (e : Fuzz.Fuzzer.event) ->
          Printf.printf "finding %s at-exec %d\n" e.Fuzz.Fuzzer.fingerprint
            e.Fuzz.Fuzzer.at_exec)
        r.Fuzz.Fuzzer.events;
      if c.minimize then
        List.iteri
          (fun i (cl, o) ->
            match o with
            | None ->
              Printf.printf "  cluster %d (%d reports): %s [did not reproduce]\n" i
                (List.length cl.Fuzz.Triage.members)
                (Chipmunk.Report.summary cl.Fuzz.Triage.representative)
            | Some (o : Shrink.Minimize.outcome) ->
              Printf.printf "  cluster %d (%d reports): %s [%d -> %d ops, %d -> %d writes]\n" i
                (List.length cl.Fuzz.Triage.members)
                (Chipmunk.Report.summary cl.Fuzz.Triage.representative)
                o.Shrink.Minimize.stats.Shrink.Minimize.ops_before
                o.Shrink.Minimize.stats.Shrink.Minimize.ops_after
                o.Shrink.Minimize.stats.Shrink.Minimize.subset_before
                o.Shrink.Minimize.stats.Shrink.Minimize.subset_after)
          (Fuzz.Triage.minimize ~opts driver r.Fuzz.Fuzzer.clusters)
      else
        List.iteri
          (fun i (cl : Fuzz.Triage.cluster) ->
            Printf.printf "  cluster %d (%d reports): %s\n" i (List.length cl.Fuzz.Triage.members)
              (Chipmunk.Report.summary cl.Fuzz.Triage.representative))
          r.Fuzz.Fuzzer.clusters;
      (match save with
      | None -> ()
      | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iteri
          (fun i (e : Fuzz.Fuzzer.event) ->
            let path = Filename.concat dir (Printf.sprintf "finding-%02d.workload" i) in
            Vfs.Workload_io.save ~path e.Fuzz.Fuzzer.workload;
            let rpath = Filename.concat dir (Printf.sprintf "finding-%02d.report.json" i) in
            Shrink.Artifact.save ~path:rpath
              (Shrink.Artifact.of_report e.Fuzz.Fuzzer.report);
            Printf.printf "saved %s and %s\n" path rpath)
          r.Fuzz.Fuzzer.events);
      0
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Run a gray-box fuzzing campaign under Chipmunk")
    Term.(const run $ fs_arg $ buggy_arg $ execs_arg $ seed_arg $ save_arg $ common_term)

let file_arg =
  let doc = "Workload file (one syscall per line; see Vfs.Workload_io)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let replay_cmd =
  let run fs buggy (c : common) file =
    match driver_of_name ~buggy fs with
    | Error e ->
      prerr_endline e;
      1
    | Ok driver -> (
      match Vfs.Workload_io.load ~path:file with
      | Error e ->
        Printf.eprintf "cannot load %s: %s\n" file e;
        1
      | Ok workload ->
        let exec =
          Chipmunk.Run.exec ~opts:(opts_of_common c) ~use_vcache:(not c.no_vcache) ()
        in
        let r = Chipmunk.Run.workload ~exec driver workload in
        Printf.printf "%s: %d crash states checked\n" fs
          r.Chipmunk.Harness.stats.Chipmunk.Harness.crash_states;
        cache_line ~crash_states:r.Chipmunk.Harness.stats.Chipmunk.Harness.crash_states
          ~dedup_hits:r.Chipmunk.Harness.stats.Chipmunk.Harness.dedup_hits
          ~vcache_hits:r.Chipmunk.Harness.stats.Chipmunk.Harness.vcache_hits;
        (match r.Chipmunk.Harness.reports with
        | [] ->
          print_endline "crash consistent";
          0
        | reports ->
          List.iter (fun rep -> Format.printf "%a" Chipmunk.Report.pp rep) reports;
          0))
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a saved workload file under Chipmunk")
    Term.(const run $ fs_arg $ buggy_arg $ common_term $ file_arg)

let bug_no_arg =
  let doc = "Catalogued bug number (paper Table 1)." in
  Arg.(required & opt (some int) None & info [ "no" ] ~docv:"N" ~doc)

let bug_cmd =
  let run no =
    match List.find_opt (fun (b : Catalog.t) -> b.Catalog.bug_no = no) Catalog.all with
    | None ->
      Printf.eprintf "no catalogued bug %d\n" no;
      1
    | Some b ->
      Printf.printf "Bug %d (%s, %s): %s\naffected syscalls: %s\n\n" b.Catalog.bug_no b.Catalog.fs
        (Catalog.bug_type_label b.Catalog.bug_type)
        b.Catalog.consequence
        (String.concat ", " b.Catalog.affected);
      let r = Chipmunk.Harness.test_workload (b.Catalog.driver ()) b.Catalog.trigger in
      Printf.printf "trigger workload checked %d crash states\n"
        r.Chipmunk.Harness.stats.Chipmunk.Harness.crash_states;
      (match r.Chipmunk.Harness.reports with
      | [] ->
        print_endline "bug NOT reproduced";
        1
      | rep :: _ ->
        Format.printf "%a" Chipmunk.Report.pp rep;
        0)
  in
  Cmd.v (Cmd.info "bug" ~doc:"Reproduce one catalogued bug") Term.(const run $ bug_no_arg)

(* --- minimize / reproduce --- *)

let report_file_arg =
  let doc = "Report or reproducer JSON (a chipmunk-cli minimize artifact, a fuzz --save \
             report, or any Report.to_json document)." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let fs_opt_arg =
  let doc = "File system driver to use (default: the one named in the report)." in
  Arg.(value & opt (some string) None & info [ "fs" ] ~docv:"FS" ~doc)

let bug_opt_arg =
  let doc =
    "Work on catalogued bug N: run its trigger workload under its single-bug driver and \
     take the first finding, instead of reading FILE."
  in
  Arg.(value & opt (some int) None & info [ "bug" ] ~docv:"N" ~doc)

let out_arg =
  let doc = "Where to write the reproducer artifact (default: FILE.min.json or \
             bug-N.repro.json)." in
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"PATH" ~doc)

let expect_shrink_arg =
  let doc = "Fail unless the minimized workload is strictly shorter than the input's." in
  Arg.(value & flag & info [ "expect-shrink" ] ~doc)

let catalog_bug no =
  match List.find_opt (fun (b : Catalog.t) -> b.Catalog.bug_no = no) Catalog.all with
  | None -> Error (Printf.sprintf "no catalogued bug %d" no)
  | Some b -> Ok b

(* The driver + report + default artifact path a minimize/reproduce
   invocation names: either a catalogued bug's trigger finding under its
   single-bug driver, or a report file paired with its own (or the
   requested) file system. *)
let resolve_source ~file ~bug ~fs ~buggy ~opts =
  match (bug, file) with
  | Some no, _ ->
    Result.bind (catalog_bug no) (fun (b : Catalog.t) ->
        let driver = b.Catalog.driver () in
        let r = Chipmunk.Harness.test_workload ~opts driver b.Catalog.trigger in
        match r.Chipmunk.Harness.reports with
        | [] -> Error (Printf.sprintf "bug %d did not reproduce from its trigger" no)
        | rep :: _ -> Ok (driver, rep, Printf.sprintf "bug-%02d.repro.json" no))
  | None, Some file ->
    Result.bind (Shrink.Artifact.load ~path:file) (fun (a : Shrink.Artifact.t) ->
        let report = a.Shrink.Artifact.report in
        let fs = Option.value fs ~default:report.Chipmunk.Report.fs in
        Result.map
          (fun driver -> (driver, report, file ^ ".min.json"))
          (driver_of_name ~buggy fs))
  | None, None -> Error "pass a report FILE or --bug N"

let legacy_cap_arg =
  let doc = "Cap on in-flight writes replayed per crash state (0 = exhaustive)." in
  Arg.(value & opt int 0 & info [ "cap" ] ~docv:"N" ~doc)

let opts_of_cap cap =
  if cap <= 0 then Chipmunk.Harness.default_opts
  else { Chipmunk.Harness.default_opts with cap = Some cap }

let minimize_cmd =
  let run file bug fs buggy cap out expect_shrink =
    let opts = opts_of_cap cap in
    match resolve_source ~file ~bug ~fs ~buggy ~opts with
    | Error e ->
      prerr_endline e;
      1
    | Ok (driver, report, default_out) -> (
      let out = Option.value out ~default:default_out in
      match Shrink.Minimize.run ~opts driver report with
      | Error e ->
        prerr_endline e;
        1
      | Ok o ->
        let s = o.Shrink.Minimize.stats in
        Printf.printf
          "workload: %d -> %d ops; replayed writes: %d -> %d (%d recordings, %d \
           replay-cache hits, %d rebuilds)\n"
          s.Shrink.Minimize.ops_before s.Shrink.Minimize.ops_after
          s.Shrink.Minimize.subset_before s.Shrink.Minimize.subset_after
          s.Shrink.Minimize.harness_runs s.Shrink.Minimize.replay_probe_hits
          s.Shrink.Minimize.check_runs;
        let fp_preserved =
          Chipmunk.Report.fingerprint o.Shrink.Minimize.report
          = Chipmunk.Report.fingerprint report
        in
        let reverifies = Chipmunk.Reproduce.verify driver o.Shrink.Minimize.report in
        Printf.printf "fingerprint preserved: %b; reproducer re-verifies: %b\n" fp_preserved
          reverifies;
        Shrink.Artifact.save ~path:out (Shrink.Artifact.of_outcome o);
        Printf.printf "wrote %s\n" out;
        if not (fp_preserved && reverifies) then 1
        else if expect_shrink && s.Shrink.Minimize.ops_after >= s.Shrink.Minimize.ops_before
        then begin
          prerr_endline "--expect-shrink: workload did not get strictly shorter";
          1
        end
        else 0)
  in
  Cmd.v
    (Cmd.info "minimize"
       ~doc:"Shrink a finding to a minimal, replayable reproducer (delta debugging)")
    Term.(
      const run $ report_file_arg $ bug_opt_arg $ fs_opt_arg $ buggy_arg $ legacy_cap_arg
      $ out_arg $ expect_shrink_arg)

let reproduce_cmd =
  let run file bug fs buggy =
    match file with
    | None ->
      prerr_endline "pass a reproducer FILE";
      1
    | Some file -> (
      match Shrink.Artifact.load ~path:file with
      | Error e ->
        Printf.eprintf "cannot load %s: %s\n" file e;
        1
      | Ok a -> (
        let report = a.Shrink.Artifact.report in
        let driver =
          match bug with
          | Some no -> Result.map (fun (b : Catalog.t) -> b.Catalog.driver ()) (catalog_bug no)
          | None ->
            let fs = Option.value fs ~default:report.Chipmunk.Report.fs in
            driver_of_name ~buggy fs
        in
        match driver with
        | Error e ->
          prerr_endline e;
          1
        | Ok driver -> (
          match Chipmunk.Reproduce.crash_state driver report with
          | Error e ->
            Printf.eprintf "cannot rebuild the crash state: %s\n" e;
            1
          | Ok cs ->
            let target = Chipmunk.Report.fingerprint report in
            let kinds = cs.Chipmunk.Reproduce.check () in
            let hit =
              List.exists
                (fun k ->
                  Chipmunk.Report.fingerprint { report with Chipmunk.Report.kind = k } = target)
                kinds
            in
            Format.printf "%a" Shrink.Artifact.pp a;
            if hit then begin
              print_endline "reproduced: crash state rebuilt and the finding re-verifies";
              0
            end
            else begin
              print_endline "NOT reproduced: crash state rebuilt but the check passes";
              1
            end)))
  in
  Cmd.v
    (Cmd.info "reproduce" ~doc:"Rebuild a reproducer's crash state and re-verify the finding")
    Term.(const run $ report_file_arg $ bug_opt_arg $ fs_opt_arg $ buggy_arg)

let () =
  let info = Cmd.info "chipmunk-cli" ~doc:"Crash-consistency testing for PM file systems" in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ list_cmd; ace_cmd; fuzz_cmd; bug_cmd; replay_cmd; minimize_cmd; reproduce_cmd ]))

module Syscall = Vfs.Syscall

type mode = Strong | Fsync

let files = [ "/foo"; "/bar"; "/A/foo"; "/A/bar" ]
let dirs = [ "/A"; "/B" ]

type write_kind = W_append | W_overwrite | W_extend
type falloc_range = F_inside | F_beyond

type core =
  | C_creat of string
  | C_mkdir of string
  | C_falloc of string * bool (* keep_size *) * falloc_range
  | C_write of string * write_kind
  | C_link of string * string
  | C_unlink of string
  | C_remove of string
  | C_rename of string * string
  | C_truncate of string * int
  | C_rmdir of string
  | C_setxattr of string * string
  | C_removexattr of string * string

let write_kind_to_string = function
  | W_append -> "append"
  | W_overwrite -> "overwrite"
  | W_extend -> "extend"

let core_to_string = function
  | C_creat f -> Printf.sprintf "creat(%s)" f
  | C_mkdir d -> Printf.sprintf "mkdir(%s)" d
  | C_falloc (f, keep, r) ->
    Printf.sprintf "falloc(%s,%s,%s)" f
      (if keep then "keep" else "grow")
      (match r with F_inside -> "inside" | F_beyond -> "beyond")
  | C_write (f, k) -> Printf.sprintf "write(%s,%s)" f (write_kind_to_string k)
  | C_link (s, d) -> Printf.sprintf "link(%s,%s)" s d
  | C_unlink f -> Printf.sprintf "unlink(%s)" f
  | C_remove p -> Printf.sprintf "remove(%s)" p
  | C_rename (s, d) -> Printf.sprintf "rename(%s,%s)" s d
  | C_truncate (f, n) -> Printf.sprintf "truncate(%s,%d)" f n
  | C_rmdir d -> Printf.sprintf "rmdir(%s)" d
  | C_setxattr (f, n) -> Printf.sprintf "setxattr(%s,%s)" f n
  | C_removexattr (f, n) -> Printf.sprintf "removexattr(%s,%s)" f n

let pairs l =
  List.concat_map (fun a -> List.filter_map (fun b -> if a = b then None else Some (a, b)) l) l

let core_ops =
  List.map (fun f -> C_creat f) files
  @ List.map (fun d -> C_mkdir d) dirs
  @ List.concat_map
      (fun f ->
        [
          C_falloc (f, true, F_inside);
          C_falloc (f, true, F_beyond);
          C_falloc (f, false, F_inside);
          C_falloc (f, false, F_beyond);
        ])
      files
  @ List.concat_map
      (fun f -> [ C_write (f, W_append); C_write (f, W_overwrite); C_write (f, W_extend) ])
      files
  @ List.map (fun (s, d) -> C_link (s, d)) (pairs files)
  @ List.map (fun f -> C_unlink f) files
  @ List.map (fun p -> C_remove p) (files @ dirs)
  @ List.map (fun (s, d) -> C_rename (s, d)) (pairs files @ pairs dirs)
  @ List.concat_map (fun f -> [ C_truncate (f, 0); C_truncate (f, 100); C_truncate (f, 400) ]) files
  @ List.map (fun d -> C_rmdir d) dirs

let metadata_ops =
  List.concat_map (fun f -> [ C_write (f, W_append); C_write (f, W_overwrite) ]) files
  @ List.map (fun (s, d) -> C_link (s, d)) (pairs files)
  @ List.map (fun f -> C_unlink f) files
  @ List.map (fun (s, d) -> C_rename (s, d)) (pairs files @ pairs dirs)

(* ------------------------------------------------------------------ *)
(* Dependency satisfaction                                             *)

type kind = File | Dir

type state = {
  mutable known : (string * kind) list;  (** paths believed to exist *)
  mutable out : Syscall.t list;  (** reversed workload *)
  mutable next_fd : int;
  mutable seed : int;
  mode : mode;
}

let emit st call = st.out <- call :: st.out

let fresh_fd st =
  let fd = st.next_fd in
  st.next_fd <- fd + 1;
  fd

let fresh_seed st =
  st.seed <- st.seed + 1;
  st.seed

let kind_of st path = List.assoc_opt path st.known
let forget st path = st.known <- List.remove_assoc path st.known

let add st path kind =
  forget st path;
  st.known <- (path, kind) :: st.known

let rec ensure_dir st path =
  if path <> "/" && kind_of st path <> Some Dir then begin
    ensure_parents st path;
    emit st (Syscall.Mkdir { path });
    add st path Dir
  end

and ensure_parents st path =
  match Vfs.Path.split_parent path with
  | Error _ | Ok ([], _) -> ()
  | Ok (parents, _) ->
    let dir = "/" ^ String.concat "/" parents in
    ensure_dir st dir

let fsync_if_needed st fd = if st.mode = Fsync then emit st (Syscall.Fsync { fd_var = fd })

(* Create [path] with ~300 bytes of content so overwrites, truncates and
   in-place ranges have something to act on. *)
let ensure_file st path =
  if kind_of st path <> Some File then begin
    ensure_parents st path;
    let fd = fresh_fd st in
    emit st (Syscall.Creat { path; fd_var = fd });
    emit st (Syscall.Write { fd_var = fd; data = { seed = fresh_seed st; len = 300 } });
    fsync_if_needed st fd;
    emit st (Syscall.Close { fd_var = fd });
    add st path File
  end

let ensure_absent st path =
  match kind_of st path with
  | None -> ()
  | Some File ->
    emit st (Syscall.Unlink { path });
    forget st path
  | Some Dir ->
    emit st (Syscall.Rmdir { path });
    forget st path

let apply_core st core =
  match core with
  | C_creat path ->
    ensure_parents st path;
    ensure_absent st path;
    let fd = fresh_fd st in
    emit st (Syscall.Creat { path; fd_var = fd });
    fsync_if_needed st fd;
    emit st (Syscall.Close { fd_var = fd });
    add st path File
  | C_mkdir path ->
    ensure_parents st path;
    ensure_absent st path;
    emit st (Syscall.Mkdir { path });
    add st path Dir
  | C_falloc (path, keep_size, range) ->
    ensure_file st path;
    let fd = fresh_fd st in
    emit st (Syscall.Open { path; flags = [ Vfs.Types.O_RDWR ]; fd_var = fd });
    let off, len = match range with F_inside -> (64, 100) | F_beyond -> (280, 200) in
    emit st (Syscall.Fallocate { fd_var = fd; off; len; keep_size });
    fsync_if_needed st fd;
    emit st (Syscall.Close { fd_var = fd })
  | C_write (path, k) ->
    ensure_file st path;
    let fd = fresh_fd st in
    (match k with
    | W_append ->
      emit st (Syscall.Open { path; flags = [ Vfs.Types.O_WRONLY; Vfs.Types.O_APPEND ]; fd_var = fd });
      emit st (Syscall.Write { fd_var = fd; data = { seed = fresh_seed st; len = 150 } })
    | W_overwrite ->
      emit st (Syscall.Open { path; flags = [ Vfs.Types.O_RDWR ]; fd_var = fd });
      emit st (Syscall.Pwrite { fd_var = fd; off = 40; data = { seed = fresh_seed st; len = 100 } })
    | W_extend ->
      emit st (Syscall.Open { path; flags = [ Vfs.Types.O_RDWR ]; fd_var = fd });
      emit st (Syscall.Pwrite { fd_var = fd; off = 280; data = { seed = fresh_seed st; len = 120 } }));
    fsync_if_needed st fd;
    emit st (Syscall.Close { fd_var = fd })
  | C_link (src, dst) ->
    ensure_file st src;
    ensure_parents st dst;
    ensure_absent st dst;
    emit st (Syscall.Link { src; dst });
    add st dst File
  | C_unlink path ->
    ensure_file st path;
    emit st (Syscall.Unlink { path });
    forget st path
  | C_remove path ->
    (if List.mem path dirs then ensure_dir st path else ensure_file st path);
    emit st (Syscall.Remove { path });
    forget st path
  | C_rename (src, dst) ->
    (if List.mem src dirs then ensure_dir st src else ensure_file st src);
    ensure_parents st dst;
    (* An existing destination makes rename-overwrite cases reachable;
       directories must be empty for the rename to succeed, which dependency
       tracking does not guarantee — those workloads simply fail benignly. *)
    emit st (Syscall.Rename { src; dst });
    (match kind_of st src with
    | Some k ->
      forget st src;
      add st dst k
    | None -> ());
    (* Renaming a directory invalidates knowledge of paths beneath it. *)
    st.known <-
      List.filter
        (fun (p, _) -> not (String.length p > String.length src
                            && String.sub p 0 (String.length src + 1) = src ^ "/"))
        st.known
  | C_truncate (path, size) ->
    ensure_file st path;
    emit st (Syscall.Truncate { path; size })
  | C_rmdir path ->
    ensure_dir st path;
    emit st (Syscall.Rmdir { path });
    forget st path
  | C_setxattr (path, name) ->
    ensure_file st path;
    emit st (Syscall.Setxattr { path; name; value = "v" ^ name })
  | C_removexattr (path, name) ->
    ensure_file st path;
    emit st (Syscall.Setxattr { path; name; value = "seed" });
    emit st (Syscall.Removexattr { path; name })

let expand mode cores =
  let st = { known = []; out = []; next_fd = 0; seed = 1000; mode } in
  List.iter (apply_core st) cores;
  if mode = Fsync then emit st Syscall.Sync;
  List.rev st.out

(* ------------------------------------------------------------------ *)
(* Suites                                                              *)

let named prefix mode seqs =
  Seq.mapi (fun i cores -> (Printf.sprintf "%s-%05d" prefix i, expand mode cores)) seqs

(* setxattr/removexattr only join the default (fsync) mode, matching the
   paper: the DAX systems are the only ones that support them. *)
let xattr_ops =
  List.concat_map
    (fun f -> [ C_setxattr (f, "user.attr"); C_removexattr (f, "user.attr") ])
    files

let ops_for mode = match mode with Strong -> core_ops | Fsync -> core_ops @ xattr_ops

let seq1 mode = named "seq1" mode (List.to_seq (List.map (fun c -> [ c ]) (ops_for mode)))

let product2 l =
  Seq.concat_map (fun a -> Seq.map (fun b -> [ a; b ]) (List.to_seq l)) (List.to_seq l)

let product3 l =
  Seq.concat_map
    (fun a ->
      Seq.concat_map
        (fun b -> Seq.map (fun c -> [ a; b; c ]) (List.to_seq l))
        (List.to_seq l))
    (List.to_seq l)

let seq2 mode = named "seq2" mode (product2 (ops_for mode))
let seq3_metadata mode = named "seq3" mode (product3 metadata_ops)

let count s = Seq.fold_left (fun acc _ -> acc + 1) 0 s

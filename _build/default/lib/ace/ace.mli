(** The Automatic Crash Explorer: systematic workload generation.

    Following CrashMonkey's ACE (paper section 3.4.1), workloads are built
    from a sequence of {e core operations} drawn from a small operation and
    argument space over a fixed set of files and directories; dependencies
    are then satisfied automatically (parent directories created, files
    created and populated, descriptors opened and closed). A workload with
    [n] core operations is a "seq-n" workload.

    Two modes mirror the paper:
    - [Strong] generates no fsync-family calls (for PM file systems with
      strong guarantees);
    - [Fsync] inserts an fsync after every data operation and a final sync
      (the default CrashMonkey mode, used for ext4-DAX/XFS-DAX). *)

type mode = Strong | Fsync

type core
(** One core operation (an opaque point in ACE's operation/argument space). *)

val core_ops : core list
(** The full seq-1 operation space. *)

val metadata_ops : core list
(** The reduced space used for seq-3 ("seq-3 metadata" workloads): file
    overwrites/appends, link, unlink, rename. *)

val core_to_string : core -> string

val expand : mode -> core list -> Vfs.Syscall.t list
(** Satisfy dependencies and produce a runnable workload. *)

val seq1 : mode -> (string * Vfs.Syscall.t list) Seq.t
(** All seq-1 workloads, with stable names ("seq1-0007"). *)

val seq2 : mode -> (string * Vfs.Syscall.t list) Seq.t
val seq3_metadata : mode -> (string * Vfs.Syscall.t list) Seq.t

val count : (string * Vfs.Syscall.t list) Seq.t -> int

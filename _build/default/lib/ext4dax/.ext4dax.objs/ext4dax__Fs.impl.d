lib/ext4dax/fs.ml: Array Blockalloc Buffer Bytes Char Cov Hashtbl Int32 Int64 List Persist Pmem Printf Result String Vfs

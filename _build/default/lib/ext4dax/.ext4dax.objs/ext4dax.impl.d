lib/ext4dax/ext4dax.ml: Fs Vfs

lib/ext4dax/ext4dax.mli: Fs Vfs

(** ext4-DAX and XFS-DAX: mature journaling file systems with weak
    (fsync-based) crash-consistency guarantees.

    Metadata lives in DRAM between commits; fsync flushes the target file's
    DAX-written data and commits all dirty metadata through a jbd2-style
    redo journal. There are no injectable bugs: the paper found none in
    either system, and this model doubles as SplitFS's trusted kernel
    component. *)

module Fs = Fs
(** The raw implementation, exposed for SplitFS (block mapping, relink) and
    for white-box tests. *)

module P : module type of Vfs.Posix.Make (Fs)

type config = Fs.config

val default_config : config
(** The ext4-DAX flavour. *)

val config : ?xfs:bool -> ?n_pages:int -> ?n_inodes:int -> unit -> config
(** [xfs:true] selects the XFS-DAX flavour: same weak-consistency
    architecture (both share their crash-consistency machinery with their
    mature disk-based bases), allocation-group-style block placement. *)

val driver : ?config:config -> unit -> Vfs.Driver.t
(** Weak consistency: the Chipmunk harness only places crash checks at
    fsync/fdatasync/sync boundaries for this driver. *)

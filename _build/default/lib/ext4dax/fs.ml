(** The ext4-DAX / XFS-DAX model: a mature journaling file system with weak
    (fsync-based) crash-consistency guarantees.

    Metadata lives in DRAM between commits; fsync/fdatasync/sync flush the
    target file's data (DAX data writes are plain cached stores, volatile
    until flushed) and then commit {e all} dirty metadata through a
    jbd2-style redo journal: full new images of dirty inode slots and dentry
    pages are journalled, fenced, committed with a marker, checkpointed in
    place and cleared. A crash replays a committed journal and otherwise
    sees the last checkpoint — exactly the "weak guarantees" contract the
    paper assigns these systems.

    There are no injectable bugs here: the paper found none in either system
    (attributed to the maturity of the shared base code), and this model's
    job is to be the trustworthy kernel component under SplitFS. *)

module Types = Vfs.Types
module Errno = Vfs.Errno
module Pm = Persist.Pm

let ( let* ) = Result.bind

type config = {
  fs_name : string;
  page_size : int;
  n_pages : int;
  n_inodes : int;
  journal_pages : int;
  aligned_alloc : bool;  (** XFS flavour: allocation-group-style placement. *)
}

let default_config =
  {
    fs_name = "ext4-dax";
    page_size = 128;
    n_pages = 1024;
    n_inodes = 32;
    journal_pages = 32;
    aligned_alloc = false;
  }

let magic = 0x45344458 (* "E4DX" *)
let version = 1
let inode_slot_size = 64
let dentry_size = 32
let n_direct = 8
let name_max = 26

let sb_magic = 0
let sb_version = 4
let sb_page_size = 8
let sb_n_pages = 12
let sb_n_inodes = 16

let i_valid = 0
let i_kind = 1
let i_links = 2
let i_size = 8
let i_direct = 16
let i_indirect = 48
let i_xattr = 52 (* u32: page holding this inode's packed xattrs, 0 = none *)

let d_ino = 0
let d_valid = 4
let d_name_len = 5
let d_name = 6

type lay = {
  cfg : config;
  inode_table : int;
  journal : int;  (** byte offset of the journal area *)
  journal_space : int;
  first_free_page : int;
  size : int;
  ind_per_page : int;
}

let layout cfg =
  let it_pages = (cfg.n_inodes * inode_slot_size + cfg.page_size - 1) / cfg.page_size in
  let journal_page0 = 1 + it_pages in
  {
    cfg;
    inode_table = cfg.page_size;
    journal = journal_page0 * cfg.page_size;
    journal_space = cfg.journal_pages * cfg.page_size;
    first_free_page = journal_page0 + cfg.journal_pages;
    size = cfg.n_pages * cfg.page_size;
    ind_per_page = cfg.page_size / 4;
  }

let inode_off lay ino = lay.inode_table + (ino * inode_slot_size)
let page_off lay page = page * lay.cfg.page_size
let max_blocks lay = n_direct + lay.ind_per_page
let max_size lay = max_blocks lay * lay.cfg.page_size

type inode = {
  ino : int;
  kind : Types.file_kind;
  mutable links : int;
  mutable size : int;
  direct : int array;
  mutable indirect : int;
  ind : int array;
  dentries : (string, int) Hashtbl.t;  (** dirs: name -> ino *)
  mutable dentry_pages : int list;  (** dirs: pages holding the on-media entries *)
  xattrs : (string, string) Hashtbl.t;
  mutable xattr_page : int;  (** 0 = none *)
  mutable opens : int;
  mutable dirty : bool;
  mutable dirty_data : (int * int) list;  (** (off, len) byte ranges not yet flushed *)
}

type t = {
  pm : Pm.t;
  lay : lay;
  inodes : (int, inode) Hashtbl.t;
  alloc : Blockalloc.t;
  mutable next_ino : int;
  mutable dirty_inodes : int list;
  mutable deleted_inodes : int list;
  mutable pending_free : int list;
      (** Pages freed in DRAM, returned to the allocator only after the
          deleting transaction commits (real ext4 behaviour, and necessary:
          reusing them earlier would corrupt the last checkpoint). *)
}

let root_ino = 0
let name = "ext4dax"

let fresh_inode lay ~ino ~kind ~links =
  {
    ino;
    kind;
    links;
    size = 0;
    direct = Array.make n_direct 0;
    indirect = 0;
    ind = Array.make lay.ind_per_page 0;
    dentries = Hashtbl.create 8;
    dentry_pages = [];
    xattrs = Hashtbl.create 4;
    xattr_page = 0;
    opens = 0;
    dirty = false;
    dirty_data = [];
  }

let get t ino =
  match Hashtbl.find_opt t.inodes ino with None -> Error Errno.ENOENT | Some i -> Ok i

let mark_dirty t inode =
  if not inode.dirty then begin
    inode.dirty <- true;
    t.dirty_inodes <- inode.ino :: t.dirty_inodes
  end

let alloc_page t =
  if t.lay.cfg.aligned_alloc then Blockalloc.alloc_aligned t.alloc ~align:4
  else Blockalloc.alloc t.alloc

let alloc_ino t =
  let rec scan i =
    if i >= t.lay.cfg.n_inodes then Error Errno.ENOSPC
    else if Hashtbl.mem t.inodes i then scan (i + 1)
    else Ok i
  in
  scan 0

(* ------------------------------------------------------------------ *)
(* Data path: DAX cached stores, volatile until an fsync flushes them. *)

let block_of inode idx = if idx < n_direct then inode.direct.(idx) else inode.ind.(idx - n_direct)

let set_block_dram inode idx pg =
  if idx < n_direct then inode.direct.(idx) <- pg else inode.ind.(idx - n_direct) <- pg

let read_block t inode idx =
  match block_of inode idx with
  | 0 -> String.make t.lay.cfg.page_size '\000'
  | pg -> Pm.read t.pm ~off:(page_off t.lay pg) ~len:t.lay.cfg.page_size

let read_range t inode ~off ~len =
  let psz = t.lay.cfg.page_size in
  let buf = Bytes.create len in
  let rec go pos =
    if pos < len then begin
      let abs = off + pos in
      let idx = abs / psz and in_page = abs mod psz in
      let n = min (psz - in_page) (len - pos) in
      let block = read_block t inode idx in
      Bytes.blit_string block in_page buf pos n;
      go (pos + n)
    end
  in
  go 0;
  Bytes.to_string buf

let note_dirty_data inode ~off ~len = inode.dirty_data <- (off, len) :: inode.dirty_data

(* Map blocks for [first, last]; fresh blocks are zeroed with cached stores
   (their previous contents must not leak into reads). *)
let map_blocks t f ~first ~last =
  let psz = t.lay.cfg.page_size in
  let* () =
    if last >= n_direct && f.indirect = 0 then
      let* pg = alloc_page t in
      f.indirect <- pg;
      Ok ()
    else Ok ()
  in
  let rec go idx =
    if idx > last then Ok ()
    else
      match block_of f idx with
      | 0 ->
        let* pg = alloc_page t in
        Pm.store t.pm ~off:(page_off t.lay pg) (String.make psz '\000');
        set_block_dram f idx pg;
        go (idx + 1)
      | _ -> go (idx + 1)
  in
  go first

(* ------------------------------------------------------------------ *)
(* Journal commit (jbd2-style redo)                                    *)

(* Journal area: byte 0 = valid flag, bytes 2-3 = record count (u16),
   bytes 4.. = records, each [addr u32][len u16][new image bytes]. *)

let rec commit_records t records =
  if records = [] then ()
  else begin
    (* Split transactions that exceed the journal area, like jbd2 does. *)
    let record_bytes (_, data) = 6 + String.length data in
    let rec take_fit acc used = function
      | r :: rest when used + record_bytes r <= t.lay.journal_space - 4 && List.length acc < 64 ->
        take_fit (r :: acc) (used + record_bytes r) rest
      | rest -> (List.rev acc, rest)
    in
    let batch, overflow = take_fit [] 0 records in
    if batch = [] then Pmem.Fault.fail "ext4dax journal: record larger than the journal";
    let records = batch in
    let body = Buffer.create 256 in
    List.iter
      (fun (addr, data) ->
        let b = Bytes.create 6 in
        Bytes.set_int32_le b 0 (Int32.of_int addr);
        Bytes.set_uint16_le b 4 (String.length data);
        Buffer.add_bytes body b;
        Buffer.add_string body data)
      records;
    let body = Buffer.contents body in
    let count = Bytes.create 2 in
    Bytes.set_uint16_le count 0 (List.length records);
    Pm.memcpy_nt t.pm ~off:(t.lay.journal + 2) (Bytes.to_string count);
    Pm.memcpy_nt t.pm ~off:(t.lay.journal + 4) body;
    Pm.fence t.pm;
    Pm.memcpy_nt t.pm ~off:t.lay.journal "\001";
    Pm.fence t.pm;
    (* Checkpoint in place. *)
    List.iter (fun (addr, data) -> Pm.memcpy_nt t.pm ~off:addr data) records;
    Pm.fence t.pm;
    Pm.memcpy_nt t.pm ~off:t.lay.journal "\000";
    Pm.fence t.pm;
    commit_records t overflow
  end

let slot_image t inode ~valid =
  let b = Bytes.make inode_slot_size '\000' in
  Bytes.set b i_valid (if valid then '\001' else '\000');
  Bytes.set b i_kind (match inode.kind with Types.Reg -> '\001' | Types.Dir -> '\002');
  Bytes.set_uint16_le b i_links inode.links;
  Bytes.set_int64_le b i_size (Int64.of_int inode.size);
  Array.iteri (fun i pg -> Bytes.set_int32_le b (i_direct + (4 * i)) (Int32.of_int pg)) inode.direct;
  Bytes.set_int32_le b i_indirect (Int32.of_int inode.indirect);
  Bytes.set_int32_le b i_xattr (Int32.of_int inode.xattr_page);
  (inode_off t.lay inode.ino, Bytes.to_string b)

(* Pack an inode's extended attributes into its xattr page:
   [name_len u8][value_len u8][name][value]..., zero-terminated. *)
let xattr_image t inode =
  let psz = t.lay.cfg.page_size in
  if Hashtbl.length inode.xattrs = 0 then begin
    (match inode.xattr_page with
    | 0 -> ()
    | pg ->
      t.pending_free <- pg :: t.pending_free;
      inode.xattr_page <- 0);
    Ok None
  end
  else begin
    let* () =
      if inode.xattr_page = 0 then
        let* pg = alloc_page t in
        inode.xattr_page <- pg;
        Ok ()
      else Ok ()
    in
    let b = Bytes.make psz '\000' in
    let pos = ref 0 in
    let overflow = ref false in
    Hashtbl.iter
      (fun name value ->
        let need = 2 + String.length name + String.length value in
        if !pos + need + 1 > psz then overflow := true
        else begin
          Bytes.set b !pos (Char.chr (String.length name));
          Bytes.set b (!pos + 1) (Char.chr (String.length value));
          Bytes.blit_string name 0 b (!pos + 2) (String.length name);
          Bytes.blit_string value 0 b (!pos + 2 + String.length name) (String.length value);
          pos := !pos + need
        end)
      inode.xattrs;
    if !overflow then Error Errno.ENOSPC
    else Ok (Some (page_off t.lay inode.xattr_page, Bytes.to_string b))
  end

(* Serialize a directory's entries into dentry pages, allocating or
   releasing pages as needed. Returns the page images. *)
let dir_images t inode =
  let psz = t.lay.cfg.page_size in
  let per = psz / dentry_size in
  let entries = Hashtbl.fold (fun n i acc -> (n, i) :: acc) inode.dentries [] in
  let entries = List.sort compare entries in
  let needed = (List.length entries + per - 1) / per in
  (* Adjust the page list. *)
  let rec grow pages =
    if List.length pages >= needed then Ok pages
    else
      let* pg = alloc_page t in
      grow (pages @ [ pg ])
  in
  let* pages = grow inode.dentry_pages in
  let keep, drop =
    List.filteri (fun i _ -> i < needed) pages,
    List.filteri (fun i _ -> i >= needed) pages
  in
  t.pending_free <- drop @ t.pending_free;
  inode.dentry_pages <- keep;
  (* Dentry pages are addressed through the directory's block pointers. *)
  Array.fill inode.direct 0 n_direct 0;
  List.iteri (fun i pg -> if i < n_direct then inode.direct.(i) <- pg) keep;
  inode.size <- List.length entries;
  let images =
    List.mapi
      (fun pi pg ->
        let b = Bytes.make psz '\000' in
        List.iteri
          (fun ei (ename, eino) ->
            if ei / per = pi then begin
              let off = ei mod per * dentry_size in
              Bytes.set_int32_le b (off + d_ino) (Int32.of_int eino);
              Bytes.set b (off + d_valid) '\001';
              Bytes.set b (off + d_name_len) (Char.chr (String.length ename));
              Bytes.blit_string ename 0 b (off + d_name) (String.length ename)
            end)
          entries;
        (page_off t.lay pg, Bytes.to_string b))
      keep
  in
  Ok images

let flush_data t inode =
  List.iter
    (fun (off, len) ->
      let psz = t.lay.cfg.page_size in
      let rec go pos =
        if pos < len then begin
          let abs = off + pos in
          let idx = abs / psz and in_page = abs mod psz in
          let n = min (psz - in_page) (len - pos) in
          (match block_of inode idx with
          | 0 -> ()
          | pg -> Pm.flush t.pm ~off:(page_off t.lay pg + in_page) ~len:n);
          go (pos + n)
        end
      in
      go 0)
    inode.dirty_data;
  if inode.dirty_data <> [] then Pm.fence t.pm;
  inode.dirty_data <- []

(* Commit all dirty metadata. *)
let commit_metadata t =
  let records = ref [] in
  let dirty = List.sort_uniq compare t.dirty_inodes in
  let deleted = List.sort_uniq compare t.deleted_inodes in
  let build () =
    List.iter
      (fun ino ->
        match Hashtbl.find_opt t.inodes ino with
        | None -> ()
        | Some inode ->
          (if inode.kind = Types.Dir then
             match dir_images t inode with
             | Ok images -> records := images @ !records
             | Error _ -> Pmem.Fault.fail "ext4dax: no space for directory commit");
          (match xattr_image t inode with
          | Ok (Some img) -> records := img :: !records
          | Ok None -> ()
          | Error _ -> Pmem.Fault.fail "ext4dax: xattrs overflow their page");
          (* Indirect page image (pointers live in DRAM until commit). *)
          if inode.indirect <> 0 then begin
            let b = Bytes.make t.lay.cfg.page_size '\000' in
            Array.iteri (fun i pg -> Bytes.set_int32_le b (4 * i) (Int32.of_int pg)) inode.ind;
            records := (page_off t.lay inode.indirect, Bytes.to_string b) :: !records
          end;
          records := slot_image t inode ~valid:true :: !records)
      dirty;
    List.iter
      (fun ino ->
        records :=
          (inode_off t.lay ino, String.make inode_slot_size '\000') :: !records)
      deleted
  in
  build ();
  commit_records t (List.rev !records);
  List.iter
    (fun ino -> match Hashtbl.find_opt t.inodes ino with None -> () | Some i -> i.dirty <- false)
    dirty;
  t.dirty_inodes <- [];
  t.deleted_inodes <- [];
  List.iter (fun pg -> Blockalloc.free t.alloc pg) t.pending_free;
  t.pending_free <- []

(* ------------------------------------------------------------------ *)
(* INODE_OPS                                                           *)

let lookup t ~dir ~name:dname =
  let* d = get t dir in
  if d.kind <> Types.Dir then Error Errno.ENOTDIR
  else
    match Hashtbl.find_opt d.dentries dname with
    | Some ino -> Ok ino
    | None -> Error Errno.ENOENT

let getattr t ~ino =
  let* i = get t ino in
  Ok
    {
      Types.st_ino = ino;
      st_kind = i.kind;
      st_size = (match i.kind with Types.Reg -> i.size | Types.Dir -> Hashtbl.length i.dentries);
      st_nlink = i.links;
    }

let make_inode t ~dir ~name:dname ~kind =
  let* d = get t dir in
  let* ino = alloc_ino t in
  (* The slot may have been freed earlier in this (uncommitted) transaction;
     it is live again, so the commit must not zero it. *)
  t.deleted_inodes <- List.filter (fun i -> i <> ino) t.deleted_inodes;
  let node = fresh_inode t.lay ~ino ~kind ~links:(match kind with Types.Reg -> 1 | Types.Dir -> 2) in
  Hashtbl.replace t.inodes ino node;
  Hashtbl.replace d.dentries dname ino;
  if kind = Types.Dir then d.links <- d.links + 1;
  mark_dirty t node;
  mark_dirty t d;
  Ok ino

let create t ~dir ~name = make_inode t ~dir ~name ~kind:Types.Reg
let mkdir t ~dir ~name = make_inode t ~dir ~name ~kind:Types.Dir

let link t ~ino ~dir ~name:dname =
  let* f = get t ino in
  let* d = get t dir in
  Hashtbl.replace d.dentries dname ino;
  f.links <- f.links + 1;
  mark_dirty t f;
  mark_dirty t d;
  Ok ()

let free_blocks t inode =
  for idx = 0 to max_blocks t.lay - 1 do
    match block_of inode idx with
    | 0 -> ()
    | pg ->
      t.pending_free <- pg :: t.pending_free;
      set_block_dram inode idx 0
  done;
  if inode.indirect <> 0 then begin
    t.pending_free <- inode.indirect :: t.pending_free;
    inode.indirect <- 0
  end;
  if inode.xattr_page <> 0 then begin
    t.pending_free <- inode.xattr_page :: t.pending_free;
    inode.xattr_page <- 0
  end;
  (* A directory's dentry pages are its direct blocks, already queued by the
     loop above. *)
  inode.dentry_pages <- []

let reclaim t inode =
  free_blocks t inode;
  Hashtbl.remove t.inodes inode.ino;
  t.deleted_inodes <- inode.ino :: t.deleted_inodes;
  t.dirty_inodes <- List.filter (fun i -> i <> inode.ino) t.dirty_inodes

let drop_link t inode =
  inode.links <- inode.links - 1;
  mark_dirty t inode;
  if inode.links = 0 && inode.opens = 0 then reclaim t inode

let unlink t ~dir ~name:dname =
  let* d = get t dir in
  let ino = Hashtbl.find d.dentries dname in
  let* f = get t ino in
  Hashtbl.remove d.dentries dname;
  mark_dirty t d;
  drop_link t f;
  Ok ()

let rmdir t ~dir ~name:dname =
  let* d = get t dir in
  let ino = Hashtbl.find d.dentries dname in
  let* victim = get t ino in
  Hashtbl.remove d.dentries dname;
  d.links <- d.links - 1;
  mark_dirty t d;
  victim.links <- 0;
  if victim.opens = 0 then reclaim t victim;
  Ok ()

let rename t ~odir ~oname ~ndir ~nname =
  let* od = get t odir in
  let* nd = get t ndir in
  let ino = Hashtbl.find od.dentries oname in
  let* moved = get t ino in
  (match Hashtbl.find_opt nd.dentries nname with
  | None -> ()
  | Some tino -> (
    match Hashtbl.find_opt t.inodes tino with
    | None -> ()
    | Some victim -> (
      Hashtbl.remove nd.dentries nname;
      match victim.kind with
      | Types.Reg -> drop_link t victim
      | Types.Dir ->
        nd.links <- nd.links - 1;
        victim.links <- 0;
        if victim.opens = 0 then reclaim t victim)));
  Hashtbl.remove od.dentries oname;
  Hashtbl.replace nd.dentries nname ino;
  if moved.kind = Types.Dir && odir <> ndir then begin
    od.links <- od.links - 1;
    nd.links <- nd.links + 1
  end;
  mark_dirty t od;
  mark_dirty t nd;
  Ok ()

let readdir t ~dir =
  let* d = get t dir in
  Ok (Hashtbl.fold (fun n i acc -> { Types.d_ino = i; d_name = n } :: acc) d.dentries [])

let read t ~ino ~off ~len =
  let* f = get t ino in
  Ok (read_range t f ~off ~len)

let write t ~ino ~off ~data =
  let* f = get t ino in
  let len = String.length data in
  if len = 0 then Ok 0
  else if off + len > max_size t.lay then Error Errno.EFBIG
  else begin
    let psz = t.lay.cfg.page_size in
    let first = off / psz and last = (off + len - 1) / psz in
    let* () = map_blocks t f ~first ~last in
    (* DAX write: plain cached stores into the mapped blocks. *)
    for idx = first to last do
      let pg = block_of f idx in
      let bstart = idx * psz in
      let s = max off bstart and e = min (off + len) (bstart + psz) in
      Pm.store t.pm ~off:(page_off t.lay pg + (s - bstart)) (String.sub data (s - off) (e - s))
    done;
    note_dirty_data f ~off ~len;
    if off + len > f.size then begin
      f.size <- off + len;
      mark_dirty t f
    end;
    if f.indirect <> 0 || last >= first then mark_dirty t f;
    Ok len
  end

let truncate t ~ino ~size =
  let* f = get t ino in
  if size > max_size t.lay then Error Errno.EFBIG
  else begin
    let psz = t.lay.cfg.page_size in
    if size < f.size then begin
      let keep = (size + psz - 1) / psz in
      for idx = keep to max_blocks t.lay - 1 do
        match block_of f idx with
        | 0 -> ()
        | pg ->
          t.pending_free <- pg :: t.pending_free;
          set_block_dram f idx 0
      done;
      (* Zero the stale tail of the boundary block so a later extension
         reads zeros. *)
      if size mod psz <> 0 then begin
        match block_of f (size / psz) with
        | 0 -> ()
        | pg ->
          let start = size mod psz in
          Pm.store t.pm ~off:(page_off t.lay pg + start) (String.make (psz - start) '\000');
          note_dirty_data f ~off:size ~len:(psz - start)
      end
    end;
    f.size <- size;
    mark_dirty t f;
    Ok ()
  end

let fallocate t ~ino ~off ~len ~keep_size =
  let* f = get t ino in
  if off + len > max_size t.lay then Error Errno.EFBIG
  else begin
    let psz = t.lay.cfg.page_size in
    let* () = map_blocks t f ~first:(off / psz) ~last:((off + len - 1) / psz) in
    note_dirty_data f ~off ~len;
    if (not keep_size) && off + len > f.size then f.size <- off + len;
    mark_dirty t f;
    Ok ()
  end

let setxattr t ~ino ~name ~value =
  Cov.mark "ext4dax.xattr";
  let* f = get t ino in
  Hashtbl.replace f.xattrs name value;
  mark_dirty t f;
  Ok ()

let getxattr t ~ino ~name =
  let* f = get t ino in
  match Hashtbl.find_opt f.xattrs name with Some v -> Ok v | None -> Error Errno.ENOENT

let listxattr t ~ino =
  let* f = get t ino in
  Ok (Hashtbl.fold (fun k _ acc -> k :: acc) f.xattrs [])

let removexattr t ~ino ~name =
  let* f = get t ino in
  if Hashtbl.mem f.xattrs name then begin
    Hashtbl.remove f.xattrs name;
    mark_dirty t f;
    Ok ()
  end
  else Error Errno.ENOENT

let fsync t ~ino =
  Cov.mark "ext4dax.fsync";
  let* f = get t ino in
  flush_data t f;
  commit_metadata t;
  Ok ()

let sync t =
  Cov.mark "ext4dax.sync";
  Hashtbl.iter (fun _ f -> flush_data t f) t.inodes;
  commit_metadata t

let iget t ~ino = match get t ino with Error _ -> () | Ok i -> i.opens <- i.opens + 1

let iput t ~ino =
  match get t ino with
  | Error _ -> ()
  | Ok i ->
    i.opens <- max 0 (i.opens - 1);
    if i.links = 0 && i.opens = 0 then reclaim t i

(* ------------------------------------------------------------------ *)
(* mkfs and mount                                                      *)

let mkfs pm cfg =
  let lay = layout cfg in
  if Pm.size pm < lay.size then
    Pmem.Fault.fail "ext4dax mkfs: device too small (%d < %d)" (Pm.size pm) lay.size;
  let t =
    {
      pm;
      lay;
      inodes = Hashtbl.create 32;
      alloc = Blockalloc.create ~n_pages:cfg.n_pages;
      next_ino = 1;
      dirty_inodes = [];
      deleted_inodes = [];
      pending_free = [];
    }
  in
  for p = 0 to lay.first_free_page - 1 do
    Blockalloc.mark_used t.alloc p
  done;
  let sb = Bytes.make 24 '\000' in
  Bytes.set_int32_le sb sb_magic (Int32.of_int magic);
  Bytes.set_int32_le sb sb_version (Int32.of_int version);
  Bytes.set_int32_le sb sb_page_size (Int32.of_int cfg.page_size);
  Bytes.set_int32_le sb sb_n_pages (Int32.of_int cfg.n_pages);
  Bytes.set_int32_le sb sb_n_inodes (Int32.of_int cfg.n_inodes);
  Pm.memcpy_nt t.pm ~off:0 (Bytes.to_string sb);
  let it_bytes =
    (cfg.n_inodes * inode_slot_size + cfg.page_size - 1) / cfg.page_size * cfg.page_size
  in
  Pm.memset_nt t.pm ~off:lay.inode_table ~len:it_bytes '\000';
  Pm.memset_nt t.pm ~off:lay.journal ~len:lay.journal_space '\000';
  let root = fresh_inode lay ~ino:root_ino ~kind:Types.Dir ~links:2 in
  Hashtbl.replace t.inodes root_ino root;
  mark_dirty t root;
  Pm.fence t.pm;
  commit_metadata t;
  t

exception Mount_error of string

let mount pm cfg =
  let lay = layout cfg in
  let failm fmt = Printf.ksprintf (fun s -> raise (Mount_error s)) fmt in
  let go () =
    if Pm.size pm < lay.size then failm "ext4dax: device smaller than layout";
    if Pm.read_u32 pm ~off:sb_magic <> magic then failm "ext4dax: bad superblock magic";
    if Pm.read_u32 pm ~off:sb_version <> version then failm "ext4dax: bad version";
    if Pm.read_u32 pm ~off:sb_page_size <> cfg.page_size then failm "ext4dax: page size mismatch";
    if Pm.read_u32 pm ~off:sb_n_pages <> cfg.n_pages then failm "ext4dax: page count mismatch";
    let t =
      {
        pm;
        lay;
        inodes = Hashtbl.create 32;
        alloc = Blockalloc.create ~n_pages:cfg.n_pages;
        next_ino = 1;
        dirty_inodes = [];
        deleted_inodes = [];
        pending_free = [];
      }
    in
    for p = 0 to lay.first_free_page - 1 do
      Blockalloc.mark_used t.alloc p
    done;
    (* Redo-journal recovery. *)
    if Pm.read_u8 pm ~off:lay.journal = 1 then begin
      Cov.mark "ext4dax.mount.journal_replay";
      let n = Pm.read_u16 pm ~off:(lay.journal + 2) in
      let rec replay pos k =
        if k > 0 then begin
          if pos + 6 > lay.journal_space then failm "ext4dax: truncated journal record";
          let addr = Pm.read_u32 pm ~off:(lay.journal + pos) in
          let len = Pm.read_u16 pm ~off:(lay.journal + pos + 4) in
          if pos + 6 + len > lay.journal_space || addr + len > lay.size then
            failm "ext4dax: journal record out of range";
          let data = Pm.read pm ~off:(lay.journal + pos + 6) ~len in
          Pm.memcpy_nt pm ~off:addr data;
          replay (pos + 6 + len) (k - 1)
        end
      in
      replay 4 n;
      Pm.fence pm;
      Pm.memcpy_nt pm ~off:lay.journal "\000";
      Pm.fence pm
    end;
    (* Scan the inode table. *)
    for ino = 0 to cfg.n_inodes - 1 do
      let off = inode_off lay ino in
      if Pm.read_u8 pm ~off:(off + i_valid) = 1 then begin
        let kind = if Pm.read_u8 pm ~off:(off + i_kind) = 2 then Types.Dir else Types.Reg in
        let node = fresh_inode lay ~ino ~kind ~links:(Pm.read_u16 pm ~off:(off + i_links)) in
        node.size <- Pm.read_u64 pm ~off:(off + i_size);
        for i = 0 to n_direct - 1 do
          node.direct.(i) <- Pm.read_u32 pm ~off:(off + i_direct + (4 * i))
        done;
        node.indirect <- Pm.read_u32 pm ~off:(off + i_indirect);
        if node.indirect <> 0 then begin
          if node.indirect >= cfg.n_pages then failm "ext4dax: indirect out of range";
          for i = 0 to lay.ind_per_page - 1 do
            node.ind.(i) <- Pm.read_u32 pm ~off:(page_off lay node.indirect + (4 * i))
          done
        end;
        node.xattr_page <- Pm.read_u32 pm ~off:(off + i_xattr);
        if node.xattr_page <> 0 then begin
          if node.xattr_page >= cfg.n_pages then failm "ext4dax: xattr page out of range";
          let raw = Pm.read pm ~off:(page_off lay node.xattr_page) ~len:cfg.page_size in
          let rec parse pos =
            if pos + 2 <= cfg.page_size && raw.[pos] <> '\000' then begin
              let nl = Char.code raw.[pos] and vl = Char.code raw.[pos + 1] in
              if pos + 2 + nl + vl > cfg.page_size then failm "ext4dax: corrupt xattr page";
              Hashtbl.replace node.xattrs
                (String.sub raw (pos + 2) nl)
                (String.sub raw (pos + 2 + nl) vl);
              parse (pos + 2 + nl + vl)
            end
          in
          parse 0
        end;
        Hashtbl.replace t.inodes ino node
      end
    done;
    if not (Hashtbl.mem t.inodes root_ino) then failm "ext4dax: no root inode";
    (* Claim blocks; rebuild directories. *)
    Hashtbl.iter
      (fun _ node ->
        if node.indirect <> 0 then Blockalloc.mark_used t.alloc node.indirect;
        if node.xattr_page <> 0 then Blockalloc.mark_used t.alloc node.xattr_page;
        for idx = 0 to max_blocks lay - 1 do
          let pg = block_of node idx in
          if pg <> 0 then begin
            if pg >= cfg.n_pages then failm "ext4dax: block out of range";
            Blockalloc.mark_used t.alloc pg
          end
        done)
      t.inodes;
    let referenced : (int, unit) Hashtbl.t = Hashtbl.create 32 in
    Hashtbl.iter
      (fun _ node ->
        if node.kind = Types.Dir then begin
          let per = cfg.page_size / dentry_size in
          node.dentry_pages <-
            List.filter (fun pg -> pg <> 0) (Array.to_list node.direct);
          List.iter
            (fun pg ->
              for slot = 0 to per - 1 do
                let addr = page_off lay pg + (slot * dentry_size) in
                if Pm.read_u8 pm ~off:(addr + d_valid) = 1 then begin
                  let target = Pm.read_u32 pm ~off:(addr + d_ino) in
                  let nlen = Pm.read_u8 pm ~off:(addr + d_name_len) in
                  if nlen = 0 || nlen > name_max then failm "ext4dax: corrupt dentry";
                  let dname = Pm.read pm ~off:(addr + d_name) ~len:nlen in
                  Hashtbl.replace node.dentries dname target;
                  Hashtbl.replace referenced target ()
                end
              done)
            node.dentry_pages
        end)
      t.inodes;
    Hashtbl.iter
      (fun _ node ->
        Hashtbl.iter
          (fun dname target ->
            if not (Hashtbl.mem t.inodes target) then
              failm "ext4dax: dentry %S references free inode %d" dname target)
          node.dentries)
      t.inodes;
    (* Orphans (e.g. an unlinked-but-open file whose deletion committed). *)
    let orphans =
      Hashtbl.fold
        (fun ino node acc ->
          if ino <> root_ino && not (Hashtbl.mem referenced ino) then node :: acc else acc)
        t.inodes []
    in
    List.iter
      (fun node ->
        Cov.mark "ext4dax.mount.orphan";
        free_blocks t node;
        Hashtbl.remove t.inodes node.ino;
        t.deleted_inodes <- node.ino :: t.deleted_inodes)
      orphans;
    if orphans <> [] then commit_metadata t;
    t
  in
  match go () with
  | t -> Ok t
  | exception Mount_error e -> Error e

(* ------------------------------------------------------------------ *)
(* DAX extensions used by SplitFS's user-space component               *)

(* Physical byte offset of block [idx] of [ino], for mmap-style direct
   stores (how SplitFS writes its staging file). *)
let block_phys t ~ino ~idx =
  match get t ino with
  | Error _ -> None
  | Ok f -> ( match block_of f idx with 0 -> None | pg -> Some (page_off t.lay pg))

(* The SplitFS "relink" ioctl: move [n] block pointers from [src] (starting
   at [src_idx]) to [dst] (starting at [dst_idx]) without copying data.
   Replaced destination blocks are freed at the next commit; the source
   keeps holes. Both inodes become dirty; the caller is responsible for the
   committing fsync. *)
let relink t ~src ~src_idx ~dst ~dst_idx ~n ~dst_size =
  let* s = get t src in
  let* d = get t dst in
  if dst_idx + n > max_blocks t.lay then Error Errno.EFBIG
  else begin
    let* () =
      if dst_idx + n - 1 >= n_direct && d.indirect = 0 then
        let* pg = alloc_page t in
        d.indirect <- pg;
        Ok ()
      else Ok ()
    in
    for i = 0 to n - 1 do
      let pg = block_of s (src_idx + i) in
      (match block_of d (dst_idx + i) with
      | 0 -> ()
      | old -> t.pending_free <- old :: t.pending_free);
      set_block_dram d (dst_idx + i) pg;
      set_block_dram s (src_idx + i) 0
    done;
    if dst_size > d.size then d.size <- dst_size;
    mark_dirty t s;
    mark_dirty t d;
    Cov.mark "ext4dax.relink";
    Ok ()
  end

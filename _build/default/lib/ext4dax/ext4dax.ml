(** ext4-DAX and XFS-DAX: mature journaling file systems with weak
    (fsync-based) crash-consistency guarantees, plus the DAX-specific
    extensions SplitFS builds on ({!Fs} exposes the raw implementation for
    that purpose). *)

module Fs = Fs
module P = Vfs.Posix.Make (Fs)

type config = Fs.config

let default_config = Fs.default_config

let config ?(xfs = false) ?(n_pages = default_config.Fs.n_pages)
    ?(n_inodes = default_config.Fs.n_inodes) () =
  {
    default_config with
    Fs.fs_name = (if xfs then "xfs-dax" else "ext4-dax");
    n_pages;
    n_inodes;
    aligned_alloc = xfs;
  }

let driver ?(config = default_config) () =
  {
    Vfs.Driver.name = config.Fs.fs_name;
    consistency = Vfs.Driver.Weak;
    atomic_data = false;
    device_size = config.Fs.n_pages * config.Fs.page_size;
    mkfs = (fun pm -> P.handle (P.init (Fs.mkfs pm config)));
    mount =
      (fun pm ->
        match Fs.mount pm config with
        | Ok fs -> Ok (P.handle (P.init fs))
        | Error e -> Error e);
  }

lib/novafs/entry.ml: Bytes Char Int32 Int64 List Pmem String

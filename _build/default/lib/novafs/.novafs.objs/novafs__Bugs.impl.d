lib/novafs/bugs.ml:

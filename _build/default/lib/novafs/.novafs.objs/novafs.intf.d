lib/novafs/novafs.mli: Bugs Entry Fs Journal Layout Vfs

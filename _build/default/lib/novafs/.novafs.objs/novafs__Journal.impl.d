lib/novafs/journal.ml: Bytes Char Int32 Layout List Persist Pmem String

lib/novafs/novafs.ml: Bugs Entry Fs Journal Layout Vfs

lib/novafs/layout.ml: Bugs

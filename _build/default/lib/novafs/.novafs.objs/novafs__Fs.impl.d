lib/novafs/fs.ml: Blockalloc Bugs Bytes Cov Entry Hashtbl Int32 Int64 Journal Layout List Persist Pmem Printf Result String Vfs

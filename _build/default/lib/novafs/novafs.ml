(** NOVA / NOVA-Fortis: a log-structured PM file system model.

    Public surface:
    - {!driver} builds a {!Vfs.Driver.t} for the Chipmunk harness;
    - {!Bugs} holds the injectable crash-consistency faults (paper Table 1,
      bugs 1-12);
    - {!Layout} exposes the on-media layout configuration;
    - {!Fs} is the raw inode-level implementation (exposed for white-box
      tests). *)

module Bugs = Bugs
module Layout = Layout
module Entry = Entry
module Journal = Journal
module Fs = Fs
module P = Vfs.Posix.Make (Fs)

type config = Layout.config

let default_config = Layout.default_config

let config ?(page_size = default_config.Layout.page_size)
    ?(n_pages = default_config.Layout.n_pages) ?(n_inodes = default_config.Layout.n_inodes)
    ?(fortis = false) ?(bugs = Bugs.none) () =
  { Layout.page_size; n_pages; n_inodes; fortis; bugs }

let driver ?(config = default_config) () =
  {
    Vfs.Driver.name = (if config.Layout.fortis then "nova-fortis" else "nova");
    consistency = Vfs.Driver.Strong;
    atomic_data = true;
    device_size = config.Layout.n_pages * config.Layout.page_size;
    mkfs = (fun pm -> P.handle (P.init (Fs.mkfs pm config)));
    mount =
      (fun pm ->
        match Fs.mount pm config with
        | Ok fs -> Ok (P.handle (P.init fs))
        | Error e -> Error e);
  }

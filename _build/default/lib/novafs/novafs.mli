(** NOVA / NOVA-Fortis: a log-structured PM file system model.

    Metadata lives in per-inode logs published by atomic 8-byte tail
    updates; multi-word transactions go through a lite redo {!Journal};
    data writes are copy-on-write; allocator and directory indexes are
    volatile and rebuilt at mount. Fortis mode adds inode replicas and
    CRC32 checksums on inodes and log entries. *)

module Bugs : sig
  (** The paper's NOVA / NOVA-Fortis bug corpus as injectable switches (all
      default off = the fixed behaviour). See the field documentation in
      the implementation for per-bug mechanisms. *)
  type t = Bugs.t = {
    bug1_dentry_before_inode : bool;
    bug2_unflushed_log_init : bool;
    bug3_tail_before_page_init : bool;
    bug4_inplace_dentry_invalidate : bool;
    bug5_tail_outside_journal : bool;
    bug6_inplace_link_count : bool;
    bug7_eager_truncate_zero : bool;
    bug8_fallocate_publish_first : bool;
    bug9_nonatomic_entry_csum : bool;
    bug10_replica_not_updated : bool;
    bug11_replay_truncate_twice : bool;
    bug12_csum_after_commit : bool;
  }

  val none : t
  val all : t
end

module Layout = Layout
module Entry = Entry
module Journal = Journal

module Fs = Fs
(** The raw inode-level implementation, exposed for white-box tests. *)

module P : module type of Vfs.Posix.Make (Fs)

type config = Layout.config

val default_config : config

val config :
  ?page_size:int ->
  ?n_pages:int ->
  ?n_inodes:int ->
  ?fortis:bool ->
  ?bugs:Bugs.t ->
  unit ->
  config

val driver : ?config:config -> unit -> Vfs.Driver.t
(** Strong consistency with atomic data writes. The driver is named
    "nova-fortis" when the config enables Fortis mode. *)

(** The NOVA / NOVA-Fortis model: log-structured metadata with per-inode
    logs, a lite journal for multi-word transactions, copy-on-write data, and
    DRAM indexes rebuilt at mount.

    Commit discipline (correct behaviour, bugs off):
    - single-inode operations append log entries, fence, then publish them
      with one atomic 8-byte tail update;
    - multi-inode operations (and link-count changes) funnel every published
      word through the lite {!Journal};
    - data writes are copy-on-write: fresh pages are persisted before the
      entry naming them is appended, so a torn write can never surface.

    Each [Bugs] switch disables one piece of this discipline, reproducing
    the corresponding bug from the paper's Table 1. *)

module Types = Vfs.Types
module Errno = Vfs.Errno
module Pm = Persist.Pm
module L = Layout

let ( let* ) = Result.bind

type dentry = { target : int; entry_addr : int  (** media address of the Dentry_add *) }

type inode = {
  ino : int;
  kind : Types.file_kind;
  mutable links : int;
  mutable size : int;
  mutable head : int;  (** first log page *)
  mutable tail : int;  (** absolute byte address where the next entry goes *)
  mutable tail_page : int;
  extents : (int, int) Hashtbl.t;  (** file page index -> device page *)
  dentries : (string, dentry) Hashtbl.t;  (** directories only *)
  mutable opens : int;
  mutable error : Errno.t option;  (** degraded inode: all access returns this *)
  mutable content_csum : int;  (** fortis: expected crc32 of file content *)
  mutable csum_tracked : bool;  (** fortis: whether content_csum is authoritative *)
}

type t = {
  pm : Pm.t;
  lay : L.t;
  bugs : Bugs.t;
  fortis : bool;
  inodes : (int, inode) Hashtbl.t;
  alloc : Blockalloc.t;
  mutable unordered_extension : bool;
      (** Bug 3: a log extension in the current operation skipped its
          ordering fences, so the publish must not fence beforehand either. *)
}

let name = "nova"
let name_max = 24
let root_ino = L.root_ino
let page_size t = t.lay.L.cfg.L.page_size

(* ------------------------------------------------------------------ *)
(* Inode slot encoding                                                 *)

let slot_prefix ~valid ~kind ~links ~head =
  let b = Bytes.make 8 '\000' in
  Bytes.set b 0 (if valid then '\001' else '\000');
  Bytes.set b 1 (match kind with Types.Reg -> '\001' | Types.Dir -> '\002');
  Bytes.set_uint16_le b 2 links;
  Bytes.set_int32_le b 4 (Int32.of_int head);
  Bytes.to_string b

let slot_csum prefix = Pmem.Checksum.crc32 prefix

let write_slot t ~off ~valid ~kind ~links ~head ~tail =
  let prefix = slot_prefix ~valid ~kind ~links ~head in
  let b = Bytes.make L.inode_used_bytes '\000' in
  Bytes.blit_string prefix 0 b 0 8;
  Bytes.set_int64_le b L.i_tail (Int64.of_int tail);
  if t.fortis then Bytes.set_int32_le b L.i_csum (Int32.of_int (slot_csum prefix));
  Pm.memcpy_nt t.pm ~off (Bytes.to_string b)

(* Journal records for updating inode fields in place. *)

let le16 v =
  let b = Bytes.create 2 in
  Bytes.set_uint16_le b 0 v;
  Bytes.to_string b

let le64 v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Bytes.to_string b

let le32 v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Bytes.to_string b

let tail_record t ino tail = { Journal.addr = L.inode_off t.lay ino + L.i_tail; data = le64 tail }

(* A link-count change must also refresh the slot checksum and the replica
   (unless bug 10 withholds the replica update). *)
let links_records t inode links =
  let prefix =
    slot_prefix ~valid:true ~kind:inode.kind ~links ~head:inode.head
  in
  let primary =
    [ { Journal.addr = L.inode_off t.lay inode.ino + L.i_links; data = le16 links } ]
  in
  let primary =
    if t.fortis then
      primary
      @ [ { Journal.addr = L.inode_off t.lay inode.ino + L.i_csum; data = le32 (slot_csum prefix) } ]
    else primary
  in
  if t.fortis && not t.bugs.Bugs.bug10_replica_not_updated then
    primary
    @ [
        { Journal.addr = L.replica_off t.lay inode.ino + L.i_links; data = le16 links };
        { Journal.addr = L.replica_off t.lay inode.ino + L.i_csum; data = le32 (slot_csum prefix) };
      ]
  else primary

(* ------------------------------------------------------------------ *)
(* DRAM helpers                                                        *)

let get t ino =
  match Hashtbl.find_opt t.inodes ino with
  | None -> Error Errno.ENOENT
  | Some i -> Ok i

let live t ino =
  let* i = get t ino in
  match i.error with Some e -> Error e | None -> Ok i

let fresh_inode ~ino ~kind ~links ~head ~tail =
  {
    ino;
    kind;
    links;
    size = 0;
    head;
    tail;
    tail_page = tail / 1;
    (* fixed up by caller *)
    extents = Hashtbl.create 8;
    dentries = Hashtbl.create 8;
    opens = 0;
    error = None;
    content_csum = 0;
    csum_tracked = false;
  }

let alloc_ino t =
  let n = t.lay.L.cfg.L.n_inodes in
  let rec scan i =
    if i >= n then Error Errno.ENOSPC
    else if Hashtbl.mem t.inodes i then scan (i + 1)
    else Ok i
  in
  scan 0

(* ------------------------------------------------------------------ *)
(* Log machinery                                                       *)

let init_log_page t pg =
  (* Fresh log pages are zeroed so the entry scanner can rely on a zero type
     byte marking the end of the used region. *)
  let off = L.page_off t.lay pg in
  Pm.memset_nt t.pm ~off ~len:(page_size t) '\000';
  let header = Bytes.make L.lp_header '\000' in
  Bytes.set_int32_le header 0 (Int32.of_int L.log_page_magic);
  if t.bugs.Bugs.bug2_unflushed_log_init then
    (* Bug 2 (PM): the header is written with a cached store and never
       flushed; it can vanish in a crash even after the syscall returns. *)
    Pm.store t.pm ~off (Bytes.to_string header)
  else Pm.memcpy_nt t.pm ~off (Bytes.to_string header)

(* Ensure [need] bytes of space at the tail, extending the log if required.
   Returns the address where the entry must be written. *)
let make_room t inode ~need =
  let psz = page_size t in
  let page_end = L.page_off t.lay inode.tail_page + psz in
  if inode.tail + need <= page_end then Ok inode.tail
  else begin
    Cov.mark "nova.log.extend";
    let* pg = Blockalloc.alloc t.alloc in
    init_log_page t pg;
    if t.bugs.Bugs.bug3_tail_before_page_init then t.unordered_extension <- true
    else Pm.fence t.pm;
    Pm.nt_u32 t.pm ~off:(L.page_off t.lay inode.tail_page + L.lp_next) pg;
    if not t.bugs.Bugs.bug3_tail_before_page_init then Pm.fence t.pm;
    inode.tail_page <- pg;
    inode.tail <- L.page_off t.lay pg + L.lp_header;
    Ok inode.tail
  end

(* Append one encoded entry at the tail (without publishing it). Returns the
   address of the entry; the in-DRAM tail advances, the on-media tail does
   not. *)
let append_raw t inode entry =
  let bytes = Entry.encode ~fortis:t.fortis entry in
  let* addr = make_room t inode ~need:(String.length bytes) in
  (if t.fortis && t.bugs.Bugs.bug9_nonatomic_entry_csum then
     match entry with
     | Entry.Dentry_del _ | Entry.Setattr _ ->
       (* Bug 9 (PM): the entry body is stored non-temporally but its
          checksum is patched in with a cached store that is never flushed. *)
       let without =
         let b = Bytes.of_string bytes in
         Bytes.set_int32_le b Entry.csum_offset 0l;
         Bytes.to_string b
       in
       let csum = String.sub bytes Entry.csum_offset 4 in
       Pm.memcpy_nt t.pm ~off:addr without;
       Pm.store t.pm ~off:(addr + Entry.csum_offset) csum
     | Entry.Dentry_add _ | Entry.File_write _ -> Pm.memcpy_nt t.pm ~off:addr bytes
   else Pm.memcpy_nt t.pm ~off:addr bytes);
  inode.tail <- addr + String.length bytes;
  Ok addr

(* Operations that append several entries before one publish must not leave
   the in-DRAM tail advanced when a later step fails (e.g. ENOSPC on the
   second append of a rename): the next successful operation would publish
   the orphaned entries. Snapshot and restore the volatile cursor around
   fallible multi-append sequences. *)
let with_tail_rollback inodes f =
  let saved = List.map (fun (i : inode) -> (i, i.tail, i.tail_page)) inodes in
  match f () with
  | Ok _ as ok -> ok
  | Error _ as e ->
    List.iter
      (fun ((i : inode), tail, tail_page) ->
        i.tail <- tail;
        i.tail_page <- tail_page)
      saved;
    e

(* Bug 3 consumes the ordering fence that normally separates log-structure
   preparation from publication. *)
let pre_publish_fence t =
  if t.unordered_extension then t.unordered_extension <- false else Pm.fence t.pm

let publish_tail t inode =
  pre_publish_fence t;
  Pm.persist_u64 t.pm ~off:(L.inode_off t.lay inode.ino + L.i_tail) inode.tail

(* Publish tails/links of several inodes atomically through the journal. *)
let publish_journaled t records =
  let ordered = not t.unordered_extension in
  t.unordered_extension <- false;
  if ordered then Pm.fence t.pm;
  Journal.run ~ordered t.pm t.lay records

(* ------------------------------------------------------------------ *)
(* Data helpers                                                        *)

let read_page t inode idx =
  match Hashtbl.find_opt inode.extents idx with
  | None -> String.make (page_size t) '\000'
  | Some pg -> Pm.read t.pm ~off:(L.page_off t.lay pg) ~len:(page_size t)

let read_range t inode ~off ~len =
  let psz = page_size t in
  let buf = Bytes.create len in
  let rec go pos =
    if pos < len then begin
      let abs = off + pos in
      let idx = abs / psz and in_page = abs mod psz in
      let n = min (psz - in_page) (len - pos) in
      let page = read_page t inode idx in
      Bytes.blit_string page in_page buf pos n;
      go (pos + n)
    end
  in
  go 0;
  Bytes.to_string buf

let content t inode = read_range t inode ~off:0 ~len:inode.size

let free_extent_pages t inode ~from_idx =
  Hashtbl.iter
    (fun idx pg -> if idx >= from_idx then Blockalloc.free t.alloc pg)
    inode.extents;
  let doomed = Hashtbl.fold (fun idx _ acc -> if idx >= from_idx then idx :: acc else acc)
      inode.extents [] in
  List.iter (Hashtbl.remove inode.extents) doomed

(* Free the log pages of an inode, from head up to and including the page
   holding the committed tail. Pages linked beyond the tail page belong to
   an unpublished extension (a crash may have persisted the link without the
   tail update) and were never claimed by the allocator rebuild, so they
   must not be freed here. *)
let free_log_chain t ~head ~tail_page =
  let rec go pg =
    if pg <> 0 && pg < t.lay.L.cfg.L.n_pages then begin
      let next = Pm.read_u32 t.pm ~off:(L.page_off t.lay pg + L.lp_next) in
      Blockalloc.free t.alloc pg;
      if pg <> tail_page then go next
    end
  in
  go head

let reclaim_inode t inode =
  (* Invalidate the slot so the next mount does not resurrect the orphan;
     data and log pages return to the volatile free list. *)
  Pm.memcpy_nt t.pm ~off:(L.inode_off t.lay inode.ino) "\000";
  if t.fortis then Pm.memcpy_nt t.pm ~off:(L.replica_off t.lay inode.ino) "\000";
  Pm.fence t.pm;
  Hashtbl.iter (fun _ pg -> Blockalloc.free t.alloc pg) inode.extents;
  free_log_chain t ~head:inode.head ~tail_page:inode.tail_page;
  Hashtbl.remove t.inodes inode.ino

let drop_link t inode =
  inode.links <- inode.links - 1;
  if inode.links = 0 && inode.opens = 0 then reclaim_inode t inode

(* ------------------------------------------------------------------ *)
(* Inode creation (creat / mkdir share this)                           *)

let make_inode t ~dir ~name:fname ~kind =
  let d = Hashtbl.find t.inodes dir in
  let* ino = alloc_ino t in
  let* pg = Blockalloc.alloc t.alloc in
  let links = match kind with Types.Reg -> 1 | Types.Dir -> 2 in
  let tail = L.page_off t.lay pg + L.lp_header in
  let persist_new_inode () =
    init_log_page t pg;
    write_slot t ~off:(L.inode_off t.lay ino) ~valid:true ~kind ~links ~head:pg ~tail;
    if t.fortis then
      write_slot t ~off:(L.replica_off t.lay ino) ~valid:true ~kind ~links ~head:pg ~tail;
    Pm.fence t.pm
  in
  let node = fresh_inode ~ino ~kind ~links ~head:pg ~tail in
  node.tail_page <- pg;
  Hashtbl.replace t.inodes ino node;
  let finish_dentry () =
    let* addr = append_raw t d (Entry.Dentry_add { ino; name = fname; valid = true }) in
    (match kind with
    | Types.Reg -> publish_tail t d
    | Types.Dir ->
      (* mkdir also bumps the parent's link count: one journaled tx. *)
      d.links <- d.links + 1;
      publish_journaled t (tail_record t d.ino d.tail :: links_records t d d.links));
    Hashtbl.replace d.dentries fname { target = ino; entry_addr = addr };
    Ok ino
  in
  if t.bugs.Bugs.bug1_dentry_before_inode then begin
    (* Bug 1 (logic): the directory entry is committed before the new inode
       slot exists on media; a crash in between leaves a dangling dentry
       that recovery rejects. *)
    let* r = finish_dentry () in
    persist_new_inode ();
    Ok r
  end
  else begin
    persist_new_inode ();
    finish_dentry ()
  end

(* ------------------------------------------------------------------ *)
(* INODE_OPS                                                           *)

let lookup t ~dir ~name =
  let* d = live t dir in
  if d.kind <> Types.Dir then Error Errno.ENOTDIR
  else
    match Hashtbl.find_opt d.dentries name with
    | Some de -> Ok de.target
    | None -> Error Errno.ENOENT

let getattr t ~ino =
  let* i = get t ino in
  match i.error with
  | Some e -> Error e
  | None ->
    Ok
      {
        Types.st_ino = ino;
        st_kind = i.kind;
        st_size = (match i.kind with Types.Reg -> i.size | Types.Dir -> Hashtbl.length i.dentries);
        st_nlink = i.links;
      }

let create t ~dir ~name =
  Cov.mark "nova.create";
  let* d = live t dir in
  let* ino = make_inode t ~dir:d.ino ~name ~kind:Types.Reg in
  Ok ino

let mkdir t ~dir ~name =
  Cov.mark "nova.mkdir";
  let* d = live t dir in
  let* ino = make_inode t ~dir:d.ino ~name ~kind:Types.Dir in
  Ok ino

let link t ~ino ~dir ~name =
  Cov.mark "nova.link";
  let* f = live t ino in
  let* d = live t dir in
  if f.links >= 0xFFFF then Error Errno.EMLINK
  else begin
    if t.bugs.Bugs.bug6_inplace_link_count then begin
      (* Bug 6 (logic): the link count is bumped in place and persisted
         before the new dentry is committed. Deciding that the in-place
         update is safe requires re-reading the inode's log from media —
         the extra read that made the journalled fix *faster* in the
         paper's microbenchmark. *)
      let rec scan_chain pg =
        if pg <> 0 && pg < t.lay.L.cfg.L.n_pages then begin
          let _ = Pm.read t.pm ~off:(L.page_off t.lay pg) ~len:(page_size t) in
          if pg <> f.tail_page then
            scan_chain (Pm.read_u32 t.pm ~off:(L.page_off t.lay pg + L.lp_next))
        end
      in
      scan_chain f.head;
      let rec scan_dir pg =
        if pg <> 0 && pg < t.lay.L.cfg.L.n_pages then begin
          let _ = Pm.read t.pm ~off:(L.page_off t.lay pg) ~len:(page_size t) in
          if pg <> d.tail_page then
            scan_dir (Pm.read_u32 t.pm ~off:(L.page_off t.lay pg + L.lp_next))
        end
      in
      scan_dir d.head;
      Pm.memcpy_nt t.pm ~off:(L.inode_off t.lay ino + L.i_links) (le16 (f.links + 1));
      Pm.flush t.pm ~off:(L.inode_off t.lay ino + L.i_links) ~len:2;
      Pm.fence t.pm
    end;
    let* addr = append_raw t d (Entry.Dentry_add { ino; name; valid = true }) in
    f.links <- f.links + 1;
    if t.bugs.Bugs.bug6_inplace_link_count then publish_tail t d
    else
      publish_journaled t (tail_record t d.ino d.tail :: links_records t f f.links);
    Hashtbl.replace d.dentries name { target = ino; entry_addr = addr };
    Ok ()
  end

let unlink t ~dir ~name =
  Cov.mark "nova.unlink";
  let* d = live t dir in
  let de = Hashtbl.find d.dentries name in
  let* f = get t de.target in
  let* addr_ignored = append_raw t d (Entry.Dentry_del { ino = de.target; name }) in
  ignore addr_ignored;
  let links = f.links - 1 in
  publish_journaled t (tail_record t d.ino d.tail :: links_records t f links);
  Hashtbl.remove d.dentries name;
  drop_link t f;
  Ok ()

let rmdir t ~dir ~name =
  Cov.mark "nova.rmdir";
  let* d = live t dir in
  let de = Hashtbl.find d.dentries name in
  let* victim = get t de.target in
  let* addr_ignored = append_raw t d (Entry.Dentry_del { ino = de.target; name }) in
  ignore addr_ignored;
  d.links <- d.links - 1;
  publish_journaled t (tail_record t d.ino d.tail :: links_records t d d.links);
  Hashtbl.remove d.dentries name;
  victim.links <- 0;
  if victim.opens = 0 then reclaim_inode t victim;
  Ok ()

let rename t ~odir ~oname ~ndir ~nname =
  Cov.mark "nova.rename";
  if odir <> ndir then Cov.mark "nova.rename.crossdir";
  let* od = live t odir in
  let* nd = live t ndir in
  let de = Hashtbl.find od.dentries oname in
  let* moved = get t de.target in
  let target = Hashtbl.find_opt nd.dentries nname in
  if target <> None then Cov.mark "nova.rename.overwrite";
  let victim_reg =
    match target with
    | None -> None
    | Some tde -> (
      match get t tde.target with
      | Ok v when v.kind = Types.Reg -> Some v
      | _ -> None)
  in
  if
    t.bugs.Bugs.bug4_inplace_dentry_invalidate && odir = ndir
    && (target = None || victim_reg <> None)
  then begin
    (* Bug 4 (logic): the performance shortcut itself — invalidate the old
       dentry in place, fix the replaced file's link count in place, and
       publish the new name with a bare tail update, skipping the journalled
       transaction entirely. A crash between the in-place invalidation and
       the tail publish loses the renamed file. *)
    Pm.memcpy_nt t.pm ~off:(de.entry_addr + Entry.valid_offset) "\000";
    Pm.fence t.pm;
    (match victim_reg with
    | Some v -> Pm.memcpy_nt t.pm ~off:(L.inode_off t.lay v.ino + L.i_links) (le16 (v.links - 1))
    | None -> ());
    let* addr = append_raw t nd (Entry.Dentry_add { ino = de.target; name = nname; valid = true }) in
    publish_tail t nd;
    Hashtbl.remove od.dentries oname;
    Hashtbl.replace nd.dentries nname { target = de.target; entry_addr = addr };
    (match victim_reg with Some v -> drop_link t v | None -> ());
    Ok ()
  end
  else begin
  let* addr =
  with_tail_rollback [ od; nd ] (fun () ->
  (* Step 1: unpublish the old name. *)
  let* () =
    if t.bugs.Bugs.bug4_inplace_dentry_invalidate then begin
      (* Bug 4 (logic): the old dentry is invalidated in place, and that
         write is persisted before the journaled transaction commits. *)
      Pm.memcpy_nt t.pm ~off:(de.entry_addr + Entry.valid_offset) "\000";
      Pm.fence t.pm;
      Ok ()
    end
    else
      let* _ = append_raw t od (Entry.Dentry_del { ino = de.target; name = oname }) in
      Ok ()
  in
  (* Step 2: append the new name. *)
  append_raw t nd (Entry.Dentry_add { ino = de.target; name = nname; valid = true }))
  in
  (* Step 3: one journaled transaction publishes everything. *)
  let target_records =
    match target with
    | None -> []
    | Some tde -> (
      match get t tde.target with
      | Error _ -> []
      | Ok victim -> (
        match victim.kind with
        | Types.Reg -> links_records t victim (victim.links - 1)
        | Types.Dir -> []))
  in
  let dir_link_records =
    if moved.kind = Types.Dir && odir <> ndir then
      links_records t od (od.links - 1) @ links_records t nd (nd.links + 1)
    else []
  in
  let old_tail_in_tx = not t.bugs.Bugs.bug5_tail_outside_journal in
  let records =
    (if odir <> ndir && old_tail_in_tx then [ tail_record t od.ino od.tail ] else [])
    @ [ tail_record t nd.ino nd.tail ]
    @ target_records @ dir_link_records
  in
  (* Same-directory renames share one log, so one tail covers both entries;
     make sure the single record carries the final tail. *)
  let records = if odir = ndir then [ tail_record t nd.ino nd.tail ] @ target_records else records in
  publish_journaled t records;
  if odir <> ndir && not old_tail_in_tx then begin
    (* Bug 5 (logic): the old directory's tail was left out of the
       transaction and is published separately afterwards. *)
    Cov.mark "nova.rename.bug5_window";
    Pm.persist_u64 t.pm ~off:(L.inode_off t.lay od.ino + L.i_tail) od.tail
  end;
  (* DRAM updates. *)
  (match target with
  | None -> ()
  | Some tde -> (
    Hashtbl.remove nd.dentries nname;
    match get t tde.target with
    | Error _ -> ()
    | Ok victim -> (
      match victim.kind with
      | Types.Reg -> drop_link t victim
      | Types.Dir ->
        nd.links <- nd.links - 1;
        victim.links <- 0;
        if victim.opens = 0 then reclaim_inode t victim)));
  Hashtbl.remove od.dentries oname;
  Hashtbl.replace nd.dentries nname { target = de.target; entry_addr = addr };
  if moved.kind = Types.Dir && odir <> ndir then begin
    od.links <- od.links - 1;
    nd.links <- nd.links + 1
  end;
  Ok ()
  end

let readdir t ~dir =
  let* d = live t dir in
  Ok
    (Hashtbl.fold
       (fun name de acc -> { Types.d_ino = de.target; d_name = name } :: acc)
       d.dentries [])

let read t ~ino ~off ~len =
  let* f = live t ino in
  if t.fortis && f.csum_tracked then begin
    let actual = Pmem.Checksum.crc32 (content t f) in
    if actual <> f.content_csum then begin
      Cov.mark "nova.read.csum_fail";
      f.error <- Some Errno.EIO;
      Error Errno.EIO
    end
    else Ok (read_range t f ~off ~len)
  end
  else Ok (read_range t f ~off ~len)

(* Copy-on-write a page range; returns (entries, new page mappings). Data
   pages are persisted (written + fenced) before any entry is appended. *)
let cow_write t f ~off ~data =
  let psz = page_size t in
  let len = String.length data in
  let first = off / psz and last = (off + len - 1) / psz in
  let rec alloc_pages acc idx =
    if idx > last then Ok (List.rev acc)
    else
      let* pg = Blockalloc.alloc t.alloc in
      alloc_pages ((idx, pg) :: acc) (idx + 1)
  in
  let* pages = alloc_pages [] first in
  List.iter
    (fun (idx, pg) ->
      let page_start = idx * psz in
      let old = read_page t f idx in
      let b = Bytes.of_string old in
      let s = max off page_start and e = min (off + len) (page_start + psz) in
      Bytes.blit_string data (s - off) b (s - page_start) (e - s);
      Pm.memcpy_nt t.pm ~off:(L.page_off t.lay pg) (Bytes.to_string b))
    pages;
  Pm.fence t.pm;
  Ok pages

let rec take n l =
  if n = 0 then ([], l)
  else match l with
    | [] -> ([], [])
    | x :: r ->
      let a, b = take (n - 1) r in
      (x :: a, b)

let write t ~ino ~off ~data =
  Cov.mark "nova.write";
  let* f = live t ino in
  let len = String.length data in
  if len = 0 then Ok 0
  else begin
    let new_size = max f.size (off + len) in
    let* pages = cow_write t f ~off ~data in
    (* Entries: one per run of <= 8 pages. *)
    let psz = page_size t in
    let rec emit = function
      | [] -> Ok ()
      | chunk ->
        let c, rest = take 8 chunk in
        let idx0 = fst (List.hd c) in
        let entry =
          Entry.File_write
            {
              file_off = idx0 * psz;
              new_size;
              len = List.length c * psz;
              pages = List.map snd c;
            }
        in
        let* _ = append_raw t f entry in
        if rest = [] then Ok () else emit rest
    in
    let* () = with_tail_rollback [ f ] (fun () -> emit pages) in
    publish_tail t f;
    (* DRAM: remap and free replaced pages. *)
    List.iter
      (fun (idx, pg) ->
        (match Hashtbl.find_opt f.extents idx with
        | Some old -> Blockalloc.free t.alloc old
        | None -> ());
        Hashtbl.replace f.extents idx pg)
      pages;
    f.size <- new_size;
    if t.fortis then f.csum_tracked <- false;
    Ok len
  end

let content_after t f size old_size =
  if size <= old_size then read_range t f ~off:0 ~len:size
  else content t f ^ String.make (size - old_size) '\000'

let truncate t ~ino ~size =
  Cov.mark "nova.truncate";
  let* f = live t ino in
  if size = f.size then Ok ()
  else begin
    let psz = page_size t in
    let old_size = f.size in
    let data_csum =
      if not t.fortis then 0
      else if t.bugs.Bugs.bug12_csum_after_commit then
        (* Bug 12 (logic): the checksum is computed over the pre-truncate
           content, racing with the size update. *)
        Pmem.Checksum.crc32 (content t f)
      else begin
        let truncated =
          if size <= old_size then read_range t f ~off:0 ~len:size
          else content t f ^ String.make (size - old_size) '\000'
        in
        Pmem.Checksum.crc32 truncated
      end
    in
    (* Shrinking into the middle of a page rewrites that page copy-on-write
       so stale bytes cannot resurface after a later extension. *)
    let* cow_pages = with_tail_rollback [ f ] @@ fun () ->
    let* cow_pages =
      if size < old_size && size mod psz <> 0 && Hashtbl.mem f.extents (size / psz) then begin
        let idx = size / psz in
        let keep = size - (idx * psz) in
        let page = read_page t f idx in
        let fresh = String.sub page 0 keep ^ String.make (psz - keep) '\000' in
        let* pg = Blockalloc.alloc t.alloc in
        Pm.memcpy_nt t.pm ~off:(L.page_off t.lay pg) fresh;
        Pm.fence t.pm;
        let entry =
          Entry.File_write { file_off = idx * psz; new_size = old_size; len = psz; pages = [ pg ] }
        in
        let* _ = append_raw t f entry in
        Ok [ (idx, pg) ]
      end
      else Ok []
    in
    if t.bugs.Bugs.bug7_eager_truncate_zero && size < old_size then begin
      (* Bug 7 (logic): pages beyond the new size are zeroed in place before
         the setattr entry commits. *)
      Cov.mark "nova.truncate.eager_zero";
      let from_idx = (size + psz - 1) / psz in
      Hashtbl.iter
        (fun idx pg ->
          if idx >= from_idx then
            Pm.memset_nt t.pm ~off:(L.page_off t.lay pg) ~len:psz '\000')
        f.extents;
      Pm.fence t.pm
    end;
    let* _ = append_raw t f (Entry.Setattr { new_size = size; data_csum }) in
    Ok cow_pages
    in
    publish_tail t f;
    (* DRAM state. *)
    List.iter
      (fun (idx, pg) ->
        (match Hashtbl.find_opt f.extents idx with
        | Some old -> Blockalloc.free t.alloc old
        | None -> ());
        Hashtbl.replace f.extents idx pg)
      cow_pages;
    if size < old_size then begin
      let from_idx = (size + psz - 1) / psz in
      free_extent_pages t f ~from_idx
    end;
    f.size <- size;
    if t.fortis then begin
      f.csum_tracked <- true;
      f.content_csum <-
        (if t.bugs.Bugs.bug12_csum_after_commit then
           (* DRAM keeps the correct checksum; only the persisted entry is
              stale, so the bug surfaces after recovery. *)
           Pmem.Checksum.crc32 (content_after t f size old_size)
         else data_csum)
    end;
    Ok ()
  end

let fallocate t ~ino ~off ~len ~keep_size =
  Cov.mark "nova.fallocate";
  let* f = live t ino in
  let psz = page_size t in
  let first = off / psz and last = (off + len - 1) / psz in
  let new_size = if keep_size then f.size else max f.size (off + len) in
  (* Allocate pages for unmapped indexes, grouped into consecutive runs. *)
  let rec runs acc current idx =
    if idx > last then
      List.rev (match current with [] -> acc | c -> List.rev c :: acc)
    else if Hashtbl.mem f.extents idx then
      runs (match current with [] -> acc | c -> List.rev c :: acc) [] (idx + 1)
    else runs acc (idx :: current) (idx + 1)
  in
  let needed = runs [] [] first in
  let rec alloc_runs acc = function
    | [] -> Ok (List.rev acc)
    | run :: rest ->
      let rec alloc_run out = function
        | [] -> Ok (List.rev out)
        | idx :: more ->
          let* pg = Blockalloc.alloc t.alloc in
          alloc_run ((idx, pg) :: out) more
      in
      let* pairs = alloc_run [] run in
      alloc_runs (pairs :: acc) rest
  in
  let* run_pages = alloc_runs [] needed in
  let zero_pages () =
    List.iter
      (fun pairs ->
        List.iter
          (fun (_, pg) -> Pm.memset_nt t.pm ~off:(L.page_off t.lay pg) ~len:psz '\000')
          pairs)
      run_pages;
    Pm.fence t.pm
  in
  let append_entries () =
    let rec emit = function
      | [] -> Ok ()
      | [] :: rest -> emit rest
      | pairs :: rest ->
        let c, more = take 8 pairs in
        let idx0 = fst (List.hd c) in
        let entry =
          Entry.File_write
            { file_off = idx0 * psz; new_size; len = List.length c * psz; pages = List.map snd c }
        in
        let* _ = append_raw t f entry in
        emit (more :: rest)
    in
    emit run_pages
  in
  let grew = new_size <> f.size in
  (* Growth beyond the last mapped page must be recorded explicitly: extent
     entries alone cannot represent it (e.g. extending into an
     already-mapped page, or into a hole). *)
  let data_csum =
    if t.fortis && grew then
      Pmem.Checksum.crc32 (content t f ^ String.make (new_size - f.size) '\000')
    else 0
  in
  let append_all () =
    let* () = append_entries () in
    if grew then
      let* _ = append_raw t f (Entry.Setattr { new_size; data_csum }) in
      Ok ()
    else Ok ()
  in
  let* () =
    if t.bugs.Bugs.bug8_fallocate_publish_first then begin
      (* Bug 8 (logic): the extent entries are committed before the pages
         they name are zeroed. *)
      Cov.mark "nova.fallocate.publish_first";
      let* () = with_tail_rollback [ f ] append_all in
      publish_tail t f;
      zero_pages ();
      Ok ()
    end
    else begin
      zero_pages ();
      let* () = with_tail_rollback [ f ] append_all in
      if run_pages <> [] || grew then publish_tail t f;
      Ok ()
    end
  in
  List.iter
    (fun pairs -> List.iter (fun (idx, pg) -> Hashtbl.replace f.extents idx pg) pairs)
    run_pages;
  f.size <- new_size;
  if t.fortis then
    if grew then begin
      f.csum_tracked <- true;
      f.content_csum <- data_csum
    end
    else f.csum_tracked <- false;
  Ok ()

(* Extended attributes are not supported (paper section 4.1: only the DAX
   family implements them among the tested systems). *)
let setxattr _t ~ino:_ ~name:_ ~value:_ = Error Errno.ENOTSUP
let getxattr _t ~ino:_ ~name:_ = Error Errno.ENOTSUP
let listxattr _t ~ino:_ = Error Errno.ENOTSUP
let removexattr _t ~ino:_ ~name:_ = Error Errno.ENOTSUP

let fsync _t ~ino:_ = Ok ()
let sync _t = ()

let iget t ~ino = match get t ino with Error _ -> () | Ok i -> i.opens <- i.opens + 1

let iput t ~ino =
  match get t ino with
  | Error _ -> ()
  | Ok i ->
    i.opens <- max 0 (i.opens - 1);
    if i.links = 0 && i.opens = 0 then reclaim_inode t i

(* ------------------------------------------------------------------ *)
(* mkfs                                                                *)

let mkfs pm cfg =
  let lay = L.v cfg in
  if Pm.size pm < lay.L.size then
    Pmem.Fault.fail "nova mkfs: device too small (%d < %d)" (Pm.size pm) lay.L.size;
  let t =
    {
      pm;
      lay;
      bugs = cfg.L.bugs;
      fortis = cfg.L.fortis;
      inodes = Hashtbl.create 32;
      alloc = Blockalloc.create ~n_pages:cfg.L.n_pages;
      unordered_extension = false;
    }
  in
  for p = 0 to lay.L.first_free_page - 1 do
    Blockalloc.mark_used t.alloc p
  done;
  (* Superblock. *)
  let sb = Bytes.make L.sb_len '\000' in
  Bytes.set_int32_le sb L.sb_magic (Int32.of_int L.magic);
  Bytes.set_int32_le sb L.sb_version (Int32.of_int L.version);
  Bytes.set_int32_le sb L.sb_page_size (Int32.of_int cfg.L.page_size);
  Bytes.set_int32_le sb L.sb_n_pages (Int32.of_int cfg.L.n_pages);
  Bytes.set_int32_le sb L.sb_n_inodes (Int32.of_int cfg.L.n_inodes);
  Bytes.set sb L.sb_fortis (if cfg.L.fortis then '\001' else '\000');
  Pm.memcpy_nt t.pm ~off:0 (Bytes.to_string sb);
  (* Zero inode table(s) and journal. *)
  let it_bytes = L.it_pages cfg * cfg.L.page_size in
  Pm.memset_nt t.pm ~off:lay.L.inode_table ~len:it_bytes '\000';
  if cfg.L.fortis then Pm.memset_nt t.pm ~off:lay.L.replica_table ~len:it_bytes '\000';
  Pm.memset_nt t.pm ~off:lay.L.journal ~len:cfg.L.page_size '\000';
  (* Root inode. *)
  let root_pg =
    match Blockalloc.alloc t.alloc with
    | Ok pg -> pg
    | Error _ -> Pmem.Fault.fail "nova mkfs: no pages"
  in
  (* Root log page must be persisted even when bug 2 is armed: mkfs is not a
     crash-tested path, so write it directly. *)
  Pm.memset_nt t.pm ~off:(L.page_off lay root_pg) ~len:cfg.L.page_size '\000';
  let header = Bytes.make L.lp_header '\000' in
  Bytes.set_int32_le header 0 (Int32.of_int L.log_page_magic);
  Pm.memcpy_nt t.pm ~off:(L.page_off lay root_pg) (Bytes.to_string header);
  let tail = L.page_off lay root_pg + L.lp_header in
  write_slot t ~off:(L.inode_off lay root_ino) ~valid:true ~kind:Types.Dir ~links:2 ~head:root_pg
    ~tail;
  if cfg.L.fortis then
    write_slot t ~off:(L.replica_off lay root_ino) ~valid:true ~kind:Types.Dir ~links:2
      ~head:root_pg ~tail;
  Pm.fence t.pm;
  let root = fresh_inode ~ino:root_ino ~kind:Types.Dir ~links:2 ~head:root_pg ~tail in
  root.tail_page <- root_pg;
  Hashtbl.replace t.inodes root_ino root;
  t

(* ------------------------------------------------------------------ *)
(* Mount: journal recovery + log scan + DRAM rebuild                   *)

type scanned = {
  s_inode : inode;
  mutable s_trimmed : (int * int) list;
      (** (file page idx, device page) trimmed by a trailing Setattr —
          consulted by the bug-11 double-replay pass. *)
  mutable s_last_was_shrink : bool;
}

let read_slot pm lay ~off =
  let valid = Pmem.Image.read_u8 (Pm.image pm) ~off:(off + L.i_valid) in
  let kind = Pmem.Image.read_u8 (Pm.image pm) ~off:(off + L.i_kind) in
  let links = Pmem.Image.read_u16 (Pm.image pm) ~off:(off + L.i_links) in
  let head = Pmem.Image.read_u32 (Pm.image pm) ~off:(off + L.i_log_head) in
  let tail = Pmem.Image.read_u64 (Pm.image pm) ~off:(off + L.i_tail) in
  let csum = Pmem.Image.read_u32 (Pm.image pm) ~off:(off + L.i_csum) in
  ignore lay;
  (valid, kind, links, head, tail, csum)

let slot_csum_ok pm ~off csum =
  let prefix = Pm.read pm ~off ~len:8 in
  slot_csum prefix = csum

(* Walk one inode's log and rebuild its DRAM state. Returns [Error msg] for
   structural corruption that must reject the mount; degradable damage
   (fortis checksum failures, unreachable log head) marks the inode instead. *)
let scan_log t node tail =
  let psz = page_size t in
  let head_off = L.page_off t.lay node.head in
  if node.head = 0 || node.head >= t.lay.L.cfg.L.n_pages then begin
    node.error <- Some Errno.EIO;
    Ok []
  end
  else if Pm.read_u32 t.pm ~off:(head_off + L.lp_magic) <> L.log_page_magic then begin
    Cov.mark "nova.mount.bad_log_head";
    node.error <- Some Errno.EIO;
    Ok []
  end
  else begin
    let entries = ref [] in
    let rec walk page addr =
      if addr = tail then Ok (L.page_off t.lay page, addr)
      else begin
        let page_start = L.page_off t.lay page in
        let body = Pm.read t.pm ~off:page_start ~len:psz in
        let pos = addr - page_start in
        let jump () =
          let next = Pm.read_u32 t.pm ~off:(page_start + L.lp_next) in
          if next = 0 || next >= t.lay.L.cfg.L.n_pages then
            Error
              (Printf.sprintf "nova: inode %d log ends before tail (tail=%d addr=%d)" node.ino
                 tail addr)
          else if Pm.read_u32 t.pm ~off:(L.page_off t.lay next + L.lp_magic) <> L.log_page_magic
          then Error (Printf.sprintf "nova: inode %d log chain hits uninitialised page" node.ino)
          else walk next (L.page_off t.lay next + L.lp_header)
        in
        if pos + 2 > psz then jump ()
        else if body.[pos] = '\000' then jump ()
        else
          match Entry.decode ~fortis:t.fortis body pos with
          | Error Entry.Bad_csum ->
            Cov.mark "nova.mount.entry_csum_fail";
            (* Fortis: treat the rest of this log as lost. *)
            entries := (`Corrupt, addr) :: !entries;
            Ok (page_start, addr)
          | Error _ ->
            Error (Printf.sprintf "nova: inode %d has a corrupt log entry at %d" node.ino addr)
          | Ok (e, elen) ->
            entries := (`Entry e, addr) :: !entries;
            walk page (addr + elen)
      end
    in
    match walk node.head (head_off + L.lp_header) with
    | Error _ as e -> e
    | Ok (tail_page_start, effective_tail) ->
      node.tail <- effective_tail;
      node.tail_page <- L.page_of_addr t.lay tail_page_start;
      Ok (List.rev !entries)
  end

let apply_entries t node entries scanned =
  let psz = page_size t in
  List.iter
    (fun (item, addr) ->
      match item with
      | `Corrupt ->
        (* A checksum-corrupt entry truncates the log view; a directory that
           loses entries this way is unsafe to use. *)
        if node.kind = Types.Dir then node.error <- Some Errno.EIO
      | `Entry (Entry.Dentry_add { ino; name; valid }) ->
        if valid then Hashtbl.replace node.dentries name { target = ino; entry_addr = addr }
        else Hashtbl.remove node.dentries name;
        scanned.s_last_was_shrink <- false
      | `Entry (Entry.Dentry_del { name; _ }) ->
        Hashtbl.remove node.dentries name;
        scanned.s_last_was_shrink <- false
      | `Entry (Entry.File_write { file_off; new_size; len; pages }) ->
        List.iteri
          (fun i pg -> Hashtbl.replace node.extents ((file_off / psz) + i) pg)
          pages;
        ignore len;
        node.size <- new_size;
        node.csum_tracked <- false;
        scanned.s_last_was_shrink <- false
      | `Entry (Entry.Setattr { new_size; data_csum }) ->
        let shrink = new_size < node.size in
        if shrink then begin
          let from_idx = (new_size + psz - 1) / psz in
          let doomed =
            Hashtbl.fold
              (fun idx pg acc -> if idx >= from_idx then (idx, pg) :: acc else acc)
              node.extents []
          in
          List.iter (fun (idx, _) -> Hashtbl.remove node.extents idx) doomed;
          scanned.s_trimmed <- doomed;
          scanned.s_last_was_shrink <- true
        end
        else scanned.s_last_was_shrink <- false;
        node.size <- new_size;
        if t.fortis then begin
          node.csum_tracked <- true;
          node.content_csum <- data_csum
        end)
    entries


exception Mount_error of string

let mount pm cfg =
  let lay = L.v cfg in
  let failm fmt = Printf.ksprintf (fun s -> raise (Mount_error s)) fmt in
  let go () =
    if Pm.size pm < lay.L.size then failm "nova: device smaller than layout";
    if Pm.read_u32 pm ~off:L.sb_magic <> L.magic then failm "nova: bad superblock magic";
    if Pm.read_u32 pm ~off:L.sb_version <> L.version then failm "nova: bad version";
    if Pm.read_u32 pm ~off:L.sb_page_size <> cfg.L.page_size then failm "nova: page size mismatch";
    if Pm.read_u32 pm ~off:L.sb_n_pages <> cfg.L.n_pages then failm "nova: page count mismatch";
    if Pm.read_u8 pm ~off:L.sb_fortis = 1 <> cfg.L.fortis then failm "nova: fortis flag mismatch";
    let t =
      {
        pm;
        lay;
        bugs = cfg.L.bugs;
        fortis = cfg.L.fortis;
        inodes = Hashtbl.create 32;
        alloc = Blockalloc.create ~n_pages:cfg.L.n_pages;
        unordered_extension = false;
      }
    in
    for p = 0 to lay.L.first_free_page - 1 do
      Blockalloc.mark_used t.alloc p
    done;
    (match Journal.recover pm lay with
    | Error e -> failm "%s" e
    | Ok _replayed -> ());
    (* Pass 1: load inode slots, scan logs, rebuild DRAM state. *)
    let scanned : (int, scanned) Hashtbl.t = Hashtbl.create 32 in
    for ino = 0 to cfg.L.n_inodes - 1 do
      let off = L.inode_off lay ino in
      let valid, kindb, links, head, tail, csum = read_slot pm lay ~off in
      if valid <> 0 then begin
        let kind = if kindb = 2 then Types.Dir else Types.Reg in
        let degraded_by_replica =
          if not t.fortis then false
          else begin
            let r_off = L.replica_off lay ino in
            let r_valid, _, r_links, _, _, r_csum = read_slot pm lay ~off:r_off in
            let p_ok = slot_csum_ok pm ~off csum in
            let r_ok = r_valid = 1 && slot_csum_ok pm ~off:r_off r_csum in
            if p_ok && r_ok && links <> r_links then begin
              Cov.mark "nova.mount.replica_mismatch";
              true
            end
            else if (not p_ok) && r_ok then begin
              (* Restore the primary from the replica. *)
              let fixed = Pm.read pm ~off:r_off ~len:8 in
              Pm.memcpy_nt pm ~off fixed;
              Pm.memcpy_nt pm ~off:(off + L.i_csum) (le32 r_csum);
              Pm.fence pm;
              false
            end
            else if p_ok && not r_ok then begin
              let fixed = Pm.read pm ~off ~len:8 in
              Pm.memcpy_nt pm ~off:r_off fixed;
              Pm.memcpy_nt pm ~off:(r_off + L.i_csum) (le32 csum);
              Pm.fence pm;
              false
            end
            else not p_ok (* both sides broken: degrade the inode *)
          end
        in
        let node = fresh_inode ~ino ~kind ~links ~head ~tail in
        node.tail_page <- L.page_of_addr lay tail;
        Hashtbl.replace t.inodes ino node;
        let sc = { s_inode = node; s_trimmed = []; s_last_was_shrink = false } in
        Hashtbl.replace scanned ino sc;
        if degraded_by_replica then node.error <- Some Errno.EIO
        else
          match scan_log t node tail with
          | Error e -> failm "%s" e
          | Ok entries -> apply_entries t node entries sc
      end
    done;
    if not (Hashtbl.mem t.inodes root_ino) then failm "nova: no root inode";
    (* Pass 2: cross-checks. A dentry naming a free inode slot is fatal
       structural corruption (how bug 1 surfaces after a crash). *)
    let referenced : (int, unit) Hashtbl.t = Hashtbl.create 32 in
    Hashtbl.iter
      (fun _ node ->
        if node.kind = Types.Dir && node.error = None then
          Hashtbl.iter
            (fun dname de ->
              if not (Hashtbl.mem t.inodes de.target) then begin
                Cov.mark "nova.mount.dangling_dentry";
                failm "nova: dentry %S references free inode %d" dname de.target
              end;
              Hashtbl.replace referenced de.target ())
            node.dentries)
      t.inodes;
    (* Pass 3: occupancy rebuild. A double reference raises a device fault,
       which surfaces as a failed mount. *)
    Hashtbl.iter
      (fun _ node ->
        if node.error = None then begin
          let rec claim_chain pg =
            if pg <> 0 && pg < cfg.L.n_pages then begin
              Blockalloc.mark_used t.alloc pg;
              if pg <> node.tail_page then
                claim_chain (Pm.read_u32 pm ~off:(L.page_off lay pg + L.lp_next))
            end
          in
          claim_chain node.head;
          Hashtbl.iter (fun _ pg -> Blockalloc.mark_used t.alloc pg) node.extents
        end)
      t.inodes;
    (* Bug 11 (fortis): an extra "truncate replay" pass frees pages the log
       scan already returned to the allocator. *)
    if t.fortis && t.bugs.Bugs.bug11_replay_truncate_twice then
      Hashtbl.iter
        (fun _ sc ->
          if sc.s_last_was_shrink then begin
            Cov.mark "nova.mount.truncate_replay";
            List.iter (fun (_, pg) -> Blockalloc.free t.alloc pg) sc.s_trimmed
          end)
        scanned;
    (* Pass 4: reclaim orphans — valid inodes no dentry references (a crash
       between inode persist and dentry commit, or an unlinked-open file). *)
    let orphans =
      Hashtbl.fold
        (fun ino node acc ->
          if ino <> root_ino && node.error = None && not (Hashtbl.mem referenced ino) then
            node :: acc
          else acc)
        t.inodes []
    in
    List.iter
      (fun node ->
        Cov.mark "nova.mount.orphan";
        reclaim_inode t node)
      orphans;
    t
  in
  match go () with
  | t -> Ok t
  | exception Mount_error e -> Error e

(** On-media layout of the NOVA model.

    The device is an array of fixed-size pages:

    {v
    page 0                superblock
    pages 1 .. it_pages   inode table (fixed slots of 64 bytes)
    (fortis only)         replica inode table, same size
    1 page                lite journal
    remaining pages       log pages and data pages (allocated on demand)
    v}

    Like the real NOVA, allocator state and directory/extent indexes live
    only in DRAM and are rebuilt at mount by scanning per-inode logs. *)

type config = {
  page_size : int;
  n_pages : int;
  n_inodes : int;
  fortis : bool;  (** NOVA-Fortis mode: replica inodes + checksums. *)
  bugs : Bugs.t;
}

let default_config =
  { page_size = 128; n_pages = 1024; n_inodes = 32; fortis = false; bugs = Bugs.none }

let magic = 0x4E4F5641 (* "NOVA" *)
let log_page_magic = 0x4C4F4750 (* "LOGP" *)
let version = 1

(* Superblock fields (byte offsets in page 0). *)
let sb_magic = 0
let sb_version = 4
let sb_page_size = 8
let sb_n_pages = 12
let sb_n_inodes = 16
let sb_fortis = 20
let sb_len = 24

(* Inode slots. *)
let inode_slot_size = 64
let i_valid = 0 (* u8: 0 free, 1 in use *)
let i_kind = 1 (* u8: 1 reg, 2 dir *)
let i_links = 2 (* u16 *)
let i_log_head = 4 (* u32: first log page, 0 = none *)
let i_tail = 8 (* u64: absolute byte offset of the log end (commit pointer) *)
let i_csum = 16 (* u32, fortis: crc32 of bytes [0, 16) *)
let inode_used_bytes = 20

(* Log pages. *)
let lp_magic = 0 (* u32 *)
let lp_next = 4 (* u32: next log page number, 0 = end *)
let lp_header = 8

type t = {
  cfg : config;
  inode_table : int;  (** byte offset of slot 0 *)
  replica_table : int;  (** byte offset of replica slot 0; = inode_table when not fortis *)
  journal : int;  (** byte offset of the journal page *)
  first_free_page : int;
  size : int;  (** device bytes *)
}

let it_pages cfg = (cfg.n_inodes * inode_slot_size + cfg.page_size - 1) / cfg.page_size

let v cfg =
  let itp = it_pages cfg in
  let inode_table = cfg.page_size in
  let replica_table =
    if cfg.fortis then inode_table + (itp * cfg.page_size) else inode_table
  in
  let journal_page = 1 + itp + (if cfg.fortis then itp else 0) in
  {
    cfg;
    inode_table;
    replica_table;
    journal = journal_page * cfg.page_size;
    first_free_page = journal_page + 1;
    size = cfg.n_pages * cfg.page_size;
  }

let page_off t page = page * t.cfg.page_size
let page_of_addr t addr = addr / t.cfg.page_size
let inode_off t ino = t.inode_table + (ino * inode_slot_size)
let replica_off t ino = t.replica_table + (ino * inode_slot_size)
let root_ino = 0

(* A journal page holds at most this many record bytes. *)
let journal_space t = t.cfg.page_size

(* Usable entry space in a log page. *)
let log_space t = t.cfg.page_size - lp_header

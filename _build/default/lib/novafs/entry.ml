(** Encoding of per-inode log entries.

    Every entry starts with a common header:
    byte 0: entry type; byte 1: total length; bytes 2-5: crc32 of the whole
    entry with the checksum field zeroed (0 when Fortis checksums are off).

    [Dentry_add] carries a [valid] byte that the correct implementation
    never modifies after append (deletion appends a [Dentry_del] entry);
    clearing it in place is exactly the in-place-update shortcut behind
    paper bug 4. *)

type t =
  | Dentry_add of { ino : int; name : string; valid : bool }
  | Dentry_del of { ino : int; name : string }
  | File_write of { file_off : int; new_size : int; len : int; pages : int list }
  | Setattr of { new_size : int; data_csum : int }

let csum_offset = 2
let valid_offset = 10
let setattr_csum_offset = 14

let type_code = function
  | Dentry_add _ -> 1
  | Dentry_del _ -> 2
  | File_write _ -> 3
  | Setattr _ -> 4

let encoded_size = function
  | Dentry_add { name; _ } | Dentry_del { name; _ } -> 12 + String.length name
  | File_write { pages; _ } -> 28 + (4 * List.length pages)
  | Setattr _ -> 18

let set_u16 b off v = Bytes.set_uint16_le b off (v land 0xFFFF)
let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int (v land 0xFFFFFFFF))
let set_u64 b off v = Bytes.set_int64_le b off (Int64.of_int v)

let encode ~fortis t =
  let len = encoded_size t in
  let b = Bytes.make len '\000' in
  Bytes.set b 0 (Char.chr (type_code t));
  Bytes.set b 1 (Char.chr len);
  (match t with
  | Dentry_add { ino; name; valid } ->
    set_u32 b 6 ino;
    Bytes.set b valid_offset (if valid then '\001' else '\000');
    Bytes.set b 11 (Char.chr (String.length name));
    Bytes.blit_string name 0 b 12 (String.length name)
  | Dentry_del { ino; name } ->
    set_u32 b 6 ino;
    Bytes.set b 11 (Char.chr (String.length name));
    Bytes.blit_string name 0 b 12 (String.length name)
  | File_write { file_off; new_size; len = wlen; pages } ->
    set_u64 b 6 file_off;
    set_u64 b 14 new_size;
    set_u32 b 22 wlen;
    set_u16 b 26 (List.length pages);
    List.iteri (fun i p -> set_u32 b (28 + (4 * i)) p) pages
  | Setattr { new_size; data_csum } ->
    set_u64 b 6 new_size;
    set_u32 b setattr_csum_offset data_csum);
  if fortis then begin
    let csum = Pmem.Checksum.crc32 (Bytes.to_string b) in
    set_u32 b csum_offset csum
  end;
  Bytes.to_string b

type decode_error = Bad_type of int | Bad_length | Bad_csum

let get_u16 s off = Char.code s.[off] lor (Char.code s.[off + 1] lsl 8)

let get_u32 s off =
  get_u16 s off lor (get_u16 s (off + 2) lsl 16)

let get_u64 s off = get_u32 s off lor (get_u32 s (off + 4) lsl 32)

(* Decode the entry starting at [pos] in the raw page body [s]; returns the
   entry, its encoded length, and whether the in-place valid byte is set. *)
let decode ~fortis s pos =
  if pos + 2 > String.length s then Error Bad_length
  else
    let etype = Char.code s.[pos] in
    let elen = Char.code s.[pos + 1] in
    if elen < 12 || pos + elen > String.length s then Error Bad_length
    else
      let check_csum () =
        if not fortis then true
        else begin
          let b = Bytes.of_string (String.sub s pos elen) in
          set_u32 b csum_offset 0;
          Pmem.Checksum.crc32 (Bytes.to_string b) = get_u32 s (pos + csum_offset)
        end
      in
      if not (check_csum ()) then Error Bad_csum
      else
        match etype with
        | 1 | 2 ->
          let ino = get_u32 s (pos + 6) in
          let name_len = Char.code s.[pos + 11] in
          if pos + 12 + name_len > String.length s || elen <> 12 + name_len then
            Error Bad_length
          else
            let name = String.sub s (pos + 12) name_len in
            if etype = 1 then
              let valid = s.[pos + valid_offset] <> '\000' in
              Ok (Dentry_add { ino; name; valid }, elen)
            else Ok (Dentry_del { ino; name }, elen)
        | 3 ->
          let n = get_u16 s (pos + 26) in
          if elen <> 28 + (4 * n) then Error Bad_length
          else
            let pages = List.init n (fun i -> get_u32 s (pos + 28 + (4 * i))) in
            Ok
              ( File_write
                  {
                    file_off = get_u64 s (pos + 6);
                    new_size = get_u64 s (pos + 14);
                    len = get_u32 s (pos + 22);
                    pages;
                  },
                elen )
        | 4 ->
          if elen <> 18 then Error Bad_length
          else
            Ok
              ( Setattr
                  { new_size = get_u64 s (pos + 6); data_csum = get_u32 s (pos + setattr_csum_offset) },
                elen )
        | n -> Error (Bad_type n)

(** NOVA's lite journal: a small redo journal used to update multiple
    metadata words (log tails, link counts) atomically across inodes.

    Protocol: write the record area (count byte + packed records) with
    non-temporal stores, fence, set the valid byte, fence, apply the records
    in place, fence, clear the valid byte, fence. Recovery replays a
    committed journal before any log scanning.

    Journal page layout: byte 0 = valid flag; byte 1 = record count;
    bytes 2.. = records, each [addr u32][len u8][data..]. *)

type record = { addr : int; data : string }

let record_size r = 5 + String.length r.data

let encode records =
  let total = List.fold_left (fun acc r -> acc + record_size r) 0 records in
  let b = Bytes.make (1 + total) '\000' in
  Bytes.set b 0 (Char.chr (List.length records));
  let pos = ref 1 in
  List.iter
    (fun r ->
      Bytes.set_int32_le b !pos (Int32.of_int r.addr);
      Bytes.set b (!pos + 4) (Char.chr (String.length r.data));
      Bytes.blit_string r.data 0 b (!pos + 5) (String.length r.data);
      pos := !pos + record_size r)
    records;
  Bytes.to_string b

let commit ?(ordered = true) pm lay records =
  let body = encode records in
  if String.length body + 1 > Layout.journal_space lay then
    Pmem.Fault.fail "nova journal: transaction too large (%d bytes)" (String.length body);
  Persist.Pm.memcpy_nt pm ~off:(lay.Layout.journal + 1) body;
  if ordered then Persist.Pm.fence pm;
  Persist.Pm.memcpy_nt pm ~off:lay.Layout.journal "\001";
  Persist.Pm.fence pm

let apply pm records =
  List.iter (fun r -> Persist.Pm.memcpy_nt pm ~off:r.addr r.data) records;
  Persist.Pm.fence pm

let clear pm lay =
  Persist.Pm.memcpy_nt pm ~off:lay.Layout.journal "\000";
  Persist.Pm.fence pm

let run ?(ordered = true) pm lay records =
  commit ~ordered pm lay records;
  apply pm records;
  clear pm lay

(* Recovery: replay a committed journal, if any. Record parsing is bounds
   checked against the journal area; a malformed committed journal is
   structural corruption and rejects the mount. *)
let recover pm lay =
  if Persist.Pm.read_u8 pm ~off:lay.Layout.journal = 0 then Ok 0
  else begin
    let space = Layout.journal_space lay in
    let n = Persist.Pm.read_u8 pm ~off:(lay.Layout.journal + 1) in
    let rec parse acc pos k =
      if k = 0 then Ok (List.rev acc)
      else if pos + 5 > space then Error "nova journal: truncated record"
      else
        let addr = Persist.Pm.read_u32 pm ~off:(lay.Layout.journal + pos) in
        let len = Persist.Pm.read_u8 pm ~off:(lay.Layout.journal + pos + 4) in
        if pos + 5 + len > space then Error "nova journal: record overruns journal"
        else if addr + len > lay.Layout.size then Error "nova journal: record address out of range"
        else
          let data = Persist.Pm.read pm ~off:(lay.Layout.journal + pos + 5) ~len in
          parse ({ addr; data } :: acc) (pos + 5 + len) (k - 1)
    in
    match parse [] 2 n with
    | Error _ as e -> e
    | Ok records ->
      apply pm records;
      clear pm lay;
      Ok (List.length records)
  end

(** Injectable crash-consistency faults for the NOVA / NOVA-Fortis model.

    Each switch re-introduces one bug from the paper's corpus (Table 1,
    bugs 1-12); all default to [false], i.e. the fixed behaviour. The
    mechanisms follow the paper's per-bug descriptions and observations
    (in-place-update shortcuts, items left out of transactions, fragile
    DRAM-rebuild recovery, non-atomic checksum maintenance). *)

type t = {
  bug1_dentry_before_inode : bool;
      (** creat/mkdir commit the directory entry before the new inode slot is
          persisted; recovery treats the dangling dentry as fatal corruption.
          Consequence: file system unmountable. (Logic) *)
  bug2_unflushed_log_init : bool;
      (** The new inode's log page header is written with a cached store and
          never flushed; after a crash the inode points to an uninitialised
          log. Consequence: file is unreadable and undeletable. (PM) *)
  bug3_tail_before_page_init : bool;
      (** Log extension publishes the new tail without fencing the new page's
          initialisation and link first; recovery cannot reach the tail.
          Consequence: file system unmountable. (Logic) *)
  bug4_inplace_dentry_invalidate : bool;
      (** rename invalidates the old directory entry in place before the
          journaled transaction commits. Consequence: rename atomicity broken,
          file disappears. (Logic) *)
  bug5_tail_outside_journal : bool;
      (** rename leaves the old directory's tail update out of the journal
          and applies it afterwards. Consequence: rename atomicity broken,
          old name still present. (Logic) *)
  bug6_inplace_link_count : bool;
      (** link bumps the inode link count in place before the new dentry is
          committed. Consequence: link count incremented before the new name
          appears. (Logic) *)
  bug7_eager_truncate_zero : bool;
      (** truncate zeroes the truncated data pages before the setattr entry
          commits. Consequence: file data lost. (Logic) *)
  bug8_fallocate_publish_first : bool;
      (** fallocate commits the extent entry before the newly allocated pages
          are zeroed. Consequence: stale data exposed / file data lost.
          (Logic) *)
  bug9_nonatomic_entry_csum : bool;
      (** Fortis: delete/setattr log entries are checksummed with a separate
          unflushed store. Consequence: unreadable directory or file data
          loss. (PM) *)
  bug10_replica_not_updated : bool;
      (** Fortis: journaled inode updates skip the replica; recovery sees a
          primary/replica mismatch and degrades the inode. Consequence: file
          is undeletable. (Logic) *)
  bug11_replay_truncate_twice : bool;
      (** Fortis: recovery re-frees pages already reclaimed by the log scan
          after a truncate. Consequence: FS attempts to deallocate free
          blocks. (Logic) *)
  bug12_csum_after_commit : bool;
      (** Fortis: truncate commits the setattr entry first and fills in the
          content checksum afterwards. Consequence: file is unreadable.
          (Logic) *)
}

let none =
  {
    bug1_dentry_before_inode = false;
    bug2_unflushed_log_init = false;
    bug3_tail_before_page_init = false;
    bug4_inplace_dentry_invalidate = false;
    bug5_tail_outside_journal = false;
    bug6_inplace_link_count = false;
    bug7_eager_truncate_zero = false;
    bug8_fallocate_publish_first = false;
    bug9_nonatomic_entry_csum = false;
    bug10_replica_not_updated = false;
    bug11_replay_truncate_twice = false;
    bug12_csum_after_commit = false;
  }

let all =
  {
    bug1_dentry_before_inode = true;
    bug2_unflushed_log_init = true;
    bug3_tail_before_page_init = true;
    bug4_inplace_dentry_invalidate = true;
    bug5_tail_outside_journal = true;
    bug6_inplace_link_count = true;
    bug7_eager_truncate_zero = true;
    bug8_fallocate_publish_first = true;
    bug9_nonatomic_entry_csum = true;
    bug10_replica_not_updated = true;
    bug11_replay_truncate_twice = true;
    bug12_csum_after_commit = true;
  }

(** SplitFS: a hybrid user/kernel PM file system in strict mode.

    The user-space component ({!Usplit}) stages data writes into a
    pre-allocated file with mmap-style non-temporal stores and records every
    operation in a persistent operation log; the kernel component is the
    {!Ext4dax} model. Strict mode makes every operation synchronous and
    atomic even though the kernel alone is only fsync-consistent — which is
    exactly the machinery the paper's five SplitFS bugs (21-25) break. *)

module Usplit = Usplit
module Bugs = struct
  type t = Usplit.bugs = {
    bug21_unfenced_metadata_log : bool;
    bug22_unfenced_staging_data : bool;
    bug23_entry_before_data : bool;
    bug24_boundary_entry_unfenced : bool;
    bug25_rename_two_entries : bool;
  }

  let none = Usplit.no_bugs

  let all =
    {
      bug21_unfenced_metadata_log = true;
      bug22_unfenced_staging_data = true;
      bug23_entry_before_data = true;
      bug24_boundary_entry_unfenced = true;
      bug25_rename_two_entries = true;
    }
end

type config = Usplit.config

let default_config = Usplit.default_config

let config ?(bugs = Bugs.none) ?(log_pages = default_config.Usplit.log_pages)
    ?(staging_pages = default_config.Usplit.staging_pages) () =
  { default_config with Usplit.log_pages; staging_pages; bugs }

let driver ?(config = default_config) () =
  {
    Vfs.Driver.name = "splitfs";
    consistency = Vfs.Driver.Strong;
    atomic_data = true;
    device_size = Usplit.device_size config;
    mkfs = (fun pm -> Usplit.handle (Usplit.mkfs pm config));
    mount =
      (fun pm ->
        match Usplit.mount pm config with
        | Ok t -> Ok (Usplit.handle t)
        | Error e -> Error e);
  }

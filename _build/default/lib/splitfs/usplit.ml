(** The SplitFS user-space component ("U-split", strict mode).

    SplitFS splits responsibilities: a kernel file system (our
    {!Ext4dax}) owns metadata, while the user-space library handles file
    data by staging writes into a pre-allocated staging file with
    non-temporal (mmap-style) stores and later {e relinking} the staged
    blocks into the target file without a copy. To give strict-mode
    guarantees on top of a weak kernel FS, every operation is recorded in a
    persistent {e operation log} before the syscall returns; recovery
    replays the log over the recovered kernel state (paper section 2,
    SplitFS; all five SplitFS bugs in the paper live in this logging
    machinery).

    Layout added after the kernel file system's pages:
    one header page (active-bank byte) followed by two log banks. The log
    is compacted into the inactive bank at every kernel commit point and
    the active-bank byte is flipped atomically, so the log always holds
    exactly the operations since the last kernel commit. *)

module Types = Vfs.Types
module Errno = Vfs.Errno
module Pm = Persist.Pm
module Kfs = Ext4dax.Fs

let ( let* ) = Result.bind

type bugs = {
  bug21_unfenced_metadata_log : bool;
      (** Metadata ops return before their log entry is fenced. *)
  bug22_unfenced_staging_data : bool;
      (** Staged data is never fenced; relink publishes extents whose bytes
          may still be in flight. *)
  bug23_entry_before_data : bool;
      (** The write log entry is persisted before the staged bytes. *)
  bug24_boundary_entry_unfenced : bool;
      (** Entries straddling a log page boundary skip their fence. *)
  bug25_rename_two_entries : bool;
      (** rename is logged as two independent entries (add + delete). *)
}

let no_bugs =
  {
    bug21_unfenced_metadata_log = false;
    bug22_unfenced_staging_data = false;
    bug23_entry_before_data = false;
    bug24_boundary_entry_unfenced = false;
    bug25_rename_two_entries = false;
  }

type config = {
  kernel : Ext4dax.Fs.config;
  log_pages : int;  (** per bank *)
  staging_pages : int;
  bugs : bugs;
}

let default_config =
  {
    kernel = { Ext4dax.Fs.default_config with Ext4dax.Fs.fs_name = "splitfs-kernel" };
    log_pages = 8;
    staging_pages = 24;
    bugs = no_bugs;
  }

let device_size cfg =
  let psz = cfg.kernel.Kfs.page_size in
  (cfg.kernel.Kfs.n_pages + 1 + (2 * cfg.log_pages)) * psz

let staging_path = "/.staging"

(* ------------------------------------------------------------------ *)
(* State                                                               *)

type extent = { foff : int; xlen : int; soff : int }

type overlay = {
  mutable osize : int;  (** authoritative file size (staged view) *)
  mutable extents : extent list;  (** oldest first *)
}

(* Locate the (first) path of an inode in the kernel namespace; used when
   the log is compacted, where entries must name paths valid at the new
   commit cut. Orphans have no path and their staged data is unreplayable
   by design. *)
let rec path_of_ino_in kfs ~dir ~prefix ino =
  match Ext4dax.Fs.get kfs dir with
  | Error _ -> None
  | Ok d ->
    Hashtbl.fold
      (fun name target acc ->
        match acc with
        | Some _ -> acc
        | None ->
          let path = if prefix = "/" then "/" ^ name else prefix ^ "/" ^ name in
          if target = ino then Some path
          else
            match Ext4dax.Fs.get kfs target with
            | Ok n when n.Ext4dax.Fs.kind = Vfs.Types.Dir ->
              path_of_ino_in kfs ~dir:target ~prefix:path ino
            | _ -> None)
      d.Ext4dax.Fs.dentries None

type fd_info = { path : string; ino : int; flags : Types.open_flag list }

type t = {
  pm : Pm.t;
  cfg : config;
  kfs : Kfs.t;
  kh : Vfs.Handle.t;
  log_header : int;  (** byte offset of the active-bank byte *)
  banks : int array;  (** byte offsets of bank 0 / bank 1 *)
  bank_size : int;
  mutable active : int;
  mutable log_used : int;
  staging_ino : int;
  mutable staging_used : int;  (** bytes consumed in the staging file *)
  overlays : (int, overlay) Hashtbl.t;  (** kernel ino -> staged view *)
  fds : (int, fd_info) Hashtbl.t;
  bugs : bugs;
}

let kpsz t = t.cfg.kernel.Kfs.page_size
let staging_cap t = t.cfg.staging_pages * kpsz t

let kino t path =
  match t.kh.Vfs.Handle.stat ~path with Ok st -> Some st.Types.st_ino | Error _ -> None

let overlay t ino = Hashtbl.find_opt t.overlays ino

let overlay_or_create t ino ~ksize =
  match overlay t ino with
  | Some o -> o
  | None ->
    let o = { osize = ksize; extents = [] } in
    Hashtbl.replace t.overlays ino o;
    o

(* ------------------------------------------------------------------ *)
(* Operation log                                                       *)

(* Entry: [0] type u8, [1-2] len u16, [3-6] csum u32, payload. *)

type entry =
  | E_creat of string
  | E_mkdir of string
  | E_unlink of string
  | E_rmdir of string
  | E_link of string * string
  | E_rename of string * string
  | E_rename_add of string * string  (* bug 25 *)
  | E_rename_del of string  (* bug 25 *)
  | E_truncate of string * int
  | E_fallocate of string * int * int * bool
  | E_write of { path : string; foff : int; len : int; soff : int }
      (** Paths, not inode numbers: entries are replayed in order from the
          last kernel commit, so the path is interpreted exactly in the
          state where the operation originally ran. Inode numbers are not
          stable across recovery (open descriptors pin inodes in the
          original execution but not during replay). *)

let type_code = function
  | E_creat _ -> 1
  | E_mkdir _ -> 2
  | E_unlink _ -> 3
  | E_rmdir _ -> 4
  | E_link _ -> 5
  | E_rename _ -> 6
  | E_rename_add _ -> 7
  | E_rename_del _ -> 8
  | E_truncate _ -> 9
  | E_fallocate _ -> 10
  | E_write _ -> 11

let put_str buf s =
  Buffer.add_char buf (Char.chr (String.length s));
  Buffer.add_string buf s

let put_u32 buf v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Buffer.add_bytes buf b

let encode_entry e =
  let payload = Buffer.create 32 in
  (match e with
  | E_creat p | E_mkdir p | E_unlink p | E_rmdir p | E_rename_del p -> put_str payload p
  | E_link (s, d) | E_rename (s, d) | E_rename_add (s, d) ->
    put_str payload s;
    put_str payload d
  | E_truncate (p, n) ->
    put_str payload p;
    put_u32 payload n
  | E_fallocate (p, off, len, keep) ->
    put_str payload p;
    put_u32 payload off;
    put_u32 payload len;
    Buffer.add_char payload (if keep then '\001' else '\000')
  | E_write { path; foff; len; soff } ->
    put_str payload path;
    put_u32 payload foff;
    put_u32 payload len;
    put_u32 payload soff);
  let payload = Buffer.contents payload in
  let total = 7 + String.length payload in
  let b = Bytes.make total '\000' in
  Bytes.set b 0 (Char.chr (type_code e));
  Bytes.set_uint16_le b 1 total;
  Bytes.blit_string payload 0 b 7 (String.length payload);
  let csum = Pmem.Checksum.crc32 (Bytes.to_string b) in
  Bytes.set_int32_le b 3 (Int32.of_int csum);
  Bytes.to_string b

let get_u32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let decode_entry raw pos =
  if pos + 7 > String.length raw then None
  else
    let etype = Char.code raw.[pos] in
    if etype = 0 then None
    else
      let total = Char.code raw.[pos + 1] lor (Char.code raw.[pos + 2] lsl 8) in
      if total < 7 || pos + total > String.length raw then None
      else begin
        let body = Bytes.of_string (String.sub raw pos total) in
        let recorded = get_u32 (Bytes.to_string body) 3 in
        Bytes.set_int32_le body 3 0l;
        if Pmem.Checksum.crc32 (Bytes.to_string body) <> recorded then None
        else begin
          let s = String.sub raw pos total in
          let gstr off =
            let n = Char.code s.[off] in
            (String.sub s (off + 1) n, off + 1 + n)
          in
          let entry =
            match etype with
            | 1 -> Some (E_creat (fst (gstr 7)))
            | 2 -> Some (E_mkdir (fst (gstr 7)))
            | 3 -> Some (E_unlink (fst (gstr 7)))
            | 4 -> Some (E_rmdir (fst (gstr 7)))
            | 8 -> Some (E_rename_del (fst (gstr 7)))
            | 5 | 6 | 7 ->
              let a, off = gstr 7 in
              let b, _ = gstr off in
              Some
                (match etype with
                | 5 -> E_link (a, b)
                | 6 -> E_rename (a, b)
                | _ -> E_rename_add (a, b))
            | 9 ->
              let p, off = gstr 7 in
              Some (E_truncate (p, get_u32 s off))
            | 10 ->
              let p, off = gstr 7 in
              Some
                (E_fallocate (p, get_u32 s off, get_u32 s (off + 4), s.[off + 8] <> '\000'))
            | 11 ->
              let p, off = gstr 7 in
              Some
                (E_write
                   {
                     path = p;
                     foff = get_u32 s off;
                     len = get_u32 s (off + 4);
                     soff = get_u32 s (off + 8);
                   })
            | _ -> None
          in
          Option.map (fun e -> (e, total)) entry
        end
      end

(* Append an entry to the active bank. [fence_entry] is the crash-
   consistency linchpin the SplitFS bugs chip away at. *)
let append_entry t e ~metadata =
  let bytes = encode_entry e in
  let len = String.length bytes in
  if t.log_used + len + 1 > t.bank_size then
    (* The caller compacts at every commit point; overflowing both means the
       workload outran the log. *)
    Pmem.Fault.fail "splitfs: operation log full";
  let addr = t.banks.(t.active) + t.log_used in
  Pm.memcpy_nt t.pm ~off:addr bytes;
  let crosses_page = addr / kpsz t <> (addr + len - 1) / kpsz t in
  let skip_fence =
    (metadata && t.bugs.bug21_unfenced_metadata_log)
    || (crosses_page && t.bugs.bug24_boundary_entry_unfenced)
  in
  if skip_fence then Cov.mark "splitfs.log.unfenced" else Pm.fence t.pm;
  t.log_used <- t.log_used + len

(* ------------------------------------------------------------------ *)
(* Staging                                                             *)

(* Write [data] into the staging file starting at staging offset [soff]
   with non-temporal stores through the DAX mapping. *)
let staging_store t ~soff data =
  let psz = kpsz t in
  let len = String.length data in
  let rec go pos =
    if pos < len then begin
      let abs = soff + pos in
      let idx = abs / psz and in_page = abs mod psz in
      let n = min (psz - in_page) (len - pos) in
      (match Kfs.block_phys t.kfs ~ino:t.staging_ino ~idx with
      | None -> Pmem.Fault.fail "splitfs: staging block %d unmapped" idx
      | Some phys -> Pm.memcpy_nt t.pm ~off:(phys + in_page) (String.sub data pos n));
      go (pos + n)
    end
  in
  go 0

let staging_read t ~soff ~len =
  let psz = kpsz t in
  let buf = Bytes.make len '\000' in
  let rec go pos =
    if pos < len then begin
      let abs = soff + pos in
      let idx = abs / psz and in_page = abs mod psz in
      let n = min (psz - in_page) (len - pos) in
      (match Kfs.block_phys t.kfs ~ino:t.staging_ino ~idx with
      | None -> ()
      | Some phys -> Bytes.blit_string (Pm.read t.pm ~off:(phys + in_page) ~len:n) 0 buf pos n);
      go (pos + n)
    end
  in
  go 0;
  Bytes.to_string buf

(* ------------------------------------------------------------------ *)
(* Commit points: relink + kernel commit + log compaction              *)

(* Re-serialize the pending overlay state into the inactive bank and flip
   the active-bank byte atomically. Called immediately after a kernel
   commit, so metadata entries are obsolete and only staged-write entries
   survive. *)
let compact_log t =
  let target = 1 - t.active in
  let buf = Buffer.create 128 in
  Hashtbl.iter
    (fun ino o ->
      match path_of_ino_in t.kfs ~dir:Kfs.root_ino ~prefix:"/" ino with
      | None -> () (* orphan: nothing post-crash could read it anyway *)
      | Some path ->
        List.iter
          (fun x ->
            Buffer.add_string buf
              (encode_entry (E_write { path; foff = x.foff; len = x.xlen; soff = x.soff })))
          o.extents)
    t.overlays;
  let body = Buffer.contents buf in
  if String.length body + 1 > t.bank_size then Pmem.Fault.fail "splitfs: compacted log overflow";
  (* Zero the tail so the scanner stops cleanly, then flip. *)
  Pm.memcpy_nt t.pm ~off:t.banks.(target) body;
  Pm.memset_nt t.pm
    ~off:(t.banks.(target) + String.length body)
    ~len:(t.bank_size - String.length body)
    '\000';
  Pm.fence t.pm;
  Pm.memcpy_nt t.pm ~off:t.log_header (String.make 1 (Char.chr target));
  Pm.fence t.pm;
  t.active <- target;
  t.log_used <- String.length body

(* Relink (or copy) the staged extents of [ino] into the kernel file, then
   commit kernel metadata and compact the log. *)
let sync_file t ino =
  Cov.mark "splitfs.fsync";
  let psz = kpsz t in
  (match overlay t ino with
  | None -> ()
  | Some o ->
    List.iter
      (fun x ->
        let block_aligned = x.foff mod psz = 0 && x.soff mod psz = 0 in
        if block_aligned then begin
          Cov.mark "splitfs.relink";
          let n = (x.xlen + psz - 1) / psz in
          match
            Kfs.relink t.kfs ~src:t.staging_ino ~src_idx:(x.soff / psz) ~dst:ino
              ~dst_idx:(x.foff / psz) ~n ~dst_size:(min o.osize (x.foff + x.xlen))
          with
          | Ok () -> ()
          | Error _ -> Pmem.Fault.fail "splitfs: relink failed"
        end
        else begin
          (* Unaligned extents take the copy path through the kernel. *)
          Cov.mark "splitfs.copy_path";
          let data = staging_read t ~soff:x.soff ~len:x.xlen in
          match Kfs.write t.kfs ~ino ~off:x.foff ~data with
          | Ok _ -> ()
          | Error _ -> Pmem.Fault.fail "splitfs: copy-back failed"
        end)
      o.extents;
    (* The staged view may extend past what extents alone imply (e.g. a
       truncate up); make the kernel size match the overlay. *)
    (match Kfs.get t.kfs ino with
    | Ok f when f.Kfs.size <> o.osize -> ignore (Kfs.truncate t.kfs ~ino ~size:o.osize)
    | _ -> ());
    Hashtbl.remove t.overlays ino);
  (match Kfs.fsync t.kfs ~ino with Ok () -> () | Error _ -> ());
  compact_log t

let sync_all t =
  let inos = Hashtbl.fold (fun ino _ acc -> ino :: acc) t.overlays [] in
  List.iter
    (fun ino -> if Result.is_ok (Kfs.get t.kfs ino) then sync_file t ino else Hashtbl.remove t.overlays ino)
    inos;
  Kfs.sync t.kfs;
  compact_log t

(* Reset the staging file: re-fallocate to full size (it loses blocks to
   relinks) and persist the fresh mapping. *)
let reset_staging t =
  (match Kfs.truncate t.kfs ~ino:t.staging_ino ~size:0 with Ok () -> () | Error _ -> ());
  (match
     Kfs.fallocate t.kfs ~ino:t.staging_ino ~off:0 ~len:(staging_cap t) ~keep_size:false
   with
  | Ok () -> ()
  | Error _ -> Pmem.Fault.fail "splitfs: cannot re-provision staging");
  (match Kfs.fsync t.kfs ~ino:t.staging_ino with Ok () -> () | Error _ -> ());
  compact_log t;
  t.staging_used <- 0

(* Allocate staging space (block aligned). Exhaustion forces a full sync,
   which relinks everything away and lets us re-provision. *)
let salloc t len =
  let psz = kpsz t in
  let need = (len + psz - 1) / psz * psz in
  if t.staging_used + need > staging_cap t then begin
    sync_all t;
    reset_staging t
  end;
  if t.staging_used + need > staging_cap t then Error Errno.ENOSPC
  else begin
    let soff = t.staging_used in
    t.staging_used <- t.staging_used + need;
    Ok soff
  end

(* ------------------------------------------------------------------ *)
(* Staged write                                                        *)

let staged_pwrite t ~ino ~path ~off ~data =
  let len = String.length data in
  let* soff = salloc t len in
  let o =
    let ksize = match Kfs.get t.kfs ino with Ok f -> f.Kfs.size | Error _ -> 0 in
    overlay_or_create t ino ~ksize
  in
  (* The descriptor's recorded path can go stale (rename of an enclosing
     directory, or an overwrite-rename orphaning the inode). Log under the
     inode's *current* path; a true orphan gets no entry at all — nothing
     post-crash could reach its data, and replaying under a stale name
     would clobber whichever file owns that name now. *)
  let current_path =
    if kino t path = Some ino then Some path
    else path_of_ino_in t.kfs ~dir:Kfs.root_ino ~prefix:"/" ino
  in
  let entry =
    Option.map (fun p -> E_write { path = p; foff = off; len; soff }) current_path
  in
  let log_entry () = Option.iter (fun e -> append_entry t e ~metadata:false) entry in
  if t.bugs.bug23_entry_before_data then begin
    (* Bug 23: the log entry (with its length) is persisted before the
       staged bytes; replay can only zero-fill. *)
    Cov.mark "splitfs.bug23";
    log_entry ();
    staging_store t ~soff data;
    Pm.fence t.pm
  end
  else if t.bugs.bug22_unfenced_staging_data then begin
    (* Bug 22: staged bytes are written but never fenced; a later relink
       publishes extents whose data may not have reached media. *)
    Cov.mark "splitfs.bug22";
    staging_store t ~soff data;
    log_entry ()
  end
  else begin
    staging_store t ~soff data;
    Pm.fence t.pm;
    log_entry ()
  end;
  o.extents <- o.extents @ [ { foff = off; xlen = len; soff } ];
  if off + len > o.osize then o.osize <- off + len;
  Ok len

(* Assemble file content through the staged overlay. *)
let overlay_read t ~ino ~off ~len =
  match overlay t ino with
  | None -> (
    match Kfs.read t.kfs ~ino ~off ~len with Ok s -> s | Error _ -> String.make len '\000')
  | Some o ->
    let buf = Bytes.make len '\000' in
    (match Kfs.get t.kfs ino with
    | Error _ -> ()
    | Ok f ->
      let kavail = max 0 (min len (f.Kfs.size - off)) in
      if kavail > 0 then (
        match Kfs.read t.kfs ~ino ~off ~len:kavail with
        | Ok s -> Bytes.blit_string s 0 buf 0 kavail
        | Error _ -> ()));
    List.iter
      (fun x ->
        let s = max off x.foff and e = min (off + len) (x.foff + x.xlen) in
        if s < e then
          Bytes.blit_string (staging_read t ~soff:(x.soff + s - x.foff) ~len:(e - s)) 0 buf
            (s - off) (e - s))
      o.extents;
    Bytes.to_string buf

let file_size t ino =
  match overlay t ino with
  | Some o -> o.osize
  | None -> ( match Kfs.get t.kfs ino with Ok f -> f.Kfs.size | Error _ -> 0)

(* ------------------------------------------------------------------ *)
(* Overlay bookkeeping for namespace changes                           *)

(* The staged overlay of a name about to disappear must only be dropped
   once the kernel operation actually succeeds — and not while any open
   descriptor still references the inode (orphan files stay readable and
   writable through their descriptors; {!close} reaps the overlay when the
   kernel reclaims the inode). *)
let doomed_overlay t path =
  match t.kh.Vfs.Handle.stat ~path with
  | Ok st when st.Types.st_nlink <= 1 && st.Types.st_kind = Types.Reg ->
    let still_open =
      Hashtbl.fold (fun _ info acc -> acc || info.ino = st.Types.st_ino) t.fds false
    in
    if still_open then None else Some st.Types.st_ino
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The intercepted POSIX surface                                       *)

let hidden path = path = staging_path

let log_metadata t e =
  append_entry t e ~metadata:true

(* creat = O_CREAT|O_TRUNC|O_WRONLY: log what actually happened. *)
let creat t ~path =
  if hidden path then Error Errno.EPERM
  else begin
    let existed = Result.is_ok (t.kh.Vfs.Handle.stat ~path) in
    let* fd = t.kh.Vfs.Handle.creat ~path in
    (if existed then begin
       log_metadata t (E_truncate (path, 0));
       match kino t path with
       | Some ino -> Hashtbl.remove t.overlays ino
       | None -> ()
     end
     else log_metadata t (E_creat path));
    let* st = t.kh.Vfs.Handle.fstat ~fd in
    if not existed then Hashtbl.remove t.overlays st.Types.st_ino;
    Hashtbl.replace t.fds fd { path; ino = st.Types.st_ino; flags = [ Types.O_WRONLY ] };
    Ok fd
  end

let open_ t ~path ~flags =
  if hidden path then Error Errno.EPERM
  else begin
    let existed = Result.is_ok (t.kh.Vfs.Handle.stat ~path) in
    let* fd = t.kh.Vfs.Handle.open_ ~path ~flags in
    (if List.mem Types.O_CREAT flags && not existed then log_metadata t (E_creat path));
    (if List.mem Types.O_TRUNC flags && existed && Types.writable flags then begin
       log_metadata t (E_truncate (path, 0));
       match kino t path with
       | Some ino -> Hashtbl.remove t.overlays ino
       | None -> ()
     end);
    let* st = t.kh.Vfs.Handle.fstat ~fd in
    if List.mem Types.O_CREAT flags && not existed then Hashtbl.remove t.overlays st.Types.st_ino;
    Hashtbl.replace t.fds fd { path; ino = st.Types.st_ino; flags };
    Ok fd
  end

let close t ~fd =
  let info = Hashtbl.find_opt t.fds fd in
  let* () = t.kh.Vfs.Handle.close ~fd in
  Hashtbl.remove t.fds fd;
  (* Closing the last descriptor of an orphaned file reclaims its kernel
     inode; the overlay must not survive to haunt a reused inode number. *)
  (match info with
  | Some { ino; _ } when Result.is_error (Kfs.get t.kfs ino) -> Hashtbl.remove t.overlays ino
  | _ -> ());
  Ok ()

let fd_info t fd =
  match Hashtbl.find_opt t.fds fd with Some i -> Ok i | None -> Error Errno.EBADF

let fd_ino t fd =
  let* info = fd_info t fd in
  Ok (info, info.ino)

let mkdir t ~path =
  if hidden path then Error Errno.EPERM
  else
    let* () = t.kh.Vfs.Handle.mkdir ~path in
    log_metadata t (E_mkdir path);
    Ok ()

let unlink t ~path =
  if hidden path then Error Errno.ENOENT
  else begin
    let doomed = doomed_overlay t path in
    let* () = t.kh.Vfs.Handle.unlink ~path in
    log_metadata t (E_unlink path);
    Option.iter (Hashtbl.remove t.overlays) doomed;
    Ok ()
  end

let rmdir t ~path =
  if hidden path then Error Errno.ENOENT
  else
    let* () = t.kh.Vfs.Handle.rmdir ~path in
    log_metadata t (E_rmdir path);
    Ok ()

let link t ~src ~dst =
  if hidden src || hidden dst then Error Errno.EPERM
  else
    let* () = t.kh.Vfs.Handle.link ~src ~dst in
    log_metadata t (E_link (src, dst));
    Ok ()

let rename t ~src ~dst =
  if hidden src || hidden dst then Error Errno.EPERM
  else begin
    let src_kind =
      match t.kh.Vfs.Handle.stat ~path:src with
      | Ok st -> Some st.Types.st_kind
      | Error _ -> None
    in
    (* Renaming onto the same inode (self-rename or a hard link of the
       source) is a POSIX no-op: nothing is doomed. *)
    let doomed =
      match (doomed_overlay t dst, kino t src) with
      | Some dino, Some sino when dino <> sino -> Some dino
      | Some dino, None -> Some dino
      | _ -> None
    in
    let* () = t.kh.Vfs.Handle.rename ~src ~dst in
    Option.iter (Hashtbl.remove t.overlays) doomed;
    if t.bugs.bug25_rename_two_entries && src_kind = Some Types.Reg then begin
      (* Bug 25: rename is logged as two separately-fenced entries; replay
         after a crash between them leaves both names. *)
      Cov.mark "splitfs.bug25";
      log_metadata t (E_rename_add (src, dst));
      log_metadata t (E_rename_del src)
    end
    else log_metadata t (E_rename (src, dst));
    (* Descriptors follow the rename. *)
    Hashtbl.iter
      (fun fd info -> if info.path = src then Hashtbl.replace t.fds fd { info with path = dst })
      (Hashtbl.copy t.fds);
    Ok ()
  end

let truncate t ~path ~size =
  if hidden path then Error Errno.ENOENT
  else if size < 0 then Error Errno.EINVAL
  else begin
    match t.kh.Vfs.Handle.stat ~path with
    | Error e -> Error e
    | Ok st when st.Types.st_kind <> Types.Reg -> Error Errno.EISDIR
    | Ok st ->
      let ino = st.Types.st_ino in
      let* () = t.kh.Vfs.Handle.truncate ~path ~size in
      log_metadata t (E_truncate (path, size));
      (match overlay t ino with
      | None -> ()
      | Some o ->
        o.extents <-
          List.filter_map
            (fun x ->
              if x.foff >= size then None
              else if x.foff + x.xlen > size then Some { x with xlen = size - x.foff }
              else Some x)
            o.extents;
        o.osize <- size);
      Ok ()
  end

let write_common t fd ~off ~data =
  let* info, ino = fd_ino t fd in
  if not (Types.writable info.flags) && info.flags <> [ Types.O_WRONLY ] then Error Errno.EBADF
  else staged_pwrite t ~ino ~path:info.path ~off ~data

let write t ~fd ~data =
  let* info, ino = fd_ino t fd in
  ignore info;
  let* off =
    if List.mem Types.O_APPEND info.flags then Ok (file_size t ino)
    else t.kh.Vfs.Handle.lseek ~fd ~off:0 ~whence:Types.SEEK_CUR
  in
  let* n = write_common t fd ~off ~data in
  let* _ = t.kh.Vfs.Handle.lseek ~fd ~off:(off + n) ~whence:Types.SEEK_SET in
  Ok n

let pwrite t ~fd ~off ~data =
  if off < 0 then Error Errno.EINVAL else write_common t fd ~off ~data

let read_common t fd ~off ~len =
  let* _info, ino = fd_ino t fd in
  let size = file_size t ino in
  let len = max 0 (min len (size - off)) in
  if len = 0 then Ok "" else Ok (overlay_read t ~ino ~off ~len)

let read t ~fd ~len =
  let* off = t.kh.Vfs.Handle.lseek ~fd ~off:0 ~whence:Types.SEEK_CUR in
  let* s = read_common t fd ~off ~len in
  let* _ = t.kh.Vfs.Handle.lseek ~fd ~off:(off + String.length s) ~whence:Types.SEEK_SET in
  Ok s

let pread t ~fd ~off ~len =
  if off < 0 then Error Errno.EINVAL else read_common t fd ~off ~len

let lseek t ~fd ~off ~whence =
  match whence with
  | Types.SEEK_END ->
    let* _info, ino = fd_ino t fd in
    t.kh.Vfs.Handle.lseek ~fd ~off:(file_size t ino + off) ~whence:Types.SEEK_SET
  | Types.SEEK_SET | Types.SEEK_CUR -> t.kh.Vfs.Handle.lseek ~fd ~off ~whence

let fallocate t ~fd ~off ~len ~keep_size =
  let* info, ino = fd_ino t fd in
  let* () = t.kh.Vfs.Handle.fallocate ~fd ~off ~len ~keep_size in
  (* Same staleness rule as staged writes: log under the inode's current
     path; an orphaned descriptor's allocation is unreachable after a crash
     and must not be replayed under whatever file now owns the old name. *)
  let current_path =
    if kino t info.path = Some ino then Some info.path
    else path_of_ino_in t.kfs ~dir:Kfs.root_ino ~prefix:"/" ino
  in
  Option.iter (fun p -> log_metadata t (E_fallocate (p, off, len, keep_size))) current_path;
  (match overlay t ino with
  | Some o when (not keep_size) && off + len > o.osize -> o.osize <- off + len
  | _ -> ());
  Ok ()

let fsync t ~fd =
  let* _info, ino = fd_ino t fd in
  sync_file t ino;
  Ok ()

let sync t () = sync_all t

let stat t ~path =
  if hidden path then Error Errno.ENOENT
  else
    let* st = t.kh.Vfs.Handle.stat ~path in
    if st.Types.st_kind = Types.Reg then
      Ok { st with Types.st_size = file_size t st.Types.st_ino }
    else Ok st

let fstat t ~fd =
  let* st = t.kh.Vfs.Handle.fstat ~fd in
  if st.Types.st_kind = Types.Reg then Ok { st with Types.st_size = file_size t st.Types.st_ino }
  else Ok st

let readdir t ~path =
  let* entries = t.kh.Vfs.Handle.readdir ~path in
  Ok
    (List.filter
       (fun d -> not (path = "/" && "/" ^ d.Types.d_name = staging_path))
       entries)

let read_file t ~path =
  if hidden path then Error Errno.ENOENT
  else
    let* st = stat t ~path in
    if st.Types.st_kind <> Types.Reg then Error Errno.EISDIR
    else if st.Types.st_size = 0 then Ok ""
    else Ok (overlay_read t ~ino:st.Types.st_ino ~off:0 ~len:st.Types.st_size)

let remove t ~path =
  let* st = stat t ~path in
  match st.Types.st_kind with
  | Types.Dir -> rmdir t ~path
  | Types.Reg -> unlink t ~path

let handle t =
  {
    Vfs.Handle.name = "splitfs";
    creat = (fun ~path -> creat t ~path);
    open_ = (fun ~path ~flags -> open_ t ~path ~flags);
    close = (fun ~fd -> close t ~fd);
    mkdir = (fun ~path -> mkdir t ~path);
    rmdir = (fun ~path -> rmdir t ~path);
    link = (fun ~src ~dst -> link t ~src ~dst);
    unlink = (fun ~path -> unlink t ~path);
    remove = (fun ~path -> remove t ~path);
    rename = (fun ~src ~dst -> rename t ~src ~dst);
    truncate = (fun ~path ~size -> truncate t ~path ~size);
    write = (fun ~fd ~data -> write t ~fd ~data);
    pwrite = (fun ~fd ~off ~data -> pwrite t ~fd ~off ~data);
    read = (fun ~fd ~len -> read t ~fd ~len);
    pread = (fun ~fd ~off ~len -> pread t ~fd ~off ~len);
    lseek = (fun ~fd ~off ~whence -> lseek t ~fd ~off ~whence);
    fallocate = (fun ~fd ~off ~len ~keep_size -> fallocate t ~fd ~off ~len ~keep_size);
    fsync = (fun ~fd -> fsync t ~fd);
    fdatasync = (fun ~fd -> fsync t ~fd);
    sync = sync t;
    stat = (fun ~path -> stat t ~path);
    fstat = (fun ~fd -> fstat t ~fd);
    readdir = (fun ~path -> readdir t ~path);
    read_file = (fun ~path -> read_file t ~path);
    (* Extended attributes are metadata ops SplitFS does not intercept or
       log; supporting them soundly would need op-log entries, so the model
       rejects them (the paper's SplitFS tests exclude them too). *)
    setxattr = (fun ~path:_ ~name:_ ~value:_ -> Error Errno.ENOTSUP);
    getxattr = (fun ~path:_ ~name:_ -> Error Errno.ENOTSUP);
    listxattr = (fun ~path:_ -> Error Errno.ENOTSUP);
    removexattr = (fun ~path:_ ~name:_ -> Error Errno.ENOTSUP);
  }

(* ------------------------------------------------------------------ *)
(* mkfs                                                                *)

module KP = Vfs.Posix.Make (Kfs)

let make_state pm cfg kfs =
  let psz = cfg.kernel.Kfs.page_size in
  let header = cfg.kernel.Kfs.n_pages * psz in
  let bank_size = cfg.log_pages * psz in
  let kh = KP.handle (KP.init kfs) in
  let staging_ino =
    match kh.Vfs.Handle.stat ~path:staging_path with
    | Ok st -> st.Types.st_ino
    | Error _ -> Pmem.Fault.fail "splitfs: staging file missing"
  in
  {
    pm;
    cfg;
    kfs;
    kh;
    log_header = header;
    banks = [| header + psz; header + psz + bank_size |];
    bank_size;
    active = Pm.read_u8 pm ~off:header;
    log_used = 0;
    staging_ino;
    staging_used = 0;
    overlays = Hashtbl.create 8;
    fds = Hashtbl.create 8;
    bugs = cfg.bugs;
  }

let mkfs pm cfg =
  if Pm.size pm < device_size cfg then
    Pmem.Fault.fail "splitfs mkfs: device too small (%d < %d)" (Pm.size pm) (device_size cfg);
  let kfs = Kfs.mkfs pm cfg.kernel in
  (* Provision the staging file and persist its mapping. *)
  (match Kfs.create kfs ~dir:Kfs.root_ino ~name:".staging" with
  | Ok ino -> (
    match Kfs.fallocate kfs ~ino ~off:0 ~len:(cfg.staging_pages * cfg.kernel.Kfs.page_size)
            ~keep_size:false with
    | Ok () -> ( match Kfs.fsync kfs ~ino with Ok () -> () | Error _ -> ())
    | Error _ -> Pmem.Fault.fail "splitfs mkfs: cannot provision staging")
  | Error _ -> Pmem.Fault.fail "splitfs mkfs: cannot create staging");
  Kfs.sync kfs;
  (* Zero the log region. *)
  let psz = cfg.kernel.Kfs.page_size in
  let header = cfg.kernel.Kfs.n_pages * psz in
  Pm.memset_nt pm ~off:header ~len:((1 + (2 * cfg.log_pages)) * psz) '\000';
  Pm.fence pm;
  make_state pm cfg kfs

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

(* Replay one logged operation over the recovered kernel state. The log
   holds exactly the operations since the last kernel commit, replayed in
   order from that consistent cut, so each operation's preconditions hold;
   benign failures (e.g. an entry racing a crashed half-applied state) are
   skipped. *)
let replay_entry t e =
  let kh = t.kh in
  let exists p = Result.is_ok (kh.Vfs.Handle.stat ~path:p) in
  match e with
  | E_creat p ->
    if not (exists p) then (
      match kh.Vfs.Handle.creat ~path:p with
      | Ok fd -> ignore (kh.Vfs.Handle.close ~fd)
      | Error _ -> ())
  | E_mkdir p -> if not (exists p) then ignore (kh.Vfs.Handle.mkdir ~path:p)
  | E_unlink p -> if exists p then ignore (kh.Vfs.Handle.unlink ~path:p)
  | E_rmdir p -> if exists p then ignore (kh.Vfs.Handle.rmdir ~path:p)
  | E_link (s, d) -> if exists s && not (exists d) then ignore (kh.Vfs.Handle.link ~src:s ~dst:d)
  | E_rename (s, d) -> if exists s then ignore (kh.Vfs.Handle.rename ~src:s ~dst:d)
  | E_rename_add (s, d) ->
    (* Bug-25 form: make the destination name point at the source inode. *)
    if exists s then begin
      if exists d then ignore (kh.Vfs.Handle.unlink ~path:d);
      ignore (kh.Vfs.Handle.link ~src:s ~dst:d)
    end
  | E_rename_del s -> if exists s then ignore (kh.Vfs.Handle.unlink ~path:s)
  | E_truncate (p, n) -> if exists p then ignore (kh.Vfs.Handle.truncate ~path:p ~size:n)
  | E_fallocate (p, off, len, keep) ->
    if exists p then (
      match kh.Vfs.Handle.open_ ~path:p ~flags:[ Types.O_RDWR ] with
      | Ok fd ->
        ignore (kh.Vfs.Handle.fallocate ~fd ~off ~len ~keep_size:keep);
        ignore (kh.Vfs.Handle.close ~fd)
      | Error _ -> ())
  | E_write { path; foff; len; soff } -> (
    (* Replayed by path, interpreted in order from the commit cut. An
       extent whose staging blocks are no longer mapped was already
       relinked into the file (the crash hit between the relink commit and
       the log compaction); replaying it would zero-fill, so it is
       skipped. *)
    let psz = kpsz t in
    let fully_staged =
      let rec check idx =
        idx > (soff + len - 1) / psz
        || (Kfs.block_phys t.kfs ~ino:t.staging_ino ~idx <> None && check (idx + 1))
      in
      check (soff / psz)
    in
    if fully_staged then
      match kh.Vfs.Handle.stat ~path with
      | Error _ -> () (* orphan or since removed: invisible after a crash *)
      | Ok st when st.Types.st_kind <> Types.Reg -> ()
      | Ok st ->
        let data = staging_read t ~soff ~len in
        ignore (Kfs.write t.kfs ~ino:st.Types.st_ino ~off:foff ~data))

let recover t =
  Cov.mark "splitfs.recover";
  let raw = Pm.read t.pm ~off:t.banks.(t.active) ~len:t.bank_size in
  let rec scan pos n =
    match decode_entry raw pos with
    | None -> n
    | Some (e, total) ->
      replay_entry t e;
      scan (pos + total) (n + 1)
  in
  let replayed = scan 0 0 in
  (* Persist the replayed state, then reset the staging file and the log. *)
  Kfs.sync t.kfs;
  (match Kfs.truncate t.kfs ~ino:t.staging_ino ~size:0 with Ok () -> () | Error _ -> ());
  (match
     Kfs.fallocate t.kfs ~ino:t.staging_ino ~off:0 ~len:(staging_cap t) ~keep_size:false
   with
  | Ok () -> ()
  | Error _ -> Pmem.Fault.fail "splitfs recovery: cannot re-provision staging");
  Kfs.sync t.kfs;
  Pm.memset_nt t.pm ~off:t.banks.(t.active) ~len:t.bank_size '\000';
  Pm.fence t.pm;
  t.log_used <- 0;
  t.staging_used <- 0;
  replayed

let mount pm cfg =
  match Kfs.mount pm cfg.kernel with
  | Error e -> Error ("splitfs kernel: " ^ e)
  | Ok kfs -> (
    let active = Pm.read_u8 pm ~off:(cfg.kernel.Kfs.n_pages * cfg.kernel.Kfs.page_size) in
    if active > 1 then Error "splitfs: corrupt log bank selector"
    else
      match make_state pm cfg kfs with
      | t ->
        let _ = recover t in
        Ok t
      | exception Pmem.Fault.Device_fault m -> Error m)

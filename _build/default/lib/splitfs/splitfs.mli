(** SplitFS: a hybrid user/kernel PM file system in strict mode.

    The user-space component ({!Usplit}) stages data writes into a
    pre-allocated staging file with mmap-style non-temporal stores and
    records every operation in a persistent, bank-switched operation log;
    the kernel component is the {!Ext4dax} model, extended with the relink
    ioctl. Recovery mounts the kernel file system and replays the log over
    it, which is how strict mode delivers synchronous, atomic operations on
    top of a merely fsync-consistent kernel — and where all five of the
    paper's SplitFS bugs live. *)

module Usplit = Usplit
(** The full user-space implementation, exposed for white-box tests. *)

(** The paper's SplitFS bug corpus as injectable switches (all default
    off). *)
module Bugs : sig
  type t = Usplit.bugs = {
    bug21_unfenced_metadata_log : bool;
        (** Metadata ops return before their log entry is fenced: operations
            are not synchronous (paper bug 21, Logic). *)
    bug22_unfenced_staging_data : bool;
        (** Staged bytes are never fenced; relink publishes extents whose
            data may still be in flight: file data lost (paper bug 22,
            Logic). *)
    bug23_entry_before_data : bool;
        (** The write log entry is persisted before the staged bytes; replay
            zero-fills: file data lost (paper bug 23, Logic). *)
    bug24_boundary_entry_unfenced : bool;
        (** Entries straddling a log page boundary skip their fence:
            operations are not synchronous (paper bug 24, Logic). *)
    bug25_rename_two_entries : bool;
        (** rename is logged as two separately-fenced entries; replay after
            a crash between them leaves both names (paper bug 25, Logic). *)
  }

  val none : t
  val all : t
end

type config = Usplit.config

val default_config : config
val config : ?bugs:Bugs.t -> ?log_pages:int -> ?staging_pages:int -> unit -> config

val driver : ?config:config -> unit -> Vfs.Driver.t
(** Strong consistency with atomic data writes (strict mode). *)

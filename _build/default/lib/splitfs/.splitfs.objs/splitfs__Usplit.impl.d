lib/splitfs/usplit.ml: Array Buffer Bytes Char Cov Ext4dax Hashtbl Int32 List Option Persist Pmem Result String Vfs

lib/splitfs/splitfs.ml: Usplit Vfs

lib/splitfs/splitfs.mli: Usplit Vfs

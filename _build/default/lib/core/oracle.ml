type t = {
  trees : Vfs.Walker.tree array;
  targets : string option array;
  rets : int array;
}

let n_calls t = Array.length t.targets
let pre t i = t.trees.(i)
let post t i = t.trees.(i + 1)
let final t = t.trees.(Array.length t.trees - 1)
let target t i = t.targets.(i)
let ret t i = t.rets.(i)

let run calls =
  let h = Memfs.handle () in
  let n = List.length calls in
  let trees = Array.make (n + 1) [] in
  let targets = Array.make n None in
  let rets = Array.make n 0 in
  let var_paths : (int, string) Hashtbl.t = Hashtbl.create 8 in
  trees.(0) <- Vfs.Walker.capture h;
  let before idx call =
    let target_of var = Hashtbl.find_opt var_paths var in
    targets.(idx) <-
      (match call with
      | Vfs.Syscall.Write { fd_var; _ }
      | Vfs.Syscall.Pwrite { fd_var; _ }
      | Vfs.Syscall.Fallocate { fd_var; _ }
      | Vfs.Syscall.Fsync { fd_var }
      | Vfs.Syscall.Fdatasync { fd_var } ->
        target_of fd_var
      | Vfs.Syscall.Truncate { path; _ }
      | Vfs.Syscall.Setxattr { path; _ }
      | Vfs.Syscall.Removexattr { path; _ } ->
        Some path
      | _ -> None)
  in
  let after idx call ret =
    rets.(idx) <- ret;
    (if ret >= 0 then
       match call with
       | Vfs.Syscall.Creat { path; fd_var } | Vfs.Syscall.Open { path; fd_var; _ } ->
         Hashtbl.replace var_paths fd_var path
       | Vfs.Syscall.Close { fd_var } -> Hashtbl.remove var_paths fd_var
       | Vfs.Syscall.Rename { src; dst } ->
         (* Keep descriptor paths in step with namespace changes so fsync
            targets stay resolvable. *)
         Hashtbl.iter
           (fun var p -> if p = src then Hashtbl.replace var_paths var dst)
           (Hashtbl.copy var_paths)
       | Vfs.Syscall.Unlink { path } | Vfs.Syscall.Remove { path } ->
         Hashtbl.iter
           (fun var p -> if p = path then Hashtbl.remove var_paths var)
           (Hashtbl.copy var_paths)
       | _ -> ());
    trees.(idx + 1) <- Vfs.Walker.capture h
  in
  let _ = Vfs.Workload.run ~before ~after h calls in
  { trees; targets; rets }

type event = {
  fingerprint : string;
  report : Report.t;
  workload_name : string;
  workload_index : int;
  elapsed : float;
  states_so_far : int;
}

type result = {
  events : event list;
  workloads_run : int;
  crash_states : int;
  crash_points : int;
  elapsed : float;
  in_flight_sizes : int list;
  max_in_flight : int;
}

exception Done

let run ?opts ?stop_after_findings ?max_workloads ?max_seconds driver suite =
  let t0 = Unix.gettimeofday () in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let events = ref [] in
  let workloads = ref 0 in
  let states = ref 0 in
  let points = ref 0 in
  let sizes = ref [] in
  let max_if = ref 0 in
  (try
     Seq.iteri
       (fun i (name, workload) ->
         (match max_workloads with Some m when i >= m -> raise Done | _ -> ());
         (match max_seconds with
         | Some s when Unix.gettimeofday () -. t0 > s -> raise Done
         | _ -> ());
         let r = Harness.test_workload ?opts driver workload in
         incr workloads;
         states := !states + r.Harness.stats.Harness.crash_states;
         points := !points + r.Harness.stats.Harness.crash_points;
         sizes := r.Harness.stats.Harness.in_flight_sizes @ !sizes;
         max_if := max !max_if r.Harness.stats.Harness.max_in_flight;
         List.iter
           (fun report ->
             let fp = Report.fingerprint report in
             if not (Hashtbl.mem seen fp) then begin
               Hashtbl.replace seen fp ();
               events :=
                 {
                   fingerprint = fp;
                   report;
                   workload_name = name;
                   workload_index = i;
                   elapsed = Unix.gettimeofday () -. t0;
                   states_so_far = !states;
                 }
                 :: !events;
               match stop_after_findings with
               | Some n when Hashtbl.length seen >= n -> raise Done
               | _ -> ()
             end)
           r.Harness.reports)
       suite
   with Done -> ());
  {
    events = List.rev !events;
    workloads_run = !workloads;
    crash_states = !states;
    crash_points = !points;
    elapsed = Unix.gettimeofday () -. t0;
    in_flight_sizes = !sizes;
    max_in_flight = !max_if;
  }

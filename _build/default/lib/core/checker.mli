(** Consistency rules: compares a mounted crash state against the oracle.

    The properties follow paper section 3.3:
    - {b atomicity}: a crash in the middle of a system call must leave the
      tree equal to the pre-state or the post-state of that call (all
      modified files matching the same version);
    - {b synchrony}: a crash after a system call completes must leave the
      tree equal to the post-state — PM file systems with strong guarantees
      persist every operation by return time;
    - {b data writes}: when the file system does not promise atomic data
      writes, a mid-write crash may expose any mix of old bytes, new bytes
      and zeros (freshly allocated blocks) within the written file — but
      never garbage, and never changes to other files;
    - {b weak (fsync-based) systems}: after fsync/fdatasync the synced file
      must match the oracle post-state; after sync the whole tree must.

    Inaccessible nodes (stat/read/readdir errors) are reported separately:
    they are how checksum failures and dangling metadata surface. *)

type phase =
  | Initial  (** Before any syscall ran. *)
  | During of int
  | After of int

val check :
  atomic_data:bool ->
  consistency:Vfs.Driver.consistency ->
  workload:Vfs.Syscall.t list ->
  oracle:Oracle.t ->
  phase:phase ->
  tree:Vfs.Walker.tree ->
  Report.kind list
(** Empty list = this crash state is consistent. *)

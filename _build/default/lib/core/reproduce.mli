(** Reproduce a bug report: re-derive the exact crash state it describes.

    A {!Report.t} pins down a crash deterministically — the workload, the
    crash point (which fence or syscall boundary), and the sequence numbers
    of the in-flight writes that were replayed. Because workload execution
    and trace replay are fully deterministic, re-running the pipeline and
    stopping at the recorded point rebuilds the bit-identical crash image,
    ready for interactive post-mortem (mount it, walk the tree, hexdump
    regions). This is what the paper means by bug reports carrying "enough
    detail to reproduce the bug" (Figure 1). *)

type crash_state = {
  image : Pmem.Image.t;  (** The device as it would be after the crash. *)
  mount : unit -> (Vfs.Handle.t, string) result;
      (** Run the file system's recovery on (a copy of) the image. *)
  check : unit -> Report.kind list;
      (** Re-run the consistency checks; non-empty iff the bug reproduces. *)
}

val crash_state : Vfs.Driver.t -> Report.t -> (crash_state, string) result
(** Rebuild the crash state a report describes. Fails if the report's crash
    point cannot be located (e.g. the report came from a different file
    system or configuration). *)

val verify : Vfs.Driver.t -> Report.t -> bool
(** [true] when re-deriving the crash state reproduces a finding. *)

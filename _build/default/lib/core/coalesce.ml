type t = {
  seq : int;
  parts : (int * string) list;
  kind : Persist.Trace.write_kind;
  func : string;
  syscall : int option;
}

let bytes t = List.fold_left (fun acc (_, d) -> acc + String.length d) 0 t.parts

let span t =
  List.fold_left
    (fun (lo, hi) (addr, d) -> (min lo addr, max hi (addr + String.length d)))
    (max_int, 0) t.parts

let contiguous_with unit (s : Persist.Trace.store) =
  match List.rev unit.parts with
  | [] -> false
  | (addr, d) :: _ -> addr + String.length d = s.Persist.Trace.addr

let add ~coalesce ~data_threshold vec (s : Persist.Trace.store) ~syscall =
  let fresh =
    {
      seq = s.Persist.Trace.seq;
      parts = [ (s.Persist.Trace.addr, s.Persist.Trace.data) ];
      kind = s.Persist.Trace.kind;
      func = s.Persist.Trace.func;
      syscall;
    }
  in
  match vec with
  | newest :: rest when coalesce ->
    let same_context =
      newest.kind = s.Persist.Trace.kind
      && newest.func = s.Persist.Trace.func
      && newest.syscall = syscall
    in
    let adjacent = same_context && contiguous_with newest s in
    let both_bulk =
      same_context
      && s.Persist.Trace.kind = Persist.Trace.Nt
      && String.length s.Persist.Trace.data >= data_threshold
      && List.for_all (fun (_, d) -> String.length d >= data_threshold) newest.parts
    in
    if adjacent || both_bulk then
      { newest with parts = newest.parts @ [ (s.Persist.Trace.addr, s.Persist.Trace.data) ] }
      :: rest
    else fresh :: vec
  | _ -> fresh :: vec

let describe t =
  let lo, hi = span t in
  Printf.sprintf "#%d %s [0x%x, 0x%x) %dB in %d part(s)%s" t.seq t.func lo hi (bytes t)
    (List.length t.parts)
    (match t.syscall with None -> "" | Some i -> Printf.sprintf " (syscall %d)" i)

(** Campaign runner: drive the harness over a suite of workloads and record
    when each unique bug surfaced — the measurement behind the paper's
    Figure 3 (cumulative time to find bugs) and the section 4.3 suite
    statistics. *)

type event = {
  fingerprint : string;
  report : Report.t;
  workload_name : string;
  workload_index : int;  (** Position of the workload in the suite. *)
  elapsed : float;  (** Seconds of CPU-equivalent wall time since start. *)
  states_so_far : int;  (** Crash states checked before the discovery. *)
}

type result = {
  events : event list;  (** Unique findings, in discovery order. *)
  workloads_run : int;
  crash_states : int;
  crash_points : int;
  elapsed : float;
  in_flight_sizes : int list;  (** One sample per crash point. *)
  max_in_flight : int;
}

val run :
  ?opts:Harness.opts ->
  ?stop_after_findings:int ->
  ?max_workloads:int ->
  ?max_seconds:float ->
  Vfs.Driver.t ->
  (string * Vfs.Syscall.t list) Seq.t ->
  result
(** Run workloads in suite order, deduplicating findings by fingerprint
    across the whole campaign. *)

type phase = Initial | During of int | After of int

let inaccessible tree =
  List.map
    (fun (path, error) -> Report.Inaccessible { path; error })
    (Vfs.Walker.has_errors tree)

(* A mid-crash state of a non-atomic data write. The paths the operation
   changes are those whose oracle node differs between the pre- and
   post-state (this naturally covers every hard link of the written inode);
   each of those must hold a size between the pre and post sizes and bytes
   explainable as old data, new data, or a freshly-zeroed block. Every
   other path must match the pre-state exactly. *)
let relaxed_node ~path ~(old_n : Vfs.Walker.node) ~(new_n : Vfs.Walker.node)
    ~(actual : Vfs.Walker.node) =
  match (actual.content, old_n.content, new_n.content) with
  | Some got, Some old_c, Some new_c ->
    let lo = min (String.length old_c) (String.length new_c) in
    let hi = max (String.length old_c) (String.length new_c) in
    if String.length got < lo || String.length got > hi then
      [
        Report.Torn_data
          { path; detail = Printf.sprintf "size %d outside [%d, %d]" (String.length got) lo hi };
      ]
    else begin
      let bad = ref None in
      String.iteri
        (fun i c ->
          if !bad = None then begin
            let old_b = if i < String.length old_c then Some old_c.[i] else None in
            let new_b = if i < String.length new_c then Some new_c.[i] else None in
            if not (Some c = old_b || Some c = new_b || c = '\000') then bad := Some i
          end)
        got;
      match !bad with
      | None -> []
      | Some i ->
        [
          Report.Torn_data
            { path; detail = Printf.sprintf "byte %d is %C: neither old, new, nor zero" i got.[i] };
        ]
    end
  | _ -> [ Report.Inaccessible { path; error = "unreadable during torn-write check" } ]

let check_torn_write ~pre ~post ~tree ~syscall =
  let open Vfs.Walker in
  let paths =
    List.sort_uniq String.compare (List.map (fun n -> n.path) (pre @ post @ tree))
  in
  List.concat_map
    (fun path ->
      match (find pre path, find post path, find tree path) with
      | Some old_n, Some new_n, Some actual ->
        if equal_node old_n new_n then
          (* Untouched by the operation: must match exactly. *)
          if equal_node old_n actual then []
          else [ Report.Atomicity { syscall; diffs = diff ~expected:[ old_n ] ~actual:[ actual ] } ]
        else relaxed_node ~path ~old_n ~new_n ~actual
      | Some old_n, None, Some actual | None, Some old_n, Some actual ->
        (* Present in only one oracle version: shouldn't happen for a data
           op, but compare strictly against the version that has it. *)
        if equal_node old_n actual then []
        else [ Report.Atomicity { syscall; diffs = diff ~expected:[ old_n ] ~actual:[ actual ] } ]
      | Some _, Some _, None | Some _, None, None | None, Some _, None ->
        [ Report.Atomicity { syscall; diffs = [ Printf.sprintf "missing: %s" path ] } ]
      | None, None, Some actual ->
        [ Report.Atomicity { syscall; diffs = [ "unexpected: " ^ describe actual ] } ]
      | None, None, None -> [])
    paths

let check_strong ~atomic_data ~workload ~oracle ~phase ~tree =
  let open Vfs.Walker in
  match phase with
  | Initial ->
    let expected = Oracle.pre oracle 0 in
    let d = diff ~expected ~actual:tree in
    if d = [] then [] else [ Report.Synchrony { syscall = "mkfs"; diffs = d } ]
  | During i ->
    let call = List.nth workload i in
    let pre = Oracle.pre oracle i and post = Oracle.post oracle i in
    let syscall = Vfs.Syscall.to_string call in
    if Vfs.Syscall.is_data_op call && not atomic_data then
      if equal tree pre || equal tree post then []
      else check_torn_write ~pre ~post ~tree ~syscall
    else if equal tree pre || equal tree post then []
    else
      [
        Report.Atomicity
          {
            syscall;
            diffs =
              List.map (fun d -> "vs post: " ^ d) (diff ~expected:post ~actual:tree)
              @ List.map (fun d -> "vs pre: " ^ d) (diff ~expected:pre ~actual:tree);
          };
      ]
  | After i ->
    let post = Oracle.post oracle i in
    let d = diff ~expected:post ~actual:tree in
    if d = [] then []
    else [ Report.Synchrony { syscall = Vfs.Syscall.to_string (List.nth workload i); diffs = d } ]

(* Weak systems only promise durability at fsync boundaries; the harness
   only asks us about those. *)
let check_weak ~workload ~oracle ~phase ~tree =
  match phase with
  | Initial | During _ -> []
  | After i -> (
    let call = List.nth workload i in
    let post = Oracle.post oracle i in
    match call with
    | Vfs.Syscall.Sync ->
      let d = Vfs.Walker.diff ~expected:post ~actual:tree in
      if d = [] then [] else [ Report.Synchrony { syscall = "sync"; diffs = d } ]
    | Vfs.Syscall.Fsync _ | Vfs.Syscall.Fdatasync _ -> (
      match Oracle.target oracle i with
      | None -> []
      | Some path -> (
        match (Vfs.Walker.find post path, Vfs.Walker.find tree path) with
        | None, _ -> []
        | Some expected, Some actual ->
          if Vfs.Walker.equal_node expected actual then []
          else
            [
              Report.Synchrony
                {
                  syscall = Vfs.Syscall.to_string call;
                  diffs =
                    Vfs.Walker.diff ~expected:[ expected ] ~actual:[ actual ];
                };
            ]
        | Some _, None ->
          [
            Report.Synchrony
              {
                syscall = Vfs.Syscall.to_string call;
                diffs = [ Printf.sprintf "missing: %s (was fsynced)" path ];
              };
          ]))
    | _ -> [])

let check ~atomic_data ~consistency ~workload ~oracle ~phase ~tree =
  let errors = inaccessible tree in
  let semantic =
    (* Inaccessible nodes already explain any tree mismatch; don't pile a
       noisier atomicity report on top. *)
    if errors <> [] then []
    else
      match consistency with
      | Vfs.Driver.Strong -> check_strong ~atomic_data ~workload ~oracle ~phase ~tree
      | Vfs.Driver.Weak -> check_weak ~workload ~oracle ~phase ~tree
  in
  errors @ semantic

lib/core/reproduce.mli: Pmem Report Vfs

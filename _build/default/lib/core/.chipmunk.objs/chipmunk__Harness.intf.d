lib/core/harness.mli: Persist Report Vfs

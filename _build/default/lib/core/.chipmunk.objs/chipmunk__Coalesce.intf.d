lib/core/coalesce.mli: Persist

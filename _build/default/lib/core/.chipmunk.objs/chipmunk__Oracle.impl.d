lib/core/oracle.ml: Array Hashtbl List Memfs Vfs

lib/core/oracle.mli: Vfs

lib/core/checker.mli: Oracle Report Vfs

lib/core/campaign.ml: Harness Hashtbl List Report Seq Unix

lib/core/report.mli: Format Vfs

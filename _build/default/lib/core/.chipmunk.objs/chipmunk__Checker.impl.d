lib/core/checker.ml: List Oracle Printf Report String Vfs

lib/core/coalesce.ml: List Persist Printf String

lib/core/harness.ml: Array Checker Coalesce Hashtbl List Oracle Persist Pmem Printf Report String Vfs

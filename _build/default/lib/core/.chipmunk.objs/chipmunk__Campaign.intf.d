lib/core/campaign.mli: Harness Report Seq Vfs

lib/core/reproduce.ml: Checker Coalesce Hashtbl List Oracle Persist Pmem Report Vfs

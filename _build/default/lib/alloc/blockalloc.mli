(** Volatile page allocator.

    PM file systems keep allocator state in DRAM as a performance and write
    endurance optimization and rebuild it when the file system is mounted
    (paper Observation 3) — which is why this module has no persistent
    representation: each file system reconstructs occupancy by scanning its
    own on-media structures and calls {!mark_used}.

    A double free or a double {!mark_used} raises {!Pmem.Fault.Device_fault},
    modelling the allocator corruption that recovery bugs (paper bug 11)
    trip over. *)

type t

val create : n_pages:int -> t
(** All pages initially free. *)

val mark_used : t -> int -> unit
(** Claim a specific page during rebuild. Raises if already used. *)

val alloc : t -> (int, Vfs.Errno.t) result
(** Allocate any free page ([Error ENOSPC] when full). *)

val alloc_at_least : t -> n:int -> (int list, Vfs.Errno.t) result
(** Allocate [n] pages (not necessarily contiguous); all-or-nothing. *)

val alloc_aligned : t -> align:int -> (int, Vfs.Errno.t) result
(** Allocate a page whose index is a multiple of [align] (WineFS-style
    hugepage-aware placement). Falls back to any free page when no aligned
    page remains. *)

val free : t -> int -> unit
(** Raises on double free. *)

val is_used : t -> int -> bool
val used_count : t -> int
val free_count : t -> int

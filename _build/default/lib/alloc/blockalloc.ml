type t = { used : Bytes.t; n_pages : int; mutable used_count : int }

let create ~n_pages = { used = Bytes.make n_pages '\000'; n_pages; used_count = 0 }

let check t page =
  if page < 0 || page >= t.n_pages then
    Pmem.Fault.fail "allocator: page %d out of range [0, %d)" page t.n_pages

let is_used t page =
  check t page;
  Bytes.get t.used page <> '\000'

let mark_used t page =
  check t page;
  if is_used t page then Pmem.Fault.fail "allocator: page %d already in use" page;
  Bytes.set t.used page '\001';
  t.used_count <- t.used_count + 1

let alloc t =
  let rec scan i =
    if i >= t.n_pages then Error Vfs.Errno.ENOSPC
    else if Bytes.get t.used i = '\000' then begin
      mark_used t i;
      Ok i
    end
    else scan (i + 1)
  in
  scan 0

let alloc_at_least t ~n =
  let rec go acc k = if k = 0 then Ok (List.rev acc) else
      match alloc t with
      | Ok p -> go (p :: acc) (k - 1)
      | Error e ->
        List.iter (fun p -> Bytes.set t.used p '\000') acc;
        t.used_count <- t.used_count - List.length acc;
        Error e
  in
  go [] n

let alloc_aligned t ~align =
  let align = max 1 align in
  let rec scan i =
    if i >= t.n_pages then alloc t
    else if Bytes.get t.used i = '\000' then begin
      mark_used t i;
      Ok i
    end
    else scan (i + align)
  in
  scan 0

let free t page =
  check t page;
  if not (is_used t page) then Pmem.Fault.fail "allocator: double free of page %d" page;
  Bytes.set t.used page '\000';
  t.used_count <- t.used_count - 1

let used_count t = t.used_count
let free_count t = t.n_pages - t.used_count

(** Undo log for mutations of a replay image.

    The consistency checks mutate the crash state under test (mounting the
    file system may replay its journal; the usability check creates and
    deletes files). Following the paper (end of section 3.3), we record an
    undo log of pre-images for these mutations and roll the image back before
    advancing to the next crash state — far cheaper than copying the whole
    device per crash state. *)

type t

val create : Pmem.Image.t -> t
(** An empty undo log protecting the given image. *)

val note : t -> off:int -> len:int -> unit
(** Record the current contents of [off, off+len) so that a later
    {!rollback} restores them. Call before overwriting the region. *)

val write_string : t -> off:int -> string -> unit
(** [note] the region, then write [s] at [off]. *)

val rollback : t -> unit
(** Undo all recorded writes, most recent first, and empty the log. *)

val entries : t -> int
(** Number of pre-images currently recorded. *)

val bytes : t -> int
(** Total pre-image bytes currently recorded. *)

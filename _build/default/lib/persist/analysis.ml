type epoch = { syscall_idx : int option; syscall : string option; stores : int }

let epochs trace =
  let out = ref [] in
  let current = ref 0 in
  let sc_idx = ref None in
  let sc_descr = ref None in
  Trace.iter trace (fun op ->
      match op with
      | Trace.Store _ -> incr current
      | Trace.Fence ->
        out := { syscall_idx = !sc_idx; syscall = !sc_descr; stores = !current } :: !out;
        current := 0
      | Trace.Syscall_begin { idx; descr } ->
        sc_idx := Some idx;
        sc_descr := Some descr
      | Trace.Syscall_end _ ->
        sc_idx := None;
        sc_descr := None);
  if !current > 0 then
    out := { syscall_idx = !sc_idx; syscall = !sc_descr; stores = !current } :: !out;
  List.rev !out

type summary = { count : int; mean : float; max : int }

let summarize sizes =
  match sizes with
  | [] -> { count = 0; mean = 0.; max = 0 }
  | _ ->
    let count = List.length sizes in
    let total = List.fold_left ( + ) 0 sizes in
    let max = List.fold_left max 0 sizes in
    { count; mean = float_of_int total /. float_of_int count; max }

let first_word s = match String.index_opt s ' ' with None -> s | Some i -> String.sub s 0 i

let per_syscall_summary trace =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e.syscall with
      | None -> ()
      | Some descr ->
        let key = first_word descr in
        let prev = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
        Hashtbl.replace tbl key (e.stores :: prev))
    (epochs trace);
  Hashtbl.fold (fun k sizes acc -> (k, summarize sizes) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

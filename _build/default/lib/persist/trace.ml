type write_kind = Nt | Flushed_line

type store = {
  seq : int;
  addr : int;
  data : string;
  kind : write_kind;
  func : string;
}

type op =
  | Store of store
  | Fence
  | Syscall_begin of { idx : int; descr : string }
  | Syscall_end of { idx : int; ret : int }

type t = { mutable items : op list; mutable len : int }

let create () = { items = []; len = 0 }

let record t op =
  t.items <- op :: t.items;
  t.len <- t.len + 1

let length t = t.len

let ops t =
  let a = Array.make t.len Fence in
  let rec fill i = function
    | [] -> ()
    | op :: rest ->
      a.(i) <- op;
      fill (i - 1) rest
  in
  fill (t.len - 1) t.items;
  a

let iter t f = Array.iter f (ops t)

let pp_kind ppf = function
  | Nt -> Format.pp_print_string ppf "nt"
  | Flushed_line -> Format.pp_print_string ppf "clwb"

let pp_op ppf = function
  | Store { seq; addr; data; kind; func } ->
    Format.fprintf ppf "#%d %s[%a] addr=0x%x len=%d" seq func pp_kind kind addr
      (String.length data)
  | Fence -> Format.pp_print_string ppf "sfence"
  | Syscall_begin { idx; descr } -> Format.fprintf ppf "-- begin syscall %d: %s" idx descr
  | Syscall_end { idx; ret } -> Format.fprintf ppf "-- end syscall %d (ret %d)" idx ret

let pp ppf t =
  iter t (fun op -> Format.fprintf ppf "%a@." pp_op op)

let stores_between_fences t =
  let sizes = ref [] in
  let current = ref 0 in
  iter t (fun op ->
      match op with
      | Store _ -> incr current
      | Fence ->
        sizes := !current :: !sizes;
        current := 0
      | Syscall_begin _ | Syscall_end _ -> ());
  if !current > 0 then sizes := !current :: !sizes;
  List.rev !sizes

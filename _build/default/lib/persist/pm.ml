type stats = {
  mutable nt_calls : int;
  mutable flush_calls : int;
  mutable fence_calls : int;
  mutable cached_stores : int;
  mutable bytes_written : int;
}

type granularity = Function_level | Instruction_level

type t = {
  image : Pmem.Image.t;
  mutable logger : (Trace.op -> unit) option;
  mutable undo : Undo.t option;
  mutable read_hook : (int -> int -> unit) option;
  mutable seq : int;
  mutable granularity : granularity;
  stats : stats;
}

let create image =
  {
    image;
    logger = None;
    undo = None;
    read_hook = None;
    seq = 0;
    granularity = Function_level;
    stats =
      { nt_calls = 0; flush_calls = 0; fence_calls = 0; cached_stores = 0; bytes_written = 0 };
  }

let set_granularity t g = t.granularity <- g

let image t = t.image
let size t = Pmem.Image.size t.image
let stats t = t.stats
let set_logger t logger = t.logger <- logger
let trace_to t trace = t.logger <- Some (Trace.record trace)
let set_undo t undo = t.undo <- undo
let set_read_hook t hook = t.read_hook <- hook

let note_read t ~off ~len =
  match t.read_hook with None -> () | Some f -> f off len

let log t op =
  match t.logger with
  | None -> ()
  | Some f -> f op

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let raw_write t ~off data =
  (match t.undo with
  | None -> ()
  | Some undo -> Undo.note undo ~off ~len:(String.length data));
  Pmem.Image.write_string t.image ~off data;
  t.stats.bytes_written <- t.stats.bytes_written + String.length data

(* Persistence functions -- the interception points. *)

(* Instruction-level logging (the Yat/Vinter/PMTest approach the paper
   contrasts with, section 3.2): every architectural store unit is its own
   record, so a single memcpy produces ceil(len/8) instrumentation points
   instead of one. Kept as an ablation mode; everything in this repository
   defaults to the paper's function-level interception. *)
let log_nt t ~off data ~func =
  match t.granularity with
  | Function_level ->
    log t (Store { seq = next_seq t; addr = off; data; kind = Trace.Nt; func })
  | Instruction_level ->
    let len = String.length data in
    let unit_size = Pmem.Const.atomic_unit in
    let rec go pos =
      if pos < len then begin
        let n = min unit_size (len - pos) in
        log t
          (Store
             {
               seq = next_seq t;
               addr = off + pos;
               data = String.sub data pos n;
               kind = Trace.Nt;
               func;
             });
        go (pos + n)
      end
    in
    go 0

let memcpy_nt t ~off data =
  raw_write t ~off data;
  t.stats.nt_calls <- t.stats.nt_calls + 1;
  log_nt t ~off data ~func:"memcpy_nt"

let memset_nt t ~off ~len c =
  let data = String.make len c in
  raw_write t ~off data;
  t.stats.nt_calls <- t.stats.nt_calls + 1;
  log_nt t ~off data ~func:"memset_nt"

let flush t ~off ~len =
  if len > 0 then begin
    (* Write-back happens at cache-line granularity: widen to line bounds,
       clamped to the device. The contents recorded are those visible at
       flush time, exactly as a probe on flush_buffer would capture them. *)
    let base = Pmem.Const.line_base off in
    let stop =
      let e = off + len in
      let rem = e mod Pmem.Const.cache_line in
      if rem = 0 then e else e + (Pmem.Const.cache_line - rem)
    in
    let base = max 0 base and stop = min stop (Pmem.Image.size t.image) in
    t.stats.flush_calls <- t.stats.flush_calls + 1;
    match t.granularity with
    | Function_level ->
      let data = Pmem.Image.read t.image ~off:base ~len:(stop - base) in
      log t
        (Store
           { seq = next_seq t; addr = base; data; kind = Trace.Flushed_line; func = "flush_buffer" })
    | Instruction_level ->
      (* One record per cache line, like tracing individual clwb ops. *)
      let rec go pos =
        if pos < stop then begin
          let n = min Pmem.Const.cache_line (stop - pos) in
          log t
            (Store
               {
                 seq = next_seq t;
                 addr = pos;
                 data = Pmem.Image.read t.image ~off:pos ~len:n;
                 kind = Trace.Flushed_line;
                 func = "flush_buffer";
               });
          go (pos + n)
        end
      in
      go base
  end

let fence t =
  t.stats.fence_calls <- t.stats.fence_calls + 1;
  log t Trace.Fence

(* Plain cached stores: reach media only through a later flush. *)

let store t ~off data =
  raw_write t ~off data;
  t.stats.cached_stores <- t.stats.cached_stores + 1

let le_bytes n v =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr ((v lsr (8 * i)) land 0xFF))
  done;
  Bytes.unsafe_to_string b

let store_u8 t ~off v = store t ~off (le_bytes 1 v)
let store_u16 t ~off v = store t ~off (le_bytes 2 v)
let store_u32 t ~off v = store t ~off (le_bytes 4 v)
let store_u64 t ~off v = store t ~off (le_bytes 8 v)
let nt_u32 t ~off v = memcpy_nt t ~off (le_bytes 4 v)
let nt_u64 t ~off v = memcpy_nt t ~off (le_bytes 8 v)

let store_flush t ~off data =
  store t ~off data;
  flush t ~off ~len:(String.length data)

let persist_u64 t ~off v =
  nt_u64 t ~off v;
  fence t

let read t ~off ~len =
  note_read t ~off ~len;
  Pmem.Image.read t.image ~off ~len

let read_u8 t ~off =
  note_read t ~off ~len:1;
  Pmem.Image.read_u8 t.image ~off

let read_u16 t ~off =
  note_read t ~off ~len:2;
  Pmem.Image.read_u16 t.image ~off

let read_u32 t ~off =
  note_read t ~off ~len:4;
  Pmem.Image.read_u32 t.image ~off

let read_u64 t ~off =
  note_read t ~off ~len:8;
  Pmem.Image.read_u64 t.image ~off

let mark_syscall_begin t ~idx ~descr = log t (Trace.Syscall_begin { idx; descr })
let mark_syscall_end t ~idx ~ret = log t (Trace.Syscall_end { idx; ret })

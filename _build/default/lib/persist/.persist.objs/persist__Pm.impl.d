lib/persist/pm.ml: Bytes Char Pmem String Trace Undo

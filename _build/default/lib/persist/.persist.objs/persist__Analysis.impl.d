lib/persist/analysis.ml: Hashtbl List Option String Trace

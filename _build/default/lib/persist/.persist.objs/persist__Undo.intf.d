lib/persist/undo.mli: Pmem

lib/persist/analysis.mli: Trace

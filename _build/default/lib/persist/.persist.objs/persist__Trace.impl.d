lib/persist/trace.ml: Array Format List String

lib/persist/trace.mli: Format

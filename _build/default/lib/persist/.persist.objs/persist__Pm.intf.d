lib/persist/pm.mli: Pmem Trace Undo

lib/persist/undo.ml: List Pmem String

type t = {
  image : Pmem.Image.t;
  mutable pre : (int * string) list;  (** (offset, original bytes), newest first *)
  mutable entries : int;
  mutable bytes : int;
}

let create image = { image; pre = []; entries = 0; bytes = 0 }

let note t ~off ~len =
  if len > 0 then begin
    let old = Pmem.Image.read t.image ~off ~len in
    t.pre <- (off, old) :: t.pre;
    t.entries <- t.entries + 1;
    t.bytes <- t.bytes + len
  end

let write_string t ~off s =
  note t ~off ~len:(String.length s);
  Pmem.Image.write_string t.image ~off s

let rollback t =
  List.iter (fun (off, old) -> Pmem.Image.write_string t.image ~off old) t.pre;
  t.pre <- [];
  t.entries <- 0;
  t.bytes <- 0

let entries t = t.entries
let bytes t = t.bytes

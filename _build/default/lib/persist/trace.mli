(** The write trace recorded by intercepting centralized persistence
    functions.

    This is the OCaml analogue of Chipmunk's Kprobe/Uprobe logger modules
    (paper section 3.3): each record corresponds to one invocation of a
    persistence function — a non-temporal store, a buffer flush, or a store
    fence — together with the written contents, plus markers delimiting the
    system call that issued it. *)

type write_kind =
  | Nt  (** Non-temporal store: bypasses the cache, persistent after the next fence. *)
  | Flushed_line
      (** Cache-line write-back ([clwb]-style): contents of the line at flush
          time, persistent after the next fence. *)

type store = {
  seq : int;  (** Global sequence number, for stable ordering and reports. *)
  addr : int;  (** Destination offset on the device. *)
  data : string;  (** Bytes as they will reach the media. *)
  kind : write_kind;
  func : string;
      (** Name of the intercepted persistence function ("memcpy_nt",
          "memset_nt", "flush_buffer", ...), used by the coalescing
          heuristic. *)
}

type op =
  | Store of store
  | Fence  (** Store fence: all prior in-flight stores become persistent. *)
  | Syscall_begin of { idx : int; descr : string }
  | Syscall_end of { idx : int; ret : int }

type t
(** A recorded trace. *)

val create : unit -> t
val record : t -> op -> unit
val length : t -> int
val ops : t -> op array
(** Snapshot of the ops recorded so far, in order. *)

val iter : t -> (op -> unit) -> unit
val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit

val stores_between_fences : t -> int list
(** Size of each in-flight vector, i.e. the number of store records between
    consecutive fences (and between the last fence and end of trace when
    nonempty). Used to reproduce the paper's section 3.2 measurements. *)

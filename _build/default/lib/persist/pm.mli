(** Centralized persistence functions over a PM device image.

    Every file system in this repository performs all media I/O through this
    module — the analogue of the small set of centralized persistence
    functions the paper observes in real PM file systems (non-temporal
    memcpy/memset, buffer flush, store fence). Chipmunk's logger attaches
    here, exactly as Kprobes attach to those functions in the original
    system: arming a logger requires no change to file-system code.

    Semantics of the model (section 2 of the paper):
    - [store] is a plain cached store: visible to subsequent reads, but
      volatile until a [flush] covering it and a later [fence] execute;
    - [memcpy_nt]/[memset_nt] are non-temporal: they become persistent at the
      next [fence] without needing a flush;
    - [flush] writes back the cache lines covering a buffer; the written-back
      contents become persistent at the next [fence];
    - a store that has been flushed or written non-temporally but not yet
      fenced is {e in-flight}: after a crash it may or may not have reached
      media, independently of other in-flight stores. *)

type t

type stats = {
  mutable nt_calls : int;
  mutable flush_calls : int;
  mutable fence_calls : int;
  mutable cached_stores : int;
  mutable bytes_written : int;
}

val create : Pmem.Image.t -> t
val image : t -> Pmem.Image.t
val size : t -> int
val stats : t -> stats

val set_logger : t -> (Trace.op -> unit) option -> unit
(** Arm or disarm the gray-box logger. When armed, every persistence-function
    invocation is reported; cached [store]s are not (they only reach media
    via a later [flush], which is). *)

val trace_to : t -> Trace.t -> unit
(** [set_logger] with a logger that appends to the given trace. *)

val set_undo : t -> Undo.t option -> unit
(** When set, every mutation first records its pre-image in the undo log.
    Used by the checker to roll back its own mutations of a crash state. *)

type granularity =
  | Function_level
      (** One trace record per persistence-function call — Chipmunk's
          gray-box interception (the default). *)
  | Instruction_level
      (** One trace record per 8-byte store / per flushed cache line — how
          Yat, PMTest and Vinter instrument, kept as an ablation mode to
          reproduce the paper's state-space comparison. *)

val set_granularity : t -> granularity -> unit

val set_read_hook : t -> (int -> int -> unit) option -> unit
(** Observe PM loads ([off], [len]). The replayer's read-set heuristic (the
    Vinter-style state-space reduction the paper suggests Chipmunk could
    adopt, section 6.2) arms this during a probe recovery to learn which
    in-flight writes recovery actually inspects. *)

(** {1 Persistence functions (intercepted)} *)

val memcpy_nt : t -> off:int -> string -> unit
val memset_nt : t -> off:int -> len:int -> char -> unit
val flush : t -> off:int -> len:int -> unit
(** Write back the cache lines covering [off, off+len). *)

val fence : t -> unit

(** {1 Plain cached stores (volatile until flushed)} *)

val store : t -> off:int -> string -> unit
val store_u8 : t -> off:int -> int -> unit
val store_u16 : t -> off:int -> int -> unit
val store_u32 : t -> off:int -> int -> unit
val store_u64 : t -> off:int -> int -> unit

(** {1 Typed non-temporal stores} *)

val nt_u32 : t -> off:int -> int -> unit
val nt_u64 : t -> off:int -> int -> unit

(** {1 Composite helpers} *)

val store_flush : t -> off:int -> string -> unit
(** Cached store immediately followed by a flush of the same region. *)

val persist_u64 : t -> off:int -> int -> unit
(** 8-byte aligned atomic persist: non-temporal store + fence. The standard
    "commit pointer" idiom of log-structured PM file systems. *)

(** {1 Loads} *)

val read : t -> off:int -> len:int -> string
val read_u8 : t -> off:int -> int
val read_u16 : t -> off:int -> int
val read_u32 : t -> off:int -> int
val read_u64 : t -> off:int -> int

(** {1 Syscall markers (inserted by the test harness)} *)

val mark_syscall_begin : t -> idx:int -> descr:string -> unit
val mark_syscall_end : t -> idx:int -> ret:int -> unit

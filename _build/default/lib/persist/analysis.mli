(** Trace analysis used to reproduce the paper's empirical observations about
    PM write patterns (section 3.2 and Observation 7): in-flight vector sizes
    overall and per system call. *)

type epoch = {
  syscall_idx : int option;  (** [None] for writes outside any marked syscall. *)
  syscall : string option;  (** Description of the issuing syscall, if any. *)
  stores : int;  (** In-flight vector size at the closing fence. *)
}

val epochs : Trace.t -> epoch list
(** One entry per fence (plus a trailing entry if the trace ends with
    unfenced in-flight stores), with the syscall active at that point. *)

type summary = { count : int; mean : float; max : int }

val summarize : int list -> summary

val per_syscall_summary : Trace.t -> (string * summary) list
(** In-flight vector size summary grouped by syscall name (the first word of
    the syscall description), sorted by name. *)

let cache_line = 64
let atomic_unit = 8
let line_of addr = addr / cache_line
let line_base addr = addr - (addr mod cache_line)

let is_atomic ~off ~len =
  len > 0 && len <= atomic_unit && off / atomic_unit = (off + len - 1) / atomic_unit

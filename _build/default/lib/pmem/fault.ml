(** Faults raised by the simulated hardware and caught by the test harness.

    A file system that performs an out-of-bounds access (paper bug 16) or a
    double free during recovery (paper bug 11) raises one of these; the
    Chipmunk checker converts the exception into a bug report rather than
    crashing the harness. *)

exception Out_of_bounds of { off : int; len : int; size : int }
(** Access to [off, off+len) on a device of [size] bytes. *)

exception Device_fault of string
(** Any other condition the simulated hardware treats as fatal (e.g. a
    detected double free in an allocator, a null-dereference stand-in). *)

let out_of_bounds ~off ~len ~size = raise (Out_of_bounds { off; len; size })
let fail fmt = Format.kasprintf (fun s -> raise (Device_fault s)) fmt

let to_string = function
  | Out_of_bounds { off; len; size } ->
    Printf.sprintf "out-of-bounds access: [%d, %d) on device of %d bytes" off (off + len) size
  | Device_fault msg -> Printf.sprintf "device fault: %s" msg
  | e -> Printexc.to_string e

lib/pmem/checksum.ml: Array Char Lazy String

lib/pmem/checksum.mli:

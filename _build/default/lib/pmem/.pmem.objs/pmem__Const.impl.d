lib/pmem/const.ml:

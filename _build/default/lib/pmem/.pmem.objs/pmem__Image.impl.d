lib/pmem/image.ml: Buffer Bytes Char Fault Int32 Int64 Printf String

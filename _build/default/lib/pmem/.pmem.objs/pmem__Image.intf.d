lib/pmem/image.mli:

lib/pmem/const.mli:

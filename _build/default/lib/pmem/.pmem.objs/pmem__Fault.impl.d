lib/pmem/fault.ml: Format Printexc Printf

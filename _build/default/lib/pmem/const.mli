(** Architectural constants of the simulated persistence model.

    The model follows the x86 epoch-based persistence model described in
    section 2 of the Chipmunk paper: stores reach persistent media at
    cache-line granularity, the unit of write atomicity is 8 bytes, and
    ordering is only guaranteed across store fences. *)

val cache_line : int
(** Size in bytes of a cache line, the granularity of [clwb]-style flushes. *)

val atomic_unit : int
(** Size in bytes of an atomically-persisted aligned write (8 on Intel PM).
    Writes no larger than this, aligned to it, cannot tear. *)

val line_of : int -> int
(** [line_of addr] is the index of the cache line containing byte [addr]. *)

val line_base : int -> int
(** [line_base addr] is the address of the first byte of [addr]'s line. *)

val is_atomic : off:int -> len:int -> bool
(** Whether a write of [len] bytes at [off] persists atomically: it must fit
    within one aligned [atomic_unit]. *)

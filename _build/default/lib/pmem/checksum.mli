(** CRC32 (IEEE 802.3 polynomial), used by the NOVA-Fortis and SplitFS models
    to checksum metadata structures and log entries. *)

val crc32 : string -> int
(** Checksum of a whole string, in [0, 2^32). *)

val crc32_sub : string -> pos:int -> len:int -> int
(** Checksum of a substring. *)

type t = { data : Bytes.t; size : int }

let create ~size = { data = Bytes.make size '\000'; size }
let size t = t.size

let check t ~off ~len =
  if off < 0 || len < 0 || off + len > t.size then
    Fault.out_of_bounds ~off ~len ~size:t.size

let read t ~off ~len =
  check t ~off ~len;
  Bytes.sub_string t.data off len

let read_u8 t ~off =
  check t ~off ~len:1;
  Char.code (Bytes.get t.data off)

let read_u16 t ~off =
  check t ~off ~len:2;
  Bytes.get_uint16_le t.data off

let read_u32 t ~off =
  check t ~off ~len:4;
  Int32.to_int (Bytes.get_int32_le t.data off) land 0xFFFFFFFF

let read_u64 t ~off =
  check t ~off ~len:8;
  Int64.to_int (Bytes.get_int64_le t.data off)

let write_string t ~off s =
  check t ~off ~len:(String.length s);
  Bytes.blit_string s 0 t.data off (String.length s)

let fill t ~off ~len c =
  check t ~off ~len;
  Bytes.fill t.data off len c

let write_u8 t ~off v =
  check t ~off ~len:1;
  Bytes.set t.data off (Char.chr (v land 0xFF))

let write_u16 t ~off v =
  check t ~off ~len:2;
  Bytes.set_uint16_le t.data off (v land 0xFFFF)

let write_u32 t ~off v =
  check t ~off ~len:4;
  Bytes.set_int32_le t.data off (Int32.of_int (v land 0xFFFFFFFF))

let write_u64 t ~off v =
  check t ~off ~len:8;
  Bytes.set_int64_le t.data off (Int64.of_int v)

let snapshot t = { data = Bytes.copy t.data; size = t.size }

let restore t ~from =
  if t.size <> from.size then Fault.fail "restore: size mismatch (%d vs %d)" t.size from.size;
  Bytes.blit from.data 0 t.data 0 t.size

let equal a b = a.size = b.size && Bytes.equal a.data b.data

let hexdump ?(off = 0) ?len t =
  let len = match len with Some l -> l | None -> t.size - off in
  check t ~off ~len;
  let buf = Buffer.create (len * 4) in
  let rec go pos =
    if pos < off + len then begin
      let n = min 16 (off + len - pos) in
      Buffer.add_string buf (Printf.sprintf "%08x  " pos);
      for i = 0 to n - 1 do
        Buffer.add_string buf (Printf.sprintf "%02x " (Char.code (Bytes.get t.data (pos + i))))
      done;
      Buffer.add_char buf ' ';
      for i = 0 to n - 1 do
        let c = Bytes.get t.data (pos + i) in
        Buffer.add_char buf (if c >= ' ' && c <= '~' then c else '.')
      done;
      Buffer.add_char buf '\n';
      go (pos + 16)
    end
  in
  go off;
  Buffer.contents buf

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let crc32_sub s ~pos ~len =
  let table = Lazy.force table in
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    crc := table.((!crc lxor Char.code s.[i]) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

let crc32 s = crc32_sub s ~pos:0 ~len:(String.length s)

(** The shared core of the PMFS/WineFS family: a classic inode-table file
    system with direct + indirect block pointers, in-place metadata updates
    protected by an undo {!Undo_journal}, in-place data writes, a persistent
    truncate (orphan) list, and a volatile block allocator rebuilt at mount.

    WineFS instantiates the same core with per-CPU journals, an
    alignment-aware allocator and a strict (copy-on-write, atomic-data)
    write mode — faithful to its real heritage as a PMFS derivative.

    The [bugs] switches re-introduce paper bugs 13-20; everything defaults
    to the fixed behaviour. *)

module Types = Vfs.Types
module Errno = Vfs.Errno
module Pm = Persist.Pm

let ( let* ) = Result.bind

type bugs = {
  bug13_replay_without_freelist : bool;
      (** Recovery replays the truncate list before the volatile free list
          exists (null dereference; paper bug 13). *)
  bug14_skip_data_fence : bool;
      (** The pure-overwrite fast path returns without a fence (writes not
          synchronous; paper bugs 14/15). *)
  bug16_unvalidated_journal : bool;
      (** Journal commit publishes the valid flag with the records, and
          recovery skips validation (OOB access; paper bug 16). *)
  bug17_skip_tail_flush : bool;
      (** The data path never flushes cached unaligned tails (data loss;
          paper bugs 17/18). *)
  bug19_recover_first_journal_only : bool;
      (** Recovery mis-indexes the per-CPU journal array and only rolls back
          journal 0 (paper bug 19). *)
  bug20_strict_inplace_tail : bool;
      (** Strict mode copies-on-write only the first touched block of a
          multi-block write (torn atomic write; paper bug 20). *)
}

let no_bugs =
  {
    bug13_replay_without_freelist = false;
    bug14_skip_data_fence = false;
    bug16_unvalidated_journal = false;
    bug17_skip_tail_flush = false;
    bug19_recover_first_journal_only = false;
    bug20_strict_inplace_tail = false;
  }

type config = {
  fs_name : string;
  page_size : int;
  n_pages : int;
  n_inodes : int;
  n_journals : int;
  journal_pages : int;
  strict_data : bool;
  aligned_alloc : bool;
  align : int;  (** allocation alignment for data, in pages *)
  bugs : bugs;
}

let base_config =
  {
    fs_name = "pmjfs";
    page_size = 128;
    n_pages = 1024;
    n_inodes = 32;
    n_journals = 1;
    journal_pages = 2;
    strict_data = false;
    aligned_alloc = false;
    align = 1;
    bugs = no_bugs;
  }

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)

let magic = 0x504D4A46 (* "PMJF" *)
let version = 1
let inode_slot_size = 64
let dentry_size = 32
let n_direct = 8
let name_max = 26

(* Superblock offsets *)
let sb_magic = 0
let sb_version = 4
let sb_page_size = 8
let sb_n_pages = 12
let sb_n_inodes = 16
let sb_n_journals = 20
let sb_strict = 21
let sb_trunc_head = 24 (* u32: ino + 1, 0 = empty list *)

(* Inode slot offsets *)
let i_valid = 0
let i_kind = 1
let i_links = 2 (* u16 *)
let i_trunc_target = 4 (* u32 *)
let i_size = 8 (* u64 *)
let i_direct = 16 (* u32 x 8 *)
let i_indirect = 48 (* u32 *)
let i_trunc_next = 52 (* u32: ino + 1 *)
let i_trunc_kind = 56 (* u8: 0 none, 1 truncate, 2 free *)

(* Dentry offsets *)
let d_ino = 0
let d_valid = 4
let d_name_len = 5
let d_name = 6

type lay = {
  cfg : config;
  inode_table : int;
  journal_base : int;
  first_free_page : int;
  size : int;
  ind_per_page : int;  (** indirect pointers per page *)
}

let layout cfg =
  let it_pages = (cfg.n_inodes * inode_slot_size + cfg.page_size - 1) / cfg.page_size in
  let journal_page0 = 1 + it_pages in
  {
    cfg;
    inode_table = cfg.page_size;
    journal_base = journal_page0 * cfg.page_size;
    first_free_page = journal_page0 + (cfg.n_journals * cfg.journal_pages);
    size = cfg.n_pages * cfg.page_size;
    ind_per_page = cfg.page_size / 4;
  }

let inode_off lay ino = lay.inode_table + (ino * inode_slot_size)
let page_off lay page = page * lay.cfg.page_size

let journal lay cpu =
  {
    Undo_journal.base = lay.journal_base + (cpu * lay.cfg.journal_pages * lay.cfg.page_size);
    space = lay.cfg.journal_pages * lay.cfg.page_size;
  }

let max_blocks lay = n_direct + lay.ind_per_page
let max_size lay = max_blocks lay * lay.cfg.page_size

(* ------------------------------------------------------------------ *)
(* DRAM state                                                          *)

type dentry = { target : int; addr : int  (** device address of the 32-byte slot *) }

type inode = {
  ino : int;
  kind : Types.file_kind;
  mutable links : int;
  mutable size : int;
  direct : int array;  (** page numbers, 0 = unmapped *)
  mutable indirect : int;  (** indirect page, 0 = none *)
  ind : int array;  (** loaded indirect pointers *)
  dentries : (string, dentry) Hashtbl.t;
  mutable opens : int;
  mutable error : Errno.t option;
}

type t = {
  pm : Pm.t;
  lay : lay;
  bugs : bugs;
  inodes : (int, inode) Hashtbl.t;
  alloc : Blockalloc.t;
}

let root_ino = 0
let name = "pmjfs"

let fresh_inode lay ~ino ~kind ~links =
  {
    ino;
    kind;
    links;
    size = 0;
    direct = Array.make n_direct 0;
    indirect = 0;
    ind = Array.make lay.ind_per_page 0;
    dentries = Hashtbl.create 8;
    opens = 0;
    error = None;
  }

let get t ino =
  match Hashtbl.find_opt t.inodes ino with None -> Error Errno.ENOENT | Some i -> Ok i

let live t ino =
  let* i = get t ino in
  match i.error with Some e -> Error e | None -> Ok i

let alloc_ino t =
  let rec scan i =
    if i >= t.lay.cfg.n_inodes then Error Errno.ENOSPC
    else if Hashtbl.mem t.inodes i then scan (i + 1)
    else Ok i
  in
  scan 0

let alloc_page t =
  if t.lay.cfg.aligned_alloc then Blockalloc.alloc_aligned t.alloc ~align:t.lay.cfg.align
  else Blockalloc.alloc t.alloc

let cpu_of t ino = ino mod t.lay.cfg.n_journals

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)

let with_tx t ~cpu ~spans f =
  Undo_journal.begin_tx ~bug16_count_before_records:t.bugs.bug16_unvalidated_journal t.pm
    (journal t.lay cpu) ~spans;
  f ();
  Undo_journal.end_tx t.pm (journal t.lay cpu)

(* Span helpers *)
let span_inode t ino = (inode_off t.lay ino, inode_slot_size)
let span_links t ino = (inode_off t.lay ino + i_links, 2)
let span_size t ino = (inode_off t.lay ino + i_size, 8)
let span_dentry addr = (addr, dentry_size)
let span_dentry_valid addr = (addr + d_valid, 1)
let span_trunc_head _t = (sb_trunc_head, 4)
let span_trunc_fields t ino = (inode_off t.lay ino + i_trunc_next, 5)
let _ = span_trunc_fields

(* In-place write helpers (used inside transactions; the journal's end_tx
   fence publishes them). *)
let put_u8 t ~off v = Pm.memcpy_nt t.pm ~off (String.make 1 (Char.chr (v land 0xFF)))

let put_u16 t ~off v =
  let b = Bytes.create 2 in
  Bytes.set_uint16_le b 0 v;
  Pm.memcpy_nt t.pm ~off (Bytes.to_string b)

let put_u32 t ~off v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Pm.memcpy_nt t.pm ~off (Bytes.to_string b)

let put_u64 t ~off v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Pm.memcpy_nt t.pm ~off (Bytes.to_string b)

let write_links t inode links =
  inode.links <- links;
  put_u16 t ~off:(inode_off t.lay inode.ino + i_links) links

let write_size t inode size =
  inode.size <- size;
  put_u64 t ~off:(inode_off t.lay inode.ino + i_size) size

(* ------------------------------------------------------------------ *)
(* Block mapping                                                       *)

let block_of inode idx = if idx < n_direct then inode.direct.(idx) else inode.ind.(idx - n_direct)

let block_ptr_addr t inode idx =
  if idx < n_direct then inode_off t.lay inode.ino + i_direct + (4 * idx)
  else page_off t.lay inode.indirect + (4 * (idx - n_direct))

let set_block t inode idx page =
  (* In-place pointer update; the caller's transaction covers the span. *)
  if idx < n_direct then inode.direct.(idx) <- page else inode.ind.(idx - n_direct) <- page;
  put_u32 t ~off:(block_ptr_addr t inode idx) page

let read_block t inode idx =
  match block_of inode idx with
  | 0 -> String.make t.lay.cfg.page_size '\000'
  | pg -> Pm.read t.pm ~off:(page_off t.lay pg) ~len:t.lay.cfg.page_size

let read_range t inode ~off ~len =
  let psz = t.lay.cfg.page_size in
  let buf = Bytes.create len in
  let rec go pos =
    if pos < len then begin
      let abs = off + pos in
      let idx = abs / psz and in_page = abs mod psz in
      let n = min (psz - in_page) (len - pos) in
      let block = read_block t inode idx in
      Bytes.blit_string block in_page buf pos n;
      go (pos + n)
    end
  in
  go 0;
  Bytes.to_string buf

(* ------------------------------------------------------------------ *)
(* Dentry slots                                                        *)

let dentry_slots_per_page lay = lay.cfg.page_size / dentry_size

(* Find a free dentry slot in the directory, or allocate a fresh page for
   one. Returns the slot address plus, when a page was allocated, the block
   index and page so the caller's transaction can publish the pointer. *)
(* Directories use only direct blocks for dentry pages, keeping
   transactions small (8 pages x 4 slots = 32 entries per directory). *)
let find_dentry_slot t dir =
  let psz = t.lay.cfg.page_size in
  let per = dentry_slots_per_page t.lay in
  let rec go idx =
    if idx >= n_direct then Error Errno.ENOSPC
    else
      match block_of dir idx with
      | 0 -> (
        (* Allocate and zero a fresh dentry page; it stays unreferenced
           until the caller's transaction publishes the pointer. *)
        match alloc_page t with
        | Error e -> Error e
        | Ok pg ->
          Pm.memset_nt t.pm ~off:(page_off t.lay pg) ~len:psz '\000';
          Pm.fence t.pm;
          Ok (page_off t.lay pg, Some (idx, pg)))
      | pg ->
        let rec slot i =
          if i >= per then go (idx + 1)
          else
            let addr = page_off t.lay pg + (i * dentry_size) in
            if Pm.read_u8 t.pm ~off:(addr + d_valid) = 0 then Ok (addr, None) else slot (i + 1)
        in
        slot 0
  in
  go 0

let write_dentry t ~addr ~ino ~dname =
  let b = Bytes.make dentry_size '\000' in
  Bytes.set_int32_le b d_ino (Int32.of_int ino);
  Bytes.set b d_valid '\001';
  Bytes.set b d_name_len (Char.chr (String.length dname));
  Bytes.blit_string dname 0 b d_name (String.length dname);
  Pm.memcpy_nt t.pm ~off:addr (Bytes.to_string b)

(* ------------------------------------------------------------------ *)
(* Inode slot persistence                                              *)

let write_inode_slot t inode ~valid =
  let off = inode_off t.lay inode.ino in
  let b = Bytes.make inode_slot_size '\000' in
  Bytes.set b i_valid (if valid then '\001' else '\000');
  Bytes.set b i_kind (match inode.kind with Types.Reg -> '\001' | Types.Dir -> '\002');
  Bytes.set_uint16_le b i_links inode.links;
  Bytes.set_int64_le b i_size (Int64.of_int inode.size);
  Array.iteri (fun i pg -> Bytes.set_int32_le b (i_direct + (4 * i)) (Int32.of_int pg)) inode.direct;
  Bytes.set_int32_le b i_indirect (Int32.of_int inode.indirect);
  Pm.memcpy_nt t.pm ~off (Bytes.to_string b)

(* ------------------------------------------------------------------ *)
(* Truncate (orphan) list                                              *)

let trunc_head t = Pm.read_u32 t.pm ~off:sb_trunc_head

(* Insert [ino] at the head of the persistent truncate list. Runs as its own
   transaction; a crash after it commits lets recovery finish the job. *)
let trunc_list_insert t inode ~tkind ~target =
  let off = inode_off t.lay inode.ino in
  with_tx t ~cpu:(cpu_of t inode.ino)
    ~spans:[ span_trunc_head t; (off + i_trunc_target, 4); (off + i_trunc_next, 5) ]
    (fun () ->
      put_u32 t ~off:(off + i_trunc_target) target;
      put_u32 t ~off:(off + i_trunc_next) (trunc_head t);
      put_u8 t ~off:(off + i_trunc_kind) tkind;
      put_u32 t ~off:sb_trunc_head (inode.ino + 1))

(* The list is only ever popped from the head (items are pushed and
   completed within one syscall, so the head is the item being removed). *)
let trunc_list_remove_head t inode extra_spans f =
  let off = inode_off t.lay inode.ino in
  with_tx t ~cpu:(cpu_of t inode.ino)
    ~spans:([ span_trunc_head t; (off + i_trunc_next, 5) ] @ extra_spans)
    (fun () ->
      put_u32 t ~off:sb_trunc_head (Pm.read_u32 t.pm ~off:(off + i_trunc_next));
      put_u32 t ~off:(off + i_trunc_next) 0;
      put_u8 t ~off:(off + i_trunc_kind) 0;
      f ())

let free_blocks_dram t inode ~from_idx =
  for idx = from_idx to max_blocks t.lay - 1 do
    match block_of inode idx with
    | 0 -> ()
    | pg ->
      Blockalloc.free t.alloc pg;
      if idx < n_direct then inode.direct.(idx) <- 0 else inode.ind.(idx - n_direct) <- 0
  done;
  if from_idx = 0 && inode.indirect <> 0 then begin
    Blockalloc.free t.alloc inode.indirect;
    inode.indirect <- 0
  end

(* Free an inode whose last link is gone: push it on the truncate list, then
   clear the slot and pop the list in a second transaction. *)
let free_inode t inode =
  Cov.mark "jfs.free_inode";
  trunc_list_insert t inode ~tkind:2 ~target:0;
  trunc_list_remove_head t inode
    [ span_inode t inode.ino ]
    (fun () ->
      put_u8 t ~off:(inode_off t.lay inode.ino + i_valid) 0);
  free_blocks_dram t inode ~from_idx:0;
  Hashtbl.remove t.inodes inode.ino

let drop_link t inode =
  if inode.links = 0 && inode.opens = 0 then free_inode t inode

(* ------------------------------------------------------------------ *)
(* INODE_OPS: namespace                                                *)

let lookup t ~dir ~name:dname =
  let* d = live t dir in
  if d.kind <> Types.Dir then Error Errno.ENOTDIR
  else
    match Hashtbl.find_opt d.dentries dname with
    | Some de -> Ok de.target
    | None -> Error Errno.ENOENT

let getattr t ~ino =
  let* i = get t ino in
  match i.error with
  | Some e -> Error e
  | None ->
    Ok
      {
        Types.st_ino = ino;
        st_kind = i.kind;
        st_size =
          (match i.kind with Types.Reg -> i.size | Types.Dir -> Hashtbl.length i.dentries);
        st_nlink = i.links;
      }

let make_inode t ~dir ~name:dname ~kind =
  Cov.mark (if kind = Types.Reg then "jfs.create" else "jfs.mkdir");
  let* d = live t dir in
  let* ino = alloc_ino t in
  let* addr, new_page = find_dentry_slot t d in
  let links = match kind with Types.Reg -> 1 | Types.Dir -> 2 in
  let node = fresh_inode t.lay ~ino ~kind ~links in
  Hashtbl.replace t.inodes ino node;
  let spans =
    [ span_inode t ino; span_dentry addr ]
    @ (match new_page with Some (idx, _) -> [ (block_ptr_addr t d idx, 4) ] | None -> [])
    @ (if kind = Types.Dir then [ span_links t d.ino ] else [])
  in
  with_tx t ~cpu:(cpu_of t ino) ~spans (fun () ->
      write_inode_slot t node ~valid:true;
      write_dentry t ~addr ~ino ~dname;
      (match new_page with Some (idx, pg) -> set_block t d idx pg | None -> ());
      if kind = Types.Dir then write_links t d (d.links + 1));
  Hashtbl.replace d.dentries dname { target = ino; addr };
  Ok ino

let create t ~dir ~name = make_inode t ~dir ~name ~kind:Types.Reg
let mkdir t ~dir ~name = make_inode t ~dir ~name ~kind:Types.Dir

let link t ~ino ~dir ~name:dname =
  Cov.mark "jfs.link";
  let* f = live t ino in
  let* d = live t dir in
  if f.links >= 0xFFFF then Error Errno.EMLINK
  else
    let* addr, new_page = find_dentry_slot t d in
    let spans =
      [ span_dentry addr; span_links t ino ]
      @ match new_page with Some (idx, _) -> [ (block_ptr_addr t d idx, 4) ] | None -> []
    in
    with_tx t ~cpu:(cpu_of t ino) ~spans (fun () ->
        write_dentry t ~addr ~ino ~dname;
        (match new_page with Some (idx, pg) -> set_block t d idx pg | None -> ());
        write_links t f (f.links + 1));
    Hashtbl.replace d.dentries dname { target = ino; addr };
    Ok ()

let unlink t ~dir ~name:dname =
  Cov.mark "jfs.unlink";
  let* d = live t dir in
  let de = Hashtbl.find d.dentries dname in
  let* f = get t de.target in
  with_tx t ~cpu:(cpu_of t de.target)
    ~spans:[ span_dentry_valid de.addr; span_links t de.target ]
    (fun () ->
      put_u8 t ~off:(de.addr + d_valid) 0;
      write_links t f (f.links - 1));
  Hashtbl.remove d.dentries dname;
  drop_link t f;
  Ok ()

let rmdir t ~dir ~name:dname =
  Cov.mark "jfs.rmdir";
  let* d = live t dir in
  let de = Hashtbl.find d.dentries dname in
  let* victim = get t de.target in
  with_tx t ~cpu:(cpu_of t de.target)
    ~spans:[ span_dentry_valid de.addr; span_links t d.ino; span_links t de.target ]
    (fun () ->
      put_u8 t ~off:(de.addr + d_valid) 0;
      write_links t d (d.links - 1);
      write_links t victim 0);
  Hashtbl.remove d.dentries dname;
  free_inode t victim;
  Ok ()

let rename t ~odir ~oname ~ndir ~nname =
  Cov.mark "jfs.rename";
  if odir <> ndir then Cov.mark "jfs.rename.crossdir";
  let* od = live t odir in
  let* nd = live t ndir in
  let de = Hashtbl.find od.dentries oname in
  let* moved = get t de.target in
  let target = Hashtbl.find_opt nd.dentries nname in
  if target <> None then Cov.mark "jfs.rename.overwrite";
  (* Destination slot: reuse the overwritten target's slot when it exists. *)
  let* naddr, new_page =
    match target with
    | Some tde -> Ok (tde.addr, None)
    | None -> find_dentry_slot t nd
  in
  let victim =
    match target with
    | None -> None
    | Some tde -> ( match get t tde.target with Ok v -> Some v | Error _ -> None)
  in
  let spans =
    [ span_dentry_valid de.addr; span_dentry naddr ]
    @ (match new_page with Some (idx, _) -> [ (block_ptr_addr t nd idx, 4) ] | None -> [])
    @ (match victim with Some v -> [ span_links t v.ino ] | None -> [])
    @
    if moved.kind = Types.Dir && odir <> ndir then
      [ span_links t od.ino; span_links t nd.ino ]
    else []
  in
  with_tx t ~cpu:(cpu_of t de.target) ~spans (fun () ->
      put_u8 t ~off:(de.addr + d_valid) 0;
      write_dentry t ~addr:naddr ~ino:de.target ~dname:nname;
      (match new_page with Some (idx, pg) -> set_block t nd idx pg | None -> ());
      (match victim with
      | Some v -> write_links t v (if v.kind = Types.Dir then 0 else v.links - 1)
      | None -> ());
      if moved.kind = Types.Dir && odir <> ndir then begin
        write_links t od (od.links - 1);
        write_links t nd (nd.links + 1)
      end);
  Hashtbl.remove od.dentries oname;
  Hashtbl.replace nd.dentries nname { target = de.target; addr = naddr };
  (match victim with
  | Some v when v.kind = Types.Dir ->
    free_inode t v
  | Some v -> drop_link t v
  | None -> ());
  Ok ()

let readdir t ~dir =
  let* d = live t dir in
  Ok
    (Hashtbl.fold
       (fun dname de acc -> { Types.d_ino = de.target; d_name = dname } :: acc)
       d.dentries [])

(* ------------------------------------------------------------------ *)
(* INODE_OPS: data                                                     *)

let read t ~ino ~off ~len =
  let* f = live t ino in
  Ok (read_range t f ~off ~len)

(* Ensure every block in [first, last] is mapped; freshly mapped blocks are
   zeroed and their pointers returned for the caller's transaction. *)
let map_blocks t f ~first ~last =
  let psz = t.lay.cfg.page_size in
  let ensure_indirect () =
    if last >= n_direct && f.indirect = 0 then begin
      match alloc_page t with
      | Error e -> Error e
      | Ok pg ->
        Pm.memset_nt t.pm ~off:(page_off t.lay pg) ~len:psz '\000';
        Pm.fence t.pm;
        f.indirect <- pg;
        Ok (Some pg)
    end
    else Ok None
  in
  let* new_indirect = ensure_indirect () in
  let rec go acc idx =
    if idx > last then Ok (List.rev acc)
    else
      match block_of f idx with
      | 0 -> (
        match alloc_page t with
        | Error e -> Error e
        | Ok pg ->
          Pm.memset_nt t.pm ~off:(page_off t.lay pg) ~len:psz '\000';
          go ((idx, pg) :: acc) (idx + 1))
      | _ -> go acc (idx + 1)
  in
  let* fresh = go [] first in
  if fresh <> [] then Pm.fence t.pm;
  Ok (fresh, new_indirect)

(* Zero the stale bytes between the current size and [upto] inside already
   mapped blocks, so an extension cannot resurrect old data. Runs before the
   size-publishing transaction: the zeroed region is invisible at the old
   size, keeping the operation atomic. *)
let zero_stale_tail t f ~upto =
  let psz = t.lay.cfg.page_size in
  if upto > f.size && f.size mod psz <> 0 then begin
    let idx = f.size / psz in
    match block_of f idx with
    | 0 -> ()
    | pg ->
      let start = f.size mod psz in
      let stop = min psz (start + (upto - f.size)) in
      Pm.memset_nt t.pm ~off:(page_off t.lay pg + start) ~len:(stop - start) '\000';
      Pm.fence t.pm
  end

let write t ~ino ~off ~data =
  Cov.mark "jfs.write";
  let* f = live t ino in
  let len = String.length data in
  if len = 0 then Ok 0
  else if off + len > max_size t.lay then Error Errno.EFBIG
  else begin
    let psz = t.lay.cfg.page_size in
    let first = off / psz and last = (off + len - 1) / psz in
    let new_size = max f.size (off + len) in
    if off > f.size then zero_stale_tail t f ~upto:off;
    if t.lay.cfg.strict_data then begin
      (* Strict mode (WineFS): copy-on-write every touched block, publish
         all pointers and the size in one transaction. *)
      Cov.mark "jfs.write.strict";
      let rec cow acc idx =
        if idx > last then Ok (List.rev acc)
        else
          let* pg = alloc_page t in
          cow ((idx, pg) :: acc) (idx + 1)
      in
      let* ensure_ind =
        if last >= n_direct && f.indirect = 0 then
          let* pg = alloc_page t in
          Pm.memset_nt t.pm ~off:(page_off t.lay pg) ~len:psz '\000';
          f.indirect <- pg;
          Ok (Some pg)
        else Ok None
      in
      let* fresh = cow [] first in
      let inplace_tail =
        (* Bug 20: blocks after the first are updated in place instead of
           copy-on-write, tearing the supposedly atomic write. *)
        t.bugs.bug20_strict_inplace_tail && List.length fresh > 1
      in
      let fresh = if inplace_tail then [ List.hd fresh ] else fresh in
      List.iter
        (fun (idx, pg) ->
          let old = read_block t f idx in
          let b = Bytes.of_string old in
          let bstart = idx * psz in
          let s = max off bstart and e = min (off + len) (bstart + psz) in
          Bytes.blit_string data (s - off) b (s - bstart) (e - s);
          Pm.memcpy_nt t.pm ~off:(page_off t.lay pg) (Bytes.to_string b))
        fresh;
      if inplace_tail then begin
        Cov.mark "jfs.write.bug20";
        for idx = first + 1 to last do
          match block_of f idx with
          | 0 -> ()
          | pg ->
            let bstart = idx * psz in
            let s = max off bstart and e = min (off + len) (bstart + psz) in
            Pm.memcpy_nt t.pm ~off:(page_off t.lay pg + (s - bstart))
              (String.sub data (s - off) (e - s))
        done
      end;
      Pm.fence t.pm;
      let spans =
        [ span_size t ino ]
        @ List.map (fun (idx, _) -> (block_ptr_addr t f idx, 4)) fresh
        @ (match ensure_ind with Some _ -> [ (inode_off t.lay ino + i_indirect, 4) ] | None -> [])
      in
      let old_pages = List.filter_map (fun (idx, _) -> match block_of f idx with 0 -> None | p -> Some p) fresh in
      with_tx t ~cpu:(cpu_of t ino) ~spans (fun () ->
          (match ensure_ind with
          | Some pg -> put_u32 t ~off:(inode_off t.lay ino + i_indirect) pg
          | None -> ());
          List.iter (fun (idx, pg) -> set_block t f idx pg) fresh;
          write_size t f new_size);
      List.iter (Blockalloc.free t.alloc) old_pages;
      Ok len
    end
    else begin
      (* PMFS mode: new blocks are populated before the metadata commit;
         existing blocks are overwritten in place (data writes are not
         atomic). *)
      let* fresh, new_indirect = map_blocks t f ~first ~last in
      let fresh_set = List.map fst fresh in
      (* Populate fresh blocks fully (they are unreferenced until the tx). *)
      List.iter
        (fun (idx, pg) ->
          let bstart = idx * psz in
          let s = max off bstart and e = min (off + len) (bstart + psz) in
          Pm.memcpy_nt t.pm
            ~off:(page_off t.lay pg + (s - bstart))
            (String.sub data (s - off) (e - s)))
        fresh;
      (* Overwrite already mapped blocks in place. *)
      for idx = first to last do
        if not (List.mem idx fresh_set) then begin
          let pg = block_of f idx in
          let bstart = idx * psz in
          let s = max off bstart and e = min (off + len) (bstart + psz) in
          Datapath.copy_to_pm ~bug_skip_tail_flush:t.bugs.bug17_skip_tail_flush t.pm
            ~off:(page_off t.lay pg + (s - bstart))
            ~data:(String.sub data (s - off) (e - s))
        end
      done;
      let metadata_changed = fresh <> [] || new_indirect <> None || new_size <> f.size in
      if metadata_changed then begin
        Pm.fence t.pm;
        let spans =
          [ span_size t ino ]
          @ List.map (fun (idx, _) -> (block_ptr_addr t f idx, 4)) fresh
          @
          match new_indirect with
          | Some _ -> [ (inode_off t.lay ino + i_indirect, 4) ]
          | None -> []
        in
        with_tx t ~cpu:(cpu_of t ino) ~spans (fun () ->
            (match new_indirect with
            | Some pg -> put_u32 t ~off:(inode_off t.lay ino + i_indirect) pg
            | None -> ());
            List.iter (fun (idx, pg) -> set_block t f idx pg) fresh;
            write_size t f new_size)
      end
      else if t.bugs.bug14_skip_data_fence then
        (* Bug 14/15: the pure-overwrite fast path returns without fencing
           the data it just wrote. *)
        Cov.mark "jfs.write.unfenced_fastpath"
      else Pm.fence t.pm;
      Ok len
    end
  end

let truncate t ~ino ~size =
  Cov.mark "jfs.truncate";
  let* f = live t ino in
  if size > max_size t.lay then Error Errno.EFBIG
  else if size = f.size then Ok ()
  else if size > f.size then begin
    zero_stale_tail t f ~upto:size;
    with_tx t ~cpu:(cpu_of t ino) ~spans:[ span_size t ino ] (fun () -> write_size t f size);
    Ok ()
  end
  else begin
    let psz = t.lay.cfg.page_size in
    let keep_blocks = (size + psz - 1) / psz in
    (* Phase 1: record the intent on the truncate list. *)
    trunc_list_insert t f ~tkind:1 ~target:size;
    (* Phase 2: shrink and pop the list in one transaction. *)
    let spans =
      [ span_size t ino ]
      @ List.filter_map
          (fun idx -> if block_of f idx <> 0 then Some (block_ptr_addr t f idx, 4) else None)
          (List.init (max_blocks t.lay - keep_blocks) (fun i -> keep_blocks + i))
    in
    trunc_list_remove_head t f spans (fun () ->
        write_size t f size;
        for idx = keep_blocks to max_blocks t.lay - 1 do
          if block_of f idx <> 0 then begin
            (* Record the page for the DRAM free below via the in-memory
               arrays; the persistent pointer is cleared here. *)
            put_u32 t ~off:(block_ptr_addr t f idx) 0
          end
        done);
    (* DRAM: free the dropped pages. *)
    for idx = keep_blocks to max_blocks t.lay - 1 do
      match block_of f idx with
      | 0 -> ()
      | pg ->
        Blockalloc.free t.alloc pg;
        if idx < n_direct then f.direct.(idx) <- 0 else f.ind.(idx - n_direct) <- 0
    done;
    Ok ()
  end

let fallocate t ~ino ~off ~len ~keep_size =
  Cov.mark "jfs.fallocate";
  let* f = live t ino in
  if off + len > max_size t.lay then Error Errno.EFBIG
  else begin
    let psz = t.lay.cfg.page_size in
    let first = off / psz and last = (off + len - 1) / psz in
    let new_size = if keep_size then f.size else max f.size (off + len) in
    if new_size > f.size then zero_stale_tail t f ~upto:new_size;
    let* fresh, new_indirect = map_blocks t f ~first ~last in
    if fresh <> [] || new_indirect <> None || new_size <> f.size then begin
      let spans =
        [ span_size t ino ]
        @ List.map (fun (idx, _) -> (block_ptr_addr t f idx, 4)) fresh
        @
        match new_indirect with
        | Some _ -> [ (inode_off t.lay ino + i_indirect, 4) ]
        | None -> []
      in
      with_tx t ~cpu:(cpu_of t ino) ~spans (fun () ->
          (match new_indirect with
          | Some pg -> put_u32 t ~off:(inode_off t.lay ino + i_indirect) pg
          | None -> ());
          List.iter (fun (idx, pg) -> set_block t f idx pg) fresh;
          write_size t f new_size)
    end;
    Ok ()
  end

(* Extended attributes are not supported (paper section 4.1: only the DAX
   family implements them among the tested systems). *)
let setxattr _t ~ino:_ ~name:_ ~value:_ = Error Errno.ENOTSUP
let getxattr _t ~ino:_ ~name:_ = Error Errno.ENOTSUP
let listxattr _t ~ino:_ = Error Errno.ENOTSUP
let removexattr _t ~ino:_ ~name:_ = Error Errno.ENOTSUP

let fsync _t ~ino:_ = Ok ()
let sync _t = ()
let iget t ~ino = match get t ino with Error _ -> () | Ok i -> i.opens <- i.opens + 1

let iput t ~ino =
  match get t ino with
  | Error _ -> ()
  | Ok i ->
    i.opens <- max 0 (i.opens - 1);
    if i.links = 0 && i.opens = 0 then free_inode t i

(* ------------------------------------------------------------------ *)
(* mkfs                                                                *)

let mkfs pm cfg =
  let lay = layout cfg in
  if Pm.size pm < lay.size then
    Pmem.Fault.fail "jfs mkfs: device too small (%d < %d)" (Pm.size pm) lay.size;
  let t =
    {
      pm;
      lay;
      bugs = cfg.bugs;
      inodes = Hashtbl.create 32;
      alloc = Blockalloc.create ~n_pages:cfg.n_pages;
    }
  in
  for p = 0 to lay.first_free_page - 1 do
    Blockalloc.mark_used t.alloc p
  done;
  let sb = Bytes.make 32 '\000' in
  Bytes.set_int32_le sb sb_magic (Int32.of_int magic);
  Bytes.set_int32_le sb sb_version (Int32.of_int version);
  Bytes.set_int32_le sb sb_page_size (Int32.of_int cfg.page_size);
  Bytes.set_int32_le sb sb_n_pages (Int32.of_int cfg.n_pages);
  Bytes.set_int32_le sb sb_n_inodes (Int32.of_int cfg.n_inodes);
  Bytes.set sb sb_n_journals (Char.chr cfg.n_journals);
  Bytes.set sb sb_strict (if cfg.strict_data then '\001' else '\000');
  Pm.memcpy_nt t.pm ~off:0 (Bytes.to_string sb);
  let it_bytes =
    (cfg.n_inodes * inode_slot_size + cfg.page_size - 1) / cfg.page_size * cfg.page_size
  in
  Pm.memset_nt t.pm ~off:lay.inode_table ~len:it_bytes '\000';
  Pm.memset_nt t.pm ~off:lay.journal_base
    ~len:(cfg.n_journals * cfg.journal_pages * cfg.page_size)
    '\000';
  let root = fresh_inode lay ~ino:root_ino ~kind:Types.Dir ~links:2 in
  Hashtbl.replace t.inodes root_ino root;
  write_inode_slot t root ~valid:true;
  Pm.fence t.pm;
  t

(* ------------------------------------------------------------------ *)
(* Mount: journal rollback, inode scan, truncate-list replay           *)

exception Mount_error of string

let mount pm cfg =
  let lay = layout cfg in
  let failm fmt = Printf.ksprintf (fun s -> raise (Mount_error s)) fmt in
  let go () =
    if Pm.size pm < lay.size then failm "jfs: device smaller than layout";
    if Pm.read_u32 pm ~off:sb_magic <> magic then failm "jfs: bad superblock magic";
    if Pm.read_u32 pm ~off:sb_version <> version then failm "jfs: bad version";
    if Pm.read_u32 pm ~off:sb_page_size <> cfg.page_size then failm "jfs: page size mismatch";
    if Pm.read_u32 pm ~off:sb_n_pages <> cfg.n_pages then failm "jfs: page count mismatch";
    if Pm.read_u8 pm ~off:sb_n_journals <> cfg.n_journals then failm "jfs: journal count mismatch";
    let t =
      {
        pm;
        lay;
        bugs = cfg.bugs;
        inodes = Hashtbl.create 32;
        alloc = Blockalloc.create ~n_pages:cfg.n_pages;
      }
    in
    (* Step 1: roll back committed journals. Bug 19 mis-indexes the per-CPU
       journal array and only ever recovers journal 0. *)
    let journals_to_recover = if cfg.bugs.bug19_recover_first_journal_only then 1 else cfg.n_journals in
    for cpu = 0 to journals_to_recover - 1 do
      match
        Undo_journal.recover ~bug16_skip_validation:cfg.bugs.bug16_unvalidated_journal pm
          (journal lay cpu) ~device_size:lay.size
      with
      | Ok _ -> ()
      | Error e -> failm "%s" e
    done;
    for p = 0 to lay.first_free_page - 1 do
      Blockalloc.mark_used t.alloc p
    done;
    (* Step 2 (bug 13): the buggy recovery replays the truncate list before
       the volatile allocator state exists; freeing through it is the null
       dereference the paper describes. *)
    if cfg.bugs.bug13_replay_without_freelist && Pm.read_u32 pm ~off:sb_trunc_head <> 0 then begin
      Cov.mark "jfs.mount.bug13";
      Pmem.Fault.fail
        "null pointer dereference: truncate list replayed before free list is built"
    end;
    (* Step 3: load inode slots. *)
    for ino = 0 to cfg.n_inodes - 1 do
      let off = inode_off lay ino in
      if Pm.read_u8 pm ~off:(off + i_valid) = 1 then begin
        let kind = if Pm.read_u8 pm ~off:(off + i_kind) = 2 then Types.Dir else Types.Reg in
        let node = fresh_inode lay ~ino ~kind ~links:(Pm.read_u16 pm ~off:(off + i_links)) in
        node.size <- Pm.read_u64 pm ~off:(off + i_size);
        for i = 0 to n_direct - 1 do
          node.direct.(i) <- Pm.read_u32 pm ~off:(off + i_direct + (4 * i))
        done;
        node.indirect <- Pm.read_u32 pm ~off:(off + i_indirect);
        if node.indirect <> 0 then begin
          if node.indirect >= cfg.n_pages then failm "jfs: inode %d indirect out of range" ino;
          for i = 0 to lay.ind_per_page - 1 do
            node.ind.(i) <- Pm.read_u32 pm ~off:(page_off lay node.indirect + (4 * i))
          done
        end;
        Hashtbl.replace t.inodes ino node
      end
    done;
    if not (Hashtbl.mem t.inodes root_ino) then failm "jfs: no root inode";
    (* Step 4: claim blocks; double references fault. *)
    Hashtbl.iter
      (fun _ node ->
        if node.indirect <> 0 then Blockalloc.mark_used t.alloc node.indirect;
        for idx = 0 to max_blocks lay - 1 do
          let pg = block_of node idx in
          if pg <> 0 then begin
            if pg >= cfg.n_pages then failm "jfs: inode %d block %d out of range" node.ino idx;
            Blockalloc.mark_used t.alloc pg
          end
        done)
      t.inodes;
    (* Step 5: rebuild directories from dentry pages. *)
    let referenced : (int, unit) Hashtbl.t = Hashtbl.create 32 in
    Hashtbl.iter
      (fun _ node ->
        if node.kind = Types.Dir then begin
          let per = dentry_slots_per_page lay in
          for idx = 0 to n_direct - 1 do
            match block_of node idx with
            | 0 -> ()
            | pg ->
              for slot = 0 to per - 1 do
                let addr = page_off lay pg + (slot * dentry_size) in
                if Pm.read_u8 pm ~off:(addr + d_valid) = 1 then begin
                  let target = Pm.read_u32 pm ~off:(addr + d_ino) in
                  let name_len = Pm.read_u8 pm ~off:(addr + d_name_len) in
                  if name_len = 0 || name_len > name_max then
                    failm "jfs: corrupt dentry in directory %d" node.ino;
                  let dname = Pm.read pm ~off:(addr + d_name) ~len:name_len in
                  Hashtbl.replace node.dentries dname { target; addr };
                  Hashtbl.replace referenced target ()
                end
              done
          done
        end)
      t.inodes;
    (* Dentries naming a free inode slot become degraded placeholders: the
       name is visible but every access fails (how bug 19 surfaces as an
       unreadable, undeletable file). Collect first: the inode table must
       not be mutated while it is being iterated. *)
    let dangling =
      Hashtbl.fold
        (fun _ node acc ->
          Hashtbl.fold
            (fun _dname de acc ->
              if Hashtbl.mem t.inodes de.target then acc else de.target :: acc)
            node.dentries acc)
        t.inodes []
    in
    List.iter
      (fun target ->
        Cov.mark "jfs.mount.dangling_dentry";
        let ph = fresh_inode lay ~ino:target ~kind:Types.Reg ~links:1 in
        ph.error <- Some Errno.EIO;
        Hashtbl.replace t.inodes target ph)
      dangling;
    (* Step 6: replay the truncate list (fixed ordering: after the allocator
       and inode scan are ready). *)
    let rec replay head guard =
      if head <> 0 then begin
        if guard > cfg.n_inodes then failm "jfs: truncate list cycle";
        let ino = head - 1 in
        if ino >= cfg.n_inodes then failm "jfs: truncate list references inode %d" ino;
        match Hashtbl.find_opt t.inodes ino with
        | None -> failm "jfs: truncate list references free inode %d" ino
        | Some node ->
          Cov.mark "jfs.mount.trunc_replay";
          let off = inode_off lay ino in
          let next = Pm.read_u32 pm ~off:(off + i_trunc_next) in
          let tkind = Pm.read_u8 pm ~off:(off + i_trunc_kind) in
          let target = Pm.read_u32 pm ~off:(off + i_trunc_target) in
          (if tkind = 2 then begin
             (* Finish freeing the inode. *)
             put_u8 t ~off:(off + i_valid) 0;
             free_blocks_dram t node ~from_idx:0;
             Hashtbl.remove t.inodes ino
           end
           else begin
             (* Finish the truncation. *)
             let psz = cfg.page_size in
             let keep_blocks = (target + psz - 1) / psz in
             node.size <- target;
             put_u64 t ~off:(off + i_size) target;
             for idx = keep_blocks to max_blocks lay - 1 do
               match block_of node idx with
               | 0 -> ()
               | pg ->
                 Blockalloc.free t.alloc pg;
                 put_u32 t ~off:(block_ptr_addr t node idx) 0;
                 if idx < n_direct then node.direct.(idx) <- 0
                 else node.ind.(idx - n_direct) <- 0
             done
           end);
          put_u32 t ~off:(off + i_trunc_next) 0;
          put_u8 t ~off:(off + i_trunc_kind) 0;
          put_u32 t ~off:sb_trunc_head next;
          Pm.fence t.pm;
          replay next (guard + 1)
      end
    in
    replay (Pm.read_u32 pm ~off:sb_trunc_head) 0;
    (* Step 7: reclaim orphans (valid inodes no dentry references). *)
    let orphans =
      Hashtbl.fold
        (fun ino node acc ->
          if ino <> root_ino && node.error = None && not (Hashtbl.mem referenced ino) then
            node :: acc
          else acc)
        t.inodes []
    in
    List.iter
      (fun node ->
        Cov.mark "jfs.mount.orphan";
        put_u8 t ~off:(inode_off lay node.ino + i_valid) 0;
        free_blocks_dram t node ~from_idx:0;
        Hashtbl.remove t.inodes node.ino)
      orphans;
    if orphans <> [] then Pm.fence t.pm;
    t
  in
  match go () with
  | t -> Ok t
  | exception Mount_error e -> Error e

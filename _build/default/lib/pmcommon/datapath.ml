module Pm = Persist.Pm

let copy_to_pm ?(bug_skip_tail_flush = false) pm ~off ~data =
  let len = String.length data in
  let line = Pmem.Const.cache_line in
  (* Bulk prefix: whole cache lines from [off] rounded up to alignment. *)
  let bulk_end = if len >= line then off + (len / line * line) else off in
  if bulk_end > off then Pm.memcpy_nt pm ~off (String.sub data 0 (bulk_end - off));
  let tail_len = off + len - bulk_end in
  if tail_len > 0 then begin
    let tail = String.sub data (len - tail_len) tail_len in
    Pm.store pm ~off:bulk_end tail;
    if bug_skip_tail_flush then Cov.mark "datapath.unflushed_tail"
    else Pm.flush pm ~off:bulk_end ~len:tail_len
  end

(** The undo journal used by the PMFS/WineFS family.

    Unlike NOVA's redo journal, transactions here record {e pre-images}: the
    old contents of every metadata span the transaction will overwrite. On a
    clean run the journal is committed, the spans are updated in place, and
    the journal is cleared; recovery after a crash rolls the spans back to
    their pre-images, making the whole transaction appear never to have
    happened.

    Journal area layout: byte 0 = valid flag, byte 1 = record count,
    bytes 2.. = records, each [addr u32][len u8][pre-image bytes]. *)

type t = { base : int; space : int }
(** One journal area on the device (WineFS has one per CPU). *)

val begin_tx :
  ?bug16_count_before_records:bool -> Persist.Pm.t -> t -> spans:(int * int) list -> unit
(** Record pre-images of the given (addr, len) spans and commit the journal
    (records, fence, valid, fence). With the bug-16 switch, the record
    count is persisted in the same epoch {e before} the records themselves,
    so a crash can expose a committed journal whose count describes stale
    record bytes. *)

val end_tx : Persist.Pm.t -> t -> unit
(** Fence the caller's in-place updates and clear the valid flag. *)

val recover :
  ?bug16_skip_validation:bool -> Persist.Pm.t -> t -> device_size:int -> (int, string) result
(** Roll back a committed transaction, if any. Returns the number of spans
    rolled back. Validation failures (record overruns the journal area or
    the device) reject the mount — unless the bug-16 switch disables
    validation, in which case garbage record contents are trusted and the
    resulting wild writes surface as device faults. *)

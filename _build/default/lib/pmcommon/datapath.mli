(** File-data copy into PM, modelled on the PMFS/WineFS [memcpy_to_pmem]
    helpers: bulk cache-line-multiple prefixes go through non-temporal
    stores; the unaligned tail goes through cached stores plus an explicit
    flush.

    This split is exactly where the paper's bugs 17/18 live: the optimized
    non-temporal path forgets to flush the cached unaligned tail, so the
    final bytes of a write can be lost even after the call returns. *)

val copy_to_pm :
  ?bug_skip_tail_flush:bool -> Persist.Pm.t -> off:int -> data:string -> unit
(** Copy [data] to [off]. No fence is issued; callers order the copy with
    their own fences. With the bug switch, the cached unaligned tail is
    written but never flushed. *)

lib/pmcommon/undo_journal.mli: Persist

lib/pmcommon/datapath.mli: Persist

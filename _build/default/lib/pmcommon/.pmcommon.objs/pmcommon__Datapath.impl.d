lib/pmcommon/datapath.ml: Cov Persist Pmem String

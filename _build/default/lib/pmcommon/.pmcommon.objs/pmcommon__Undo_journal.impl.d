lib/pmcommon/undo_journal.ml: Buffer Bytes Char Int32 List Persist Pmem String

lib/pmcommon/jfs.ml: Array Blockalloc Bytes Char Cov Datapath Hashtbl Int32 Int64 List Persist Pmem Printf Result String Undo_journal Vfs

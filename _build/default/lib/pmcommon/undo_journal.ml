module Pm = Persist.Pm

type t = { base : int; space : int }

let encode_records pm spans =
  let buf = Buffer.create 64 in
  List.iter
    (fun (addr, len) ->
      let b = Bytes.create 5 in
      Bytes.set_int32_le b 0 (Int32.of_int addr);
      Bytes.set b 4 (Char.chr len);
      Buffer.add_bytes buf b;
      Buffer.add_string buf (Pm.read pm ~off:addr ~len))
    spans;
  Buffer.contents buf

let begin_tx ?(bug16_count_before_records = false) pm t ~spans =
  let body = encode_records pm spans in
  if String.length body + 2 > t.space then
    Pmem.Fault.fail "undo journal: transaction too large (%d bytes)" (String.length body);
  let count = String.make 1 (Char.chr (List.length spans)) in
  if bug16_count_before_records then begin
    (* Bug 16 (logic): the valid flag is published in the same epoch as the
       count and records instead of after them, so a crash can expose a
       committed-looking journal whose count describes stale record bytes.
       The recovery-side validation is disabled by the same switch, so the
       stale bytes are trusted and produce wild rollback writes. *)
    Pm.memcpy_nt pm ~off:(t.base + 1) count;
    Pm.memcpy_nt pm ~off:(t.base + 2) body;
    Pm.memcpy_nt pm ~off:t.base "\001";
    Pm.fence pm
  end
  else begin
    Pm.memcpy_nt pm ~off:(t.base + 1) count;
    Pm.memcpy_nt pm ~off:(t.base + 2) body;
    Pm.fence pm;
    Pm.memcpy_nt pm ~off:t.base "\001";
    Pm.fence pm
  end

let end_tx pm t =
  Pm.fence pm;
  Pm.memcpy_nt pm ~off:t.base "\000";
  Pm.fence pm

let recover ?(bug16_skip_validation = false) pm t ~device_size =
  if Pm.read_u8 pm ~off:t.base = 0 then Ok 0
  else begin
    let n = Pm.read_u8 pm ~off:(t.base + 1) in
    let rec roll pos k rolled =
      if k = 0 then Ok rolled
      else if (not bug16_skip_validation) && pos + 5 > t.space then
        Error "undo journal: truncated record"
      else begin
        let addr = Pm.read_u32 pm ~off:(t.base + pos) in
        let len = Pm.read_u8 pm ~off:(t.base + pos + 4) in
        if (not bug16_skip_validation) && (pos + 5 + len > t.space || addr + len > device_size)
        then Error "undo journal: record out of range"
        else begin
          (* An unvalidated wild address faults on the device model, exactly
             like the kernel OOB access the paper reports. *)
          let pre = Pm.read pm ~off:(t.base + pos + 5) ~len in
          Pm.memcpy_nt pm ~off:addr pre;
          roll (pos + 5 + len) (k - 1) (rolled + 1)
        end
      end
    in
    match roll 2 n 0 with
    | Error _ as e -> e
    | Ok rolled ->
      Pm.fence pm;
      Pm.memcpy_nt pm ~off:t.base "\000";
      Pm.fence pm;
      Ok rolled
  end

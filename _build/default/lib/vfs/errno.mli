(** POSIX error numbers returned by the simulated file systems.

    [EIO] is how a file system reports internally-detected corruption (e.g. a
    checksum mismatch in NOVA-Fortis); the Chipmunk checker treats an
    unexpected [EIO] as evidence of a crash-consistency bug. *)

type t =
  | ENOENT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | ENOTEMPTY
  | EINVAL
  | EBADF
  | ENOSPC
  | ENAMETOOLONG
  | EMLINK
  | EFBIG
  | EROFS
  | EIO
  | EPERM
  | EXDEV
  | ENOTSUP

val to_string : t -> string
val to_code : t -> int
(** Conventional Linux numeric value, used for syscall return encoding. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

type node = {
  path : string;
  kind : Types.file_kind option;
  size : int;
  nlink : int;
  content : string option;
  entries : string list option;
  xattrs : (string * string) list;  (* sorted; empty when unsupported *)
  error : string option;
}

type tree = node list

let capture (h : Handle.t) =
  let nodes = ref [] in
  let xattrs_of path =
    match h.Handle.listxattr ~path with
    | Error _ -> []
    | Ok names ->
      List.filter_map
        (fun name ->
          match h.Handle.getxattr ~path ~name with
          | Ok v -> Some (name, v)
          | Error _ -> None)
        names
  in
  let rec visit path =
    match h.Handle.stat ~path with
    | Error e ->
      nodes :=
        {
          path;
          kind = None;
          size = 0;
          nlink = 0;
          content = None;
          entries = None;
          xattrs = [];
          error = Some ("stat: " ^ Errno.to_string e);
        }
        :: !nodes
    | Ok st -> (
      match st.Types.st_kind with
      | Types.Reg ->
        let content, error =
          match h.Handle.read_file ~path with
          | Ok c -> (Some c, None)
          | Error e -> (None, Some ("read: " ^ Errno.to_string e))
        in
        nodes :=
          {
            path;
            kind = Some Types.Reg;
            size = st.Types.st_size;
            nlink = st.Types.st_nlink;
            content;
            entries = None;
            xattrs = xattrs_of path;
            error;
          }
          :: !nodes
      | Types.Dir -> (
        match h.Handle.readdir ~path with
        | Error e ->
          nodes :=
            {
              path;
              kind = Some Types.Dir;
              size = st.Types.st_size;
              nlink = st.Types.st_nlink;
              content = None;
              entries = None;
              xattrs = [];
              error = Some ("readdir: " ^ Errno.to_string e);
            }
            :: !nodes
        | Ok dirents ->
          let names = List.map (fun d -> d.Types.d_name) dirents in
          (* Directory sizes are a per-file-system convention; normalize to
             the entry count so trees from different systems compare. *)
          nodes :=
            {
              path;
              kind = Some Types.Dir;
              size = List.length names;
              nlink = st.Types.st_nlink;
              content = None;
              entries = Some names;
              xattrs = xattrs_of path;
              error = None;
            }
            :: !nodes;
          List.iter (fun name -> visit (Path.concat path name)) names))
  in
  visit "/";
  List.sort (fun a b -> String.compare a.path b.path) !nodes

let find tree path = List.find_opt (fun n -> n.path = path) tree

let equal_node a b =
  a.path = b.path && a.kind = b.kind && a.size = b.size && a.content = b.content
  && a.entries = b.entries && a.xattrs = b.xattrs && a.error = b.error
  && (a.kind <> Some Types.Reg || a.nlink = b.nlink)

let equal a b = List.length a = List.length b && List.for_all2 equal_node a b

let describe n =
  let kind = match n.kind with None -> "?" | Some k -> Types.kind_to_string k in
  let detail =
    match (n.error, n.content, n.entries) with
    | Some e, _, _ -> Printf.sprintf "error=%s" e
    | None, Some c, _ ->
      let preview = if String.length c > 32 then String.sub c 0 32 ^ "..." else c in
      Printf.sprintf "content=%S" preview
    | None, None, Some es -> Printf.sprintf "entries=[%s]" (String.concat "; " es)
    | None, None, None -> ""
  in
  let xa =
    if n.xattrs = [] then ""
    else
      Printf.sprintf " xattrs={%s}"
        (String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) n.xattrs))
  in
  Printf.sprintf "%s %s size=%d nlink=%d %s%s" kind n.path n.size n.nlink detail xa

let diff ~expected ~actual =
  let out = ref [] in
  let add fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  let rec go e a =
    match (e, a) with
    | [], [] -> ()
    | en :: e', [] ->
      add "missing: %s" (describe en);
      go e' []
    | [], an :: a' ->
      add "unexpected: %s" (describe an);
      go [] a'
    | en :: e', an :: a' ->
      let c = String.compare en.path an.path in
      if c < 0 then begin
        add "missing: %s" (describe en);
        go e' a
      end
      else if c > 0 then begin
        add "unexpected: %s" (describe an);
        go e a'
      end
      else begin
        if not (equal_node en an) then
          add "mismatch at %s: expected %s, got %s" en.path (describe en)
            (describe an);
        go e' a'
      end
  in
  go expected actual;
  List.rev !out

let has_errors tree =
  List.filter_map (fun n -> Option.map (fun e -> (n.path, e)) n.error) tree

let pp ppf tree =
  List.iter (fun n -> Format.fprintf ppf "%s@." (describe n)) tree

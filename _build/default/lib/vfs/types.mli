(** Shared types of the POSIX surface exposed by every file system. *)

type file_kind = Reg | Dir

type stat = {
  st_ino : int;
  st_kind : file_kind;
  st_size : int;
  st_nlink : int;
}
(** File attributes. Timestamps are deliberately absent: the Chipmunk paper
    notes its checker does not compare timestamps (section 6.2), and logical
    clocks would differ between oracle and target anyway. *)

type open_flag = O_RDONLY | O_WRONLY | O_RDWR | O_CREAT | O_EXCL | O_TRUNC | O_APPEND
type whence = SEEK_SET | SEEK_CUR | SEEK_END
type dirent = { d_ino : int; d_name : string }

val kind_to_string : file_kind -> string
val pp_stat : Format.formatter -> stat -> unit
val flag_to_string : open_flag -> string
val flags_to_string : open_flag list -> string
val writable : open_flag list -> bool
val readable : open_flag list -> bool

lib/vfs/path.ml: Errno List String

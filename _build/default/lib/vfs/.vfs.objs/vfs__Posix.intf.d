lib/vfs/posix.mli: Fs_intf Handle

lib/vfs/types.mli: Format

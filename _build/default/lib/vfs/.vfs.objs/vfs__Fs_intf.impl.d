lib/vfs/fs_intf.ml: Errno Types

lib/vfs/errno.ml: Format

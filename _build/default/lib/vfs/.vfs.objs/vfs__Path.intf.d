lib/vfs/path.mli: Errno

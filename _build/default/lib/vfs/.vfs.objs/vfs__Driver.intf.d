lib/vfs/driver.mli: Handle Persist

lib/vfs/driver.ml: Handle Persist

lib/vfs/handle.ml: Errno Types

lib/vfs/handle.mli: Errno Types

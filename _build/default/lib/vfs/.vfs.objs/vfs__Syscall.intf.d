lib/vfs/syscall.mli: Format Types

lib/vfs/posix.ml: Errno Fs_intf Handle Hashtbl List Path Result String Types

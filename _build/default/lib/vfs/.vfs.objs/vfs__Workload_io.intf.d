lib/vfs/workload_io.mli: Syscall

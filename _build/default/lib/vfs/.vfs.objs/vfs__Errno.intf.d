lib/vfs/errno.mli: Format

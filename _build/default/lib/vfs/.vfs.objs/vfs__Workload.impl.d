lib/vfs/workload.ml: Errno Fun Handle Hashtbl List Option String Syscall

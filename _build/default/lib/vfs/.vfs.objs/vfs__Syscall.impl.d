lib/vfs/syscall.ml: Char Format List Printf String Types

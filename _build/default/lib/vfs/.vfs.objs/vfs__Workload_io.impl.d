lib/vfs/workload_io.ml: List Printf Result String Syscall Types

lib/vfs/workload.mli: Errno Handle Syscall

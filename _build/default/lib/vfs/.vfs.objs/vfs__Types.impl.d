lib/vfs/types.ml: Format List String

lib/vfs/walker.mli: Format Handle Types

lib/vfs/walker.ml: Errno Format Handle List Option Path Printf String Types

(** Absolute-path handling shared by all file systems.

    Workloads use absolute paths only (as ACE does); "." and ".." components
    are resolved lexically during the walk by the {!Posix} layer. *)

val split : string -> (string list, Errno.t) result
(** [split "/a/b/c"] is [Ok ["a"; "b"; "c"]]. The path must start with '/';
    empty components are ignored; "." and ".." are resolved lexically; an
    empty or relative path is [Error ENOENT]. *)

val split_parent : string -> (string list * string, Errno.t) result
(** [split_parent "/a/b/c"] is [Ok (["a"; "b"], "c")]: the components of the
    parent directory and the final name. The root itself has no parent
    ([Error EINVAL]). *)

val basename : string -> string
val concat : string -> string -> string
(** [concat "/a" "b"] is ["/a/b"]. *)

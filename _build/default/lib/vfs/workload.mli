(** Executes a {!Syscall} program against a file-system {!Handle}.

    The executor owns the virtual-fd environment. The [before]/[after]
    callbacks bracket each call; the Chipmunk harness uses them to insert
    syscall markers into the write trace and to snapshot oracle state. *)

type outcome = {
  idx : int;
  call : Syscall.t;
  ret : int;  (** >= 0 on success, [- errno] on failure. *)
}

val run :
  ?before:(int -> Syscall.t -> unit) ->
  ?after:(int -> Syscall.t -> int -> unit) ->
  Handle.t ->
  Syscall.t list ->
  outcome list

val ret_of : ('a -> int) -> ('a, Errno.t) result -> int
(** Encode a syscall result as an integer return value. *)

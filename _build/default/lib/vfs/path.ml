(* "." and ".." are resolved lexically (there are no symlinks in any of the
   simulated file systems, so lexical and physical resolution coincide). *)
let split p =
  if String.length p = 0 || p.[0] <> '/' then Error Errno.ENOENT
  else
    let resolve acc c =
      match c with
      | "" | "." -> acc
      | ".." -> ( match acc with [] -> [] | _ :: parents -> parents)
      | _ -> c :: acc
    in
    Ok (List.rev (List.fold_left resolve [] (String.split_on_char '/' p)))

let split_parent p =
  match split p with
  | Error _ as e -> e
  | Ok [] -> Error Errno.EINVAL
  | Ok parts -> (
    match List.rev parts with
    | [] -> Error Errno.EINVAL
    | name :: rev_parents -> Ok (List.rev rev_parents, name))

let basename p =
  match split p with
  | Error _ | Ok [] -> "/"
  | Ok parts -> List.nth parts (List.length parts - 1)

let concat dir name = if dir = "/" then "/" ^ name else dir ^ "/" ^ name

type file_kind = Reg | Dir

type stat = {
  st_ino : int;
  st_kind : file_kind;
  st_size : int;
  st_nlink : int;
}

type open_flag = O_RDONLY | O_WRONLY | O_RDWR | O_CREAT | O_EXCL | O_TRUNC | O_APPEND
type whence = SEEK_SET | SEEK_CUR | SEEK_END
type dirent = { d_ino : int; d_name : string }

let kind_to_string = function Reg -> "reg" | Dir -> "dir"

let pp_stat ppf s =
  Format.fprintf ppf "{ino=%d kind=%s size=%d nlink=%d}" s.st_ino (kind_to_string s.st_kind)
    s.st_size s.st_nlink

let flag_to_string = function
  | O_RDONLY -> "O_RDONLY"
  | O_WRONLY -> "O_WRONLY"
  | O_RDWR -> "O_RDWR"
  | O_CREAT -> "O_CREAT"
  | O_EXCL -> "O_EXCL"
  | O_TRUNC -> "O_TRUNC"
  | O_APPEND -> "O_APPEND"

let flags_to_string flags = String.concat "|" (List.map flag_to_string flags)
let writable flags = List.exists (fun f -> f = O_WRONLY || f = O_RDWR) flags
let readable flags = not (List.mem O_WRONLY flags)

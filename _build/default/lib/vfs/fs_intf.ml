(** The inode-level interface each file system implements.

    The {!Posix} functor builds the full POSIX syscall surface on top of
    this, mirroring how the Linux VFS dispatches to per-file-system inode
    operations. The Posix layer performs all argument validation (name
    validity, existence, kind compatibility, directory emptiness), so
    implementations may assume:

    - [dir] arguments are inodes of existing directories;
    - [name] arguments are valid names (nonempty, no '/', not "." or "..",
      within [name_max]) that exist for removal operations and do not exist
      for creation operations;
    - [rename] targets, when they exist, are kind-compatible and (for
      directories) empty — the implementation must replace them atomically;
    - offsets, sizes and lengths are non-negative.

    Implementations are responsible for crash consistency: this is where the
    journaling, logging and in-place-update machinery under test lives. *)

module type INODE_OPS = sig
  type t

  val name : string
  val name_max : int
  val root_ino : int

  (** {1 Namespace} *)

  val lookup : t -> dir:int -> name:string -> (int, Errno.t) result
  val getattr : t -> ino:int -> (Types.stat, Errno.t) result
  val mkdir : t -> dir:int -> name:string -> (int, Errno.t) result
  val create : t -> dir:int -> name:string -> (int, Errno.t) result
  val link : t -> ino:int -> dir:int -> name:string -> (unit, Errno.t) result
  val unlink : t -> dir:int -> name:string -> (unit, Errno.t) result
  val rmdir : t -> dir:int -> name:string -> (unit, Errno.t) result

  val rename :
    t -> odir:int -> oname:string -> ndir:int -> nname:string -> (unit, Errno.t) result

  val readdir : t -> dir:int -> (Types.dirent list, Errno.t) result
  (** Entries excluding "." and "..", in any order. *)

  (** {1 Data} *)

  val read : t -> ino:int -> off:int -> len:int -> (string, Errno.t) result
  (** Read exactly [len] bytes; the caller clamps [len] to EOF. *)

  val write : t -> ino:int -> off:int -> data:string -> (int, Errno.t) result
  (** Returns the number of bytes written. Writing past EOF zero-fills any
      hole. *)

  val truncate : t -> ino:int -> size:int -> (unit, Errno.t) result
  val fallocate : t -> ino:int -> off:int -> len:int -> keep_size:bool -> (unit, Errno.t) result

  (** {1 Extended attributes}

      Only the DAX family supports these (as in the paper's methodology,
      section 4.1); other implementations return [ENOTSUP]. *)

  val setxattr : t -> ino:int -> name:string -> value:string -> (unit, Errno.t) result
  val getxattr : t -> ino:int -> name:string -> (string, Errno.t) result
  val listxattr : t -> ino:int -> (string list, Errno.t) result
  val removexattr : t -> ino:int -> name:string -> (unit, Errno.t) result

  (** {1 Durability} *)

  val fsync : t -> ino:int -> (unit, Errno.t) result
  val sync : t -> unit

  (** {1 Open-file references}

      The Posix layer takes a reference on every successful open and drops
      it on close. A file whose last link is removed while references remain
      is an orphan: it must stay accessible through its descriptors and be
      reclaimed on the last [iput] (or by crash recovery — reference counts
      are volatile state). *)

  val iget : t -> ino:int -> unit
  val iput : t -> ino:int -> unit
end

(** A first-class, uniform POSIX surface over any mounted file system.

    The Chipmunk harness, the oracle tracker, the workload executor and the
    consistency checker all drive file systems exclusively through this
    record, so a single test pipeline works for every system under test —
    kernel-style or user-space-style alike. *)

type t = {
  name : string;
  creat : path:string -> (int, Errno.t) result;
      (** [open] with [O_WRONLY|O_CREAT|O_TRUNC]; returns an fd. *)
  open_ : path:string -> flags:Types.open_flag list -> (int, Errno.t) result;
  close : fd:int -> (unit, Errno.t) result;
  mkdir : path:string -> (unit, Errno.t) result;
  rmdir : path:string -> (unit, Errno.t) result;
  link : src:string -> dst:string -> (unit, Errno.t) result;
  unlink : path:string -> (unit, Errno.t) result;
  remove : path:string -> (unit, Errno.t) result;
  rename : src:string -> dst:string -> (unit, Errno.t) result;
  truncate : path:string -> size:int -> (unit, Errno.t) result;
  write : fd:int -> data:string -> (int, Errno.t) result;
  pwrite : fd:int -> off:int -> data:string -> (int, Errno.t) result;
  read : fd:int -> len:int -> (string, Errno.t) result;
  pread : fd:int -> off:int -> len:int -> (string, Errno.t) result;
  lseek : fd:int -> off:int -> whence:Types.whence -> (int, Errno.t) result;
  fallocate : fd:int -> off:int -> len:int -> keep_size:bool -> (unit, Errno.t) result;
  fsync : fd:int -> (unit, Errno.t) result;
  fdatasync : fd:int -> (unit, Errno.t) result;
  sync : unit -> unit;
  stat : path:string -> (Types.stat, Errno.t) result;
  fstat : fd:int -> (Types.stat, Errno.t) result;
  readdir : path:string -> (Types.dirent list, Errno.t) result;
      (** Entries excluding "." and "..", sorted by name. *)
  read_file : path:string -> (string, Errno.t) result;
      (** Whole-file read without consuming an fd (checker convenience). *)
  setxattr : path:string -> name:string -> value:string -> (unit, Errno.t) result;
  getxattr : path:string -> name:string -> (string, Errno.t) result;
  listxattr : path:string -> (string list, Errno.t) result;
      (** Attribute names, sorted. [ENOTSUP] on file systems without xattr
          support (everything except the DAX family). *)
  removexattr : path:string -> name:string -> (unit, Errno.t) result;
}

type outcome = { idx : int; call : Syscall.t; ret : int }

let ret_of f = function Ok v -> f v | Error e -> -Errno.to_code e

let run ?(before = fun _ _ -> ()) ?(after = fun _ _ _ -> ()) (h : Handle.t) calls =
  let vars : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let fd_of var = Option.value (Hashtbl.find_opt vars var) ~default:(-1) in
  let exec call =
    match call with
    | Syscall.Creat { path; fd_var } ->
      let r = h.Handle.creat ~path in
      (match r with Ok fd -> Hashtbl.replace vars fd_var fd | Error _ -> ());
      ret_of Fun.id r
    | Syscall.Open { path; flags; fd_var } ->
      let r = h.Handle.open_ ~path ~flags in
      (match r with Ok fd -> Hashtbl.replace vars fd_var fd | Error _ -> ());
      ret_of Fun.id r
    | Syscall.Close { fd_var } ->
      let r = h.Handle.close ~fd:(fd_of fd_var) in
      (match r with Ok () -> Hashtbl.remove vars fd_var | Error _ -> ());
      ret_of (fun () -> 0) r
    | Syscall.Mkdir { path } -> ret_of (fun () -> 0) (h.Handle.mkdir ~path)
    | Syscall.Write { fd_var; data } ->
      ret_of Fun.id (h.Handle.write ~fd:(fd_of fd_var) ~data:(Syscall.bytes data))
    | Syscall.Pwrite { fd_var; off; data } ->
      ret_of Fun.id (h.Handle.pwrite ~fd:(fd_of fd_var) ~off ~data:(Syscall.bytes data))
    | Syscall.Read { fd_var; len } ->
      ret_of String.length (h.Handle.read ~fd:(fd_of fd_var) ~len)
    | Syscall.Lseek { fd_var; off; whence } ->
      ret_of Fun.id (h.Handle.lseek ~fd:(fd_of fd_var) ~off ~whence)
    | Syscall.Link { src; dst } -> ret_of (fun () -> 0) (h.Handle.link ~src ~dst)
    | Syscall.Unlink { path } -> ret_of (fun () -> 0) (h.Handle.unlink ~path)
    | Syscall.Remove { path } -> ret_of (fun () -> 0) (h.Handle.remove ~path)
    | Syscall.Rename { src; dst } -> ret_of (fun () -> 0) (h.Handle.rename ~src ~dst)
    | Syscall.Truncate { path; size } -> ret_of (fun () -> 0) (h.Handle.truncate ~path ~size)
    | Syscall.Fallocate { fd_var; off; len; keep_size } ->
      ret_of (fun () -> 0) (h.Handle.fallocate ~fd:(fd_of fd_var) ~off ~len ~keep_size)
    | Syscall.Rmdir { path } -> ret_of (fun () -> 0) (h.Handle.rmdir ~path)
    | Syscall.Fsync { fd_var } -> ret_of (fun () -> 0) (h.Handle.fsync ~fd:(fd_of fd_var))
    | Syscall.Fdatasync { fd_var } ->
      ret_of (fun () -> 0) (h.Handle.fdatasync ~fd:(fd_of fd_var))
    | Syscall.Sync ->
      h.Handle.sync ();
      0
    | Syscall.Setxattr { path; name; value } ->
      ret_of (fun () -> 0) (h.Handle.setxattr ~path ~name ~value)
    | Syscall.Removexattr { path; name } ->
      ret_of (fun () -> 0) (h.Handle.removexattr ~path ~name)
  in
  List.mapi
    (fun idx call ->
      before idx call;
      let ret = exec call in
      after idx call ret;
      { idx; call; ret })
    calls

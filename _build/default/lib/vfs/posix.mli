(** The POSIX syscall layer, built over any {!Fs_intf.INODE_OPS}
    implementation — the analogue of the Linux VFS.

    This layer owns path resolution, the file-descriptor table and all
    argument validation; the underlying file system only sees validated
    inode-level operations (see the contract in {!Fs_intf}). *)

module Make (Ops : Fs_intf.INODE_OPS) : sig
  type t

  val init : Ops.t -> t
  (** A fresh syscall layer (empty fd table) over a mounted file system. *)

  val fs : t -> Ops.t
  val handle : t -> Handle.t
  (** The uniform driver-facing surface. *)
end

module S = Syscall

let flag_of_string = function
  | "O_RDONLY" -> Some Types.O_RDONLY
  | "O_WRONLY" -> Some Types.O_WRONLY
  | "O_RDWR" -> Some Types.O_RDWR
  | "O_CREAT" -> Some Types.O_CREAT
  | "O_EXCL" -> Some Types.O_EXCL
  | "O_TRUNC" -> Some Types.O_TRUNC
  | "O_APPEND" -> Some Types.O_APPEND
  | _ -> None

let whence_of_string = function
  | "SEEK_SET" -> Some Types.SEEK_SET
  | "SEEK_CUR" -> Some Types.SEEK_CUR
  | "SEEK_END" -> Some Types.SEEK_END
  | _ -> None

let whence_to_string = function
  | Types.SEEK_SET -> "SEEK_SET"
  | Types.SEEK_CUR -> "SEEK_CUR"
  | Types.SEEK_END -> "SEEK_END"

let line_of_call = function
  | S.Creat { path; fd_var } -> Printf.sprintf "creat %s %d" path fd_var
  | S.Mkdir { path } -> Printf.sprintf "mkdir %s" path
  | S.Open { path; flags; fd_var } ->
    Printf.sprintf "open %s %s %d" path (Types.flags_to_string flags) fd_var
  | S.Close { fd_var } -> Printf.sprintf "close %d" fd_var
  | S.Write { fd_var; data } -> Printf.sprintf "write %d seed=%d len=%d" fd_var data.seed data.len
  | S.Pwrite { fd_var; off; data } ->
    Printf.sprintf "pwrite %d off=%d seed=%d len=%d" fd_var off data.seed data.len
  | S.Read { fd_var; len } -> Printf.sprintf "read %d len=%d" fd_var len
  | S.Lseek { fd_var; off; whence } ->
    Printf.sprintf "lseek %d off=%d %s" fd_var off (whence_to_string whence)
  | S.Link { src; dst } -> Printf.sprintf "link %s %s" src dst
  | S.Unlink { path } -> Printf.sprintf "unlink %s" path
  | S.Remove { path } -> Printf.sprintf "remove %s" path
  | S.Rename { src; dst } -> Printf.sprintf "rename %s %s" src dst
  | S.Truncate { path; size } -> Printf.sprintf "truncate %s size=%d" path size
  | S.Fallocate { fd_var; off; len; keep_size } ->
    Printf.sprintf "fallocate %d off=%d len=%d keep=%b" fd_var off len keep_size
  | S.Rmdir { path } -> Printf.sprintf "rmdir %s" path
  | S.Fsync { fd_var } -> Printf.sprintf "fsync %d" fd_var
  | S.Fdatasync { fd_var } -> Printf.sprintf "fdatasync %d" fd_var
  | S.Sync -> "sync"
  | S.Setxattr { path; name; value } -> Printf.sprintf "setxattr %s %s %s" path name value
  | S.Removexattr { path; name } -> Printf.sprintf "removexattr %s %s" path name

let to_string calls =
  "# chipmunk workload\n" ^ String.concat "\n" (List.map line_of_call calls) ^ "\n"

let ( let* ) = Result.bind

let int_field ~key s =
  let prefix = key ^ "=" in
  if String.length s > String.length prefix
     && String.sub s 0 (String.length prefix) = prefix
  then
    match int_of_string_opt (String.sub s (String.length prefix)
                               (String.length s - String.length prefix)) with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "bad integer in %S" s)
  else Error (Printf.sprintf "expected %s=<int>, got %S" key s)

let bool_field ~key s =
  let prefix = key ^ "=" in
  if String.length s > String.length prefix && String.sub s 0 (String.length prefix) = prefix
  then
    match String.sub s (String.length prefix) (String.length s - String.length prefix) with
    | "true" -> Ok true
    | "false" -> Ok false
    | other -> Error (Printf.sprintf "bad boolean %S" other)
  else Error (Printf.sprintf "expected %s=<bool>, got %S" key s)

let int s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad integer %S" s)

let parse_line line =
  let parts = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
  match parts with
  | [ "creat"; path; fd ] ->
    let* fd_var = int fd in
    Ok (S.Creat { path; fd_var })
  | [ "mkdir"; path ] -> Ok (S.Mkdir { path })
  | [ "open"; path; flags; fd ] ->
    let* fd_var = int fd in
    let* flags =
      List.fold_left
        (fun acc name ->
          let* acc = acc in
          match flag_of_string name with
          | Some f -> Ok (f :: acc)
          | None -> Error (Printf.sprintf "unknown open flag %S" name))
        (Ok [])
        (String.split_on_char '|' flags)
    in
    Ok (S.Open { path; flags = List.rev flags; fd_var })
  | [ "close"; fd ] ->
    let* fd_var = int fd in
    Ok (S.Close { fd_var })
  | [ "write"; fd; seed; len ] ->
    let* fd_var = int fd in
    let* seed = int_field ~key:"seed" seed in
    let* len = int_field ~key:"len" len in
    Ok (S.Write { fd_var; data = { seed; len } })
  | [ "pwrite"; fd; off; seed; len ] ->
    let* fd_var = int fd in
    let* off = int_field ~key:"off" off in
    let* seed = int_field ~key:"seed" seed in
    let* len = int_field ~key:"len" len in
    Ok (S.Pwrite { fd_var; off; data = { seed; len } })
  | [ "read"; fd; len ] ->
    let* fd_var = int fd in
    let* len = int_field ~key:"len" len in
    Ok (S.Read { fd_var; len })
  | [ "lseek"; fd; off; whence ] ->
    let* fd_var = int fd in
    let* off = int_field ~key:"off" off in
    (match whence_of_string whence with
    | Some whence -> Ok (S.Lseek { fd_var; off; whence })
    | None -> Error (Printf.sprintf "unknown whence %S" whence))
  | [ "link"; src; dst ] -> Ok (S.Link { src; dst })
  | [ "unlink"; path ] -> Ok (S.Unlink { path })
  | [ "remove"; path ] -> Ok (S.Remove { path })
  | [ "rename"; src; dst ] -> Ok (S.Rename { src; dst })
  | [ "truncate"; path; size ] ->
    let* size = int_field ~key:"size" size in
    Ok (S.Truncate { path; size })
  | [ "fallocate"; fd; off; len; keep ] ->
    let* fd_var = int fd in
    let* off = int_field ~key:"off" off in
    let* len = int_field ~key:"len" len in
    let* keep_size = bool_field ~key:"keep" keep in
    Ok (S.Fallocate { fd_var; off; len; keep_size })
  | [ "rmdir"; path ] -> Ok (S.Rmdir { path })
  | [ "fsync"; fd ] ->
    let* fd_var = int fd in
    Ok (S.Fsync { fd_var })
  | [ "fdatasync"; fd ] ->
    let* fd_var = int fd in
    Ok (S.Fdatasync { fd_var })
  | [ "sync" ] -> Ok S.Sync
  | [ "setxattr"; path; name; value ] -> Ok (S.Setxattr { path; name; value })
  | [ "removexattr"; path; name ] -> Ok (S.Removexattr { path; name })
  | verb :: _ -> Error (Printf.sprintf "unknown syscall %S" verb)
  | [] -> Error "empty line"

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go acc (lineno + 1) rest
      else (
        match parse_line trimmed with
        | Ok call -> go (call :: acc) (lineno + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go [] 1 lines

let save ~path calls =
  let oc = open_out path in
  output_string oc (to_string calls);
  close_out oc

let load ~path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    of_string text

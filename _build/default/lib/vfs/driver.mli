(** A file system as the Chipmunk harness sees it: how to create a fresh
    instance on a PM device, how to mount (i.e. recover) from an arbitrary
    device image, and which crash-consistency contract it advertises.

    The contract determines where crash points are placed (paper section
    3.3): [Strong] systems are checked during and after every system call;
    [Weak] systems ([ext4-DAX]-style) are only checked at fsync-family
    boundaries. *)

type consistency =
  | Strong  (** Every operation is synchronous and (data ops aside) atomic. *)
  | Weak  (** Guarantees only after fsync/fdatasync/sync. *)

type t = {
  name : string;
  consistency : consistency;
  atomic_data : bool;
      (** Whether [write]/[pwrite] are guaranteed atomic with respect to
          crashes (e.g. WineFS strict mode). *)
  device_size : int;  (** Bytes of PM the file system expects. *)
  mkfs : Persist.Pm.t -> Handle.t;
      (** Format the device and return a mounted handle. Must leave the
          device fully persisted (all writes fenced). *)
  mount : Persist.Pm.t -> (Handle.t, string) result;
      (** Mount an existing image, running crash recovery. [Error] means the
          image was rejected — for a crash state produced by the replayer
          this is an "unmountable file system" finding. Implementations must
          not raise; hardware faults escaping recovery are caught by the
          checker and also reported. *)
}

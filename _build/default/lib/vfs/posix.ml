let ( let* ) = Result.bind

module Make (Ops : Fs_intf.INODE_OPS) = struct
  type fd_state = { ino : int; flags : Types.open_flag list; mutable offset : int }

  type t = {
    fs : Ops.t;
    fds : (int, fd_state) Hashtbl.t;
    mutable next_fd : int;
  }

  let init fs = { fs; fds = Hashtbl.create 16; next_fd = 3 }
  let fs t = t.fs

  let fd_state t fd =
    match Hashtbl.find_opt t.fds fd with
    | Some st -> Ok st
    | None -> Error Errno.EBADF

  let validate_name name =
    if String.length name > Ops.name_max then Error Errno.ENAMETOOLONG
    else if name = "" || name = "." || name = ".." || String.contains name '/' then
      Error Errno.EINVAL
    else Ok ()

  let walk t parts =
    let rec go ino = function
      | [] -> Ok ino
      | name :: rest ->
        let* next = Ops.lookup t.fs ~dir:ino ~name in
        go next rest
    in
    go Ops.root_ino parts

  let resolve t path =
    let* parts = Path.split path in
    walk t parts

  (* Resolve the parent directory of [path] and return it with the final
     name. The parent must exist and be a directory (lookup enforces the
     directory part). *)
  let resolve_parent t path =
    let* parents, name = Path.split_parent path in
    let* dir = walk t parents in
    let* st = Ops.getattr t.fs ~ino:dir in
    if st.Types.st_kind <> Types.Dir then Error Errno.ENOTDIR else Ok (dir, name)

  let kind_of t ino =
    let* st = Ops.getattr t.fs ~ino in
    Ok st.Types.st_kind

  let alloc_fd t ino flags =
    let fd = t.next_fd in
    t.next_fd <- fd + 1;
    Hashtbl.replace t.fds fd { ino; flags; offset = 0 };
    Ops.iget t.fs ~ino;
    Ok fd

  (* Syscalls *)

  let open_ t ~path ~flags =
    let creating = List.mem Types.O_CREAT flags in
    let* dir, name =
      if creating then resolve_parent t path
      else
        (* Only used for error propagation symmetry; non-creating opens
           resolve the full path below. *)
        match Path.split_parent path with
        | Ok (parents, name) ->
          let* dir = walk t parents in
          Ok (dir, name)
        | Error _ ->
          (* Opening "/" itself. *)
          Ok (Ops.root_ino, "")
    in
    let existing =
      if name = "" then Ok (Some Ops.root_ino)
      else
        match Ops.lookup t.fs ~dir ~name with
        | Ok ino -> Ok (Some ino)
        | Error Errno.ENOENT -> Ok None
        | Error e -> Error e
    in
    let* existing = existing in
    match existing with
    | Some ino ->
      if creating && List.mem Types.O_EXCL flags then Error Errno.EEXIST
      else
        let* kind = kind_of t ino in
        if kind = Types.Dir && Types.writable flags then Error Errno.EISDIR
        else
          let* () =
            if List.mem Types.O_TRUNC flags && kind = Types.Reg && Types.writable flags then
              Ops.truncate t.fs ~ino ~size:0
            else Ok ()
          in
          alloc_fd t ino flags
    | None ->
      if not creating then Error Errno.ENOENT
      else
        let* () = validate_name name in
        let* ino = Ops.create t.fs ~dir ~name in
        alloc_fd t ino flags

  let creat t ~path = open_ t ~path ~flags:[ Types.O_WRONLY; Types.O_CREAT; Types.O_TRUNC ]

  let close t ~fd =
    let* st = fd_state t fd in
    Hashtbl.remove t.fds fd;
    Ops.iput t.fs ~ino:st.ino;
    Ok ()

  let mkdir t ~path =
    let* dir, name = resolve_parent t path in
    let* () = validate_name name in
    match Ops.lookup t.fs ~dir ~name with
    | Ok _ -> Error Errno.EEXIST
    | Error Errno.ENOENT ->
      let* _ino = Ops.mkdir t.fs ~dir ~name in
      Ok ()
    | Error e -> Error e

  let rmdir t ~path =
    let* parts = Path.split path in
    if parts = [] then Error Errno.EINVAL
    else
      let* dir, name = resolve_parent t path in
      let* ino = Ops.lookup t.fs ~dir ~name in
      let* kind = kind_of t ino in
      if kind <> Types.Dir then Error Errno.ENOTDIR
      else
        let* entries = Ops.readdir t.fs ~dir:ino in
        if entries <> [] then Error Errno.ENOTEMPTY else Ops.rmdir t.fs ~dir ~name

  let link t ~src ~dst =
    let* ino = resolve t src in
    let* kind = kind_of t ino in
    if kind = Types.Dir then Error Errno.EPERM
    else
      let* dir, name = resolve_parent t dst in
      let* () = validate_name name in
      match Ops.lookup t.fs ~dir ~name with
      | Ok _ -> Error Errno.EEXIST
      | Error Errno.ENOENT -> Ops.link t.fs ~ino ~dir ~name
      | Error e -> Error e

  let unlink t ~path =
    let* dir, name = resolve_parent t path in
    let* ino = Ops.lookup t.fs ~dir ~name in
    let* kind = kind_of t ino in
    if kind = Types.Dir then Error Errno.EISDIR else Ops.unlink t.fs ~dir ~name

  let rename t ~src ~dst =
    let* sparts = Path.split src in
    let* dparts = Path.split dst in
    let is_prefix p q =
      let rec go p q =
        match (p, q) with
        | [], _ -> true
        | _, [] -> false
        | a :: p', b :: q' -> a = b && go p' q'
      in
      go p q
    in
    if sparts = [] || dparts = [] then Error Errno.EINVAL
    else if sparts = dparts then Ok () (* rename to self is a no-op *)
    else if is_prefix sparts dparts then Error Errno.EINVAL
    else
      let* odir, oname = resolve_parent t src in
      let* sino = Ops.lookup t.fs ~dir:odir ~name:oname in
      let* skind = kind_of t sino in
      let* ndir, nname = resolve_parent t dst in
      let* () = validate_name nname in
      let* target =
        match Ops.lookup t.fs ~dir:ndir ~name:nname with
        | Error Errno.ENOENT -> Ok None
        | Error e -> Error e
        | Ok dino -> Ok (Some dino)
      in
      match target with
      | Some dino when dino = sino ->
        (* Renaming onto another hard link of the same inode is a no-op. *)
        Ok ()
      | Some dino ->
        let* dkind = kind_of t dino in
        let* () =
          match (skind, dkind) with
          | Types.Dir, Types.Reg -> Error Errno.ENOTDIR
          | Types.Reg, Types.Dir -> Error Errno.EISDIR
          | Types.Dir, Types.Dir ->
            let* entries = Ops.readdir t.fs ~dir:dino in
            if entries <> [] then Error Errno.ENOTEMPTY else Ok ()
          | Types.Reg, Types.Reg -> Ok ()
        in
        Ops.rename t.fs ~odir ~oname ~ndir ~nname
      | None -> Ops.rename t.fs ~odir ~oname ~ndir ~nname

  let truncate t ~path ~size =
    if size < 0 then Error Errno.EINVAL
    else
      let* ino = resolve t path in
      let* kind = kind_of t ino in
      if kind <> Types.Reg then Error Errno.EISDIR else Ops.truncate t.fs ~ino ~size

  let write_at t st ~off ~data =
    if not (Types.writable st.flags) then Error Errno.EBADF
    else Ops.write t.fs ~ino:st.ino ~off ~data

  let write t ~fd ~data =
    let* st = fd_state t fd in
    let* off =
      if List.mem Types.O_APPEND st.flags then
        let* attr = Ops.getattr t.fs ~ino:st.ino in
        Ok attr.Types.st_size
      else Ok st.offset
    in
    let* n = write_at t st ~off ~data in
    st.offset <- off + n;
    Ok n

  let pwrite t ~fd ~off ~data =
    if off < 0 then Error Errno.EINVAL
    else
      let* st = fd_state t fd in
      write_at t st ~off ~data

  let read_at t st ~off ~len =
    if not (Types.readable st.flags) then Error Errno.EBADF
    else
      let* attr = Ops.getattr t.fs ~ino:st.ino in
      if attr.Types.st_kind <> Types.Reg then Error Errno.EISDIR
      else
        let len = max 0 (min len (attr.Types.st_size - off)) in
        if len = 0 then Ok "" else Ops.read t.fs ~ino:st.ino ~off ~len

  let read t ~fd ~len =
    let* st = fd_state t fd in
    let* data = read_at t st ~off:st.offset ~len in
    st.offset <- st.offset + String.length data;
    Ok data

  let pread t ~fd ~off ~len =
    if off < 0 then Error Errno.EINVAL
    else
      let* st = fd_state t fd in
      read_at t st ~off ~len

  let lseek t ~fd ~off ~whence =
    let* st = fd_state t fd in
    let* base =
      match whence with
      | Types.SEEK_SET -> Ok 0
      | Types.SEEK_CUR -> Ok st.offset
      | Types.SEEK_END ->
        let* attr = Ops.getattr t.fs ~ino:st.ino in
        Ok attr.Types.st_size
    in
    let pos = base + off in
    if pos < 0 then Error Errno.EINVAL
    else begin
      st.offset <- pos;
      Ok pos
    end

  let fallocate t ~fd ~off ~len ~keep_size =
    if off < 0 || len <= 0 then Error Errno.EINVAL
    else
      let* st = fd_state t fd in
      if not (Types.writable st.flags) then Error Errno.EBADF
      else Ops.fallocate t.fs ~ino:st.ino ~off ~len ~keep_size

  let fsync t ~fd =
    let* st = fd_state t fd in
    Ops.fsync t.fs ~ino:st.ino

  let stat t ~path =
    let* ino = resolve t path in
    Ops.getattr t.fs ~ino

  let fstat t ~fd =
    let* st = fd_state t fd in
    Ops.getattr t.fs ~ino:st.ino

  let readdir t ~path =
    let* ino = resolve t path in
    let* kind = kind_of t ino in
    if kind <> Types.Dir then Error Errno.ENOTDIR
    else
      let* entries = Ops.readdir t.fs ~dir:ino in
      Ok (List.sort (fun a b -> String.compare a.Types.d_name b.Types.d_name) entries)

  let read_file t ~path =
    let* ino = resolve t path in
    let* attr = Ops.getattr t.fs ~ino in
    if attr.Types.st_kind <> Types.Reg then Error Errno.EISDIR
    else if attr.Types.st_size = 0 then Ok ""
    else Ops.read t.fs ~ino ~off:0 ~len:attr.Types.st_size

  let setxattr t ~path ~name ~value =
    let* ino = resolve t path in
    let* () = validate_name name in
    Ops.setxattr t.fs ~ino ~name ~value

  let getxattr t ~path ~name =
    let* ino = resolve t path in
    Ops.getxattr t.fs ~ino ~name

  let listxattr t ~path =
    let* ino = resolve t path in
    let* names = Ops.listxattr t.fs ~ino in
    Ok (List.sort String.compare names)

  let removexattr t ~path ~name =
    let* ino = resolve t path in
    Ops.removexattr t.fs ~ino ~name

  let remove t ~path =
    let* ino = resolve t path in
    let* kind = kind_of t ino in
    match kind with Types.Dir -> rmdir t ~path | Types.Reg -> unlink t ~path

  let handle t =
    {
      Handle.name = Ops.name;
      creat = (fun ~path -> creat t ~path);
      open_ = (fun ~path ~flags -> open_ t ~path ~flags);
      close = (fun ~fd -> close t ~fd);
      mkdir = (fun ~path -> mkdir t ~path);
      rmdir = (fun ~path -> rmdir t ~path);
      link = (fun ~src ~dst -> link t ~src ~dst);
      unlink = (fun ~path -> unlink t ~path);
      remove = (fun ~path -> remove t ~path);
      rename = (fun ~src ~dst -> rename t ~src ~dst);
      truncate = (fun ~path ~size -> truncate t ~path ~size);
      write = (fun ~fd ~data -> write t ~fd ~data);
      pwrite = (fun ~fd ~off ~data -> pwrite t ~fd ~off ~data);
      read = (fun ~fd ~len -> read t ~fd ~len);
      pread = (fun ~fd ~off ~len -> pread t ~fd ~off ~len);
      lseek = (fun ~fd ~off ~whence -> lseek t ~fd ~off ~whence);
      fallocate = (fun ~fd ~off ~len ~keep_size -> fallocate t ~fd ~off ~len ~keep_size);
      fsync = (fun ~fd -> fsync t ~fd);
      fdatasync = (fun ~fd -> fsync t ~fd);
      sync = (fun () -> Ops.sync t.fs);
      stat = (fun ~path -> stat t ~path);
      fstat = (fun ~fd -> fstat t ~fd);
      readdir = (fun ~path -> readdir t ~path);
      read_file = (fun ~path -> read_file t ~path);
      setxattr = (fun ~path ~name ~value -> setxattr t ~path ~name ~value);
      getxattr = (fun ~path ~name -> getxattr t ~path ~name);
      listxattr = (fun ~path -> listxattr t ~path);
      removexattr = (fun ~path ~name -> removexattr t ~path ~name);
    }
end

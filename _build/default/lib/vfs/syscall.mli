(** Workload representation: a program of file-system operations.

    Both the ACE generator and the fuzzer produce values of this type; the
    {!Workload} executor runs them against any {!Handle.t}, so the same
    program drives the file system under test and the oracle.

    File descriptors are virtual registers ([fd_var]); the executor maps
    them to real descriptors at run time, which lets the fuzzer construct
    programs with several descriptors open on the same file (the pattern
    behind bugs that ACE cannot express, paper section 4.3). *)

type data = { seed : int; len : int }
(** Deterministic write payload: [bytes] expands it to the same string in
    every run, so oracle and target receive identical contents. *)

val bytes : data -> string

type t =
  | Creat of { path : string; fd_var : int }
  | Mkdir of { path : string }
  | Open of { path : string; flags : Types.open_flag list; fd_var : int }
  | Close of { fd_var : int }
  | Write of { fd_var : int; data : data }
  | Pwrite of { fd_var : int; off : int; data : data }
  | Read of { fd_var : int; len : int }
  | Lseek of { fd_var : int; off : int; whence : Types.whence }
  | Link of { src : string; dst : string }
  | Unlink of { path : string }
  | Remove of { path : string }
  | Rename of { src : string; dst : string }
  | Truncate of { path : string; size : int }
  | Fallocate of { fd_var : int; off : int; len : int; keep_size : bool }
  | Rmdir of { path : string }
  | Fsync of { fd_var : int }
  | Fdatasync of { fd_var : int }
  | Sync
  | Setxattr of { path : string; name : string; value : string }
  | Removexattr of { path : string; name : string }

val to_string : t -> string
(** Stable, single-line rendering; used for syscall markers, bug reports and
    fuzzer triage. *)

val is_data_op : t -> bool
(** Whether the call mutates file data ([write]/[pwrite]/[fallocate]) rather
    than metadata only — data ops get the relaxed mid-crash atomicity check
    unless the file system promises atomic data writes. *)

val is_fsync_family : t -> bool
val mutates : t -> bool
(** Whether the call can modify the file system at all. *)

val pp : Format.formatter -> t -> unit

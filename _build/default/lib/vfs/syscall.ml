type data = { seed : int; len : int }

(* xorshift-based deterministic payload; printable so hexdumps and diffs in
   bug reports stay readable. *)
let bytes { seed; len } =
  let state = ref (if seed = 0 then 0x9E3779B9 else seed) in
  String.init len (fun _ ->
      let x = !state in
      let x = x lxor (x lsl 13) in
      let x = x lxor (x lsr 7) in
      let x = x lxor (x lsl 17) in
      state := x land max_int;
      Char.chr (Char.code 'a' + abs x mod 26))

type t =
  | Creat of { path : string; fd_var : int }
  | Mkdir of { path : string }
  | Open of { path : string; flags : Types.open_flag list; fd_var : int }
  | Close of { fd_var : int }
  | Write of { fd_var : int; data : data }
  | Pwrite of { fd_var : int; off : int; data : data }
  | Read of { fd_var : int; len : int }
  | Lseek of { fd_var : int; off : int; whence : Types.whence }
  | Link of { src : string; dst : string }
  | Unlink of { path : string }
  | Remove of { path : string }
  | Rename of { src : string; dst : string }
  | Truncate of { path : string; size : int }
  | Fallocate of { fd_var : int; off : int; len : int; keep_size : bool }
  | Rmdir of { path : string }
  | Fsync of { fd_var : int }
  | Fdatasync of { fd_var : int }
  | Sync
  | Setxattr of { path : string; name : string; value : string }
  | Removexattr of { path : string; name : string }

let whence_to_string = function
  | Types.SEEK_SET -> "SEEK_SET"
  | Types.SEEK_CUR -> "SEEK_CUR"
  | Types.SEEK_END -> "SEEK_END"

let to_string = function
  | Creat { path; fd_var } -> Printf.sprintf "creat %s -> $%d" path fd_var
  | Mkdir { path } -> Printf.sprintf "mkdir %s" path
  | Open { path; flags; fd_var } ->
    Printf.sprintf "open %s %s -> $%d" path (Types.flags_to_string flags) fd_var
  | Close { fd_var } -> Printf.sprintf "close $%d" fd_var
  | Write { fd_var; data } -> Printf.sprintf "write $%d len=%d seed=%d" fd_var data.len data.seed
  | Pwrite { fd_var; off; data } ->
    Printf.sprintf "pwrite $%d off=%d len=%d seed=%d" fd_var off data.len data.seed
  | Read { fd_var; len } -> Printf.sprintf "read $%d len=%d" fd_var len
  | Lseek { fd_var; off; whence } ->
    Printf.sprintf "lseek $%d off=%d %s" fd_var off (whence_to_string whence)
  | Link { src; dst } -> Printf.sprintf "link %s %s" src dst
  | Unlink { path } -> Printf.sprintf "unlink %s" path
  | Remove { path } -> Printf.sprintf "remove %s" path
  | Rename { src; dst } -> Printf.sprintf "rename %s %s" src dst
  | Truncate { path; size } -> Printf.sprintf "truncate %s size=%d" path size
  | Fallocate { fd_var; off; len; keep_size } ->
    Printf.sprintf "fallocate $%d off=%d len=%d keep_size=%b" fd_var off len keep_size
  | Rmdir { path } -> Printf.sprintf "rmdir %s" path
  | Fsync { fd_var } -> Printf.sprintf "fsync $%d" fd_var
  | Fdatasync { fd_var } -> Printf.sprintf "fdatasync $%d" fd_var
  | Sync -> "sync"
  | Setxattr { path; name; value } -> Printf.sprintf "setxattr %s %s=%s" path name value
  | Removexattr { path; name } -> Printf.sprintf "removexattr %s %s" path name

let is_data_op = function
  | Write _ | Pwrite _ | Fallocate _ -> true
  | Creat _ | Mkdir _ | Open _ | Close _ | Read _ | Lseek _ | Link _ | Unlink _ | Remove _
  | Rename _ | Truncate _ | Rmdir _ | Fsync _ | Fdatasync _ | Sync | Setxattr _
  | Removexattr _ ->
    false

let is_fsync_family = function
  | Fsync _ | Fdatasync _ | Sync -> true
  | Creat _ | Mkdir _ | Open _ | Close _ | Write _ | Pwrite _ | Read _ | Lseek _ | Link _
  | Unlink _ | Remove _ | Rename _ | Truncate _ | Fallocate _ | Rmdir _ | Setxattr _
  | Removexattr _ ->
    false

let mutates = function
  | Read _ | Lseek _ | Close _ -> false
  | Open { flags; _ } -> List.mem Types.O_CREAT flags || List.mem Types.O_TRUNC flags
  | Creat _ | Mkdir _ | Write _ | Pwrite _ | Link _ | Unlink _ | Remove _ | Rename _
  | Truncate _ | Fallocate _ | Rmdir _ | Fsync _ | Fdatasync _ | Sync | Setxattr _
  | Removexattr _ ->
    true

let pp ppf t = Format.pp_print_string ppf (to_string t)

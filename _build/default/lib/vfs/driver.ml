type consistency = Strong | Weak

type t = {
  name : string;
  consistency : consistency;
  atomic_data : bool;
  device_size : int;
  mkfs : Persist.Pm.t -> Handle.t;
  mount : Persist.Pm.t -> (Handle.t, string) result;
}

(** Whole-tree capture and comparison.

    The oracle tracker snapshots the reference tree around every system call;
    the consistency checker captures the recovered tree of each crash state
    and diffs it against oracle versions. A node that cannot be statted or
    read records the error instead of content — the checker treats such
    nodes as findings (e.g. NOVA-Fortis checksum failures surface as [EIO]
    here). *)

type node = {
  path : string;
  kind : Types.file_kind option;  (** [None] when stat failed. *)
  size : int;
  nlink : int;
  content : string option;  (** File bytes, when readable. *)
  entries : string list option;  (** Directory entry names, when readable. *)
  xattrs : (string * string) list;
      (** Extended attributes, sorted by name; empty where unsupported. *)
  error : string option;  (** First error hit while inspecting this node. *)
}

type tree = node list
(** Sorted by path; always contains at least the root node. *)

val capture : Handle.t -> tree

val find : tree -> string -> node option

val equal_node : node -> node -> bool
(** Compare kind, size, content and directory entries; compare [nlink] for
    regular files only (directory link-count conventions are checked by the
    conformance suite, not the crash checker); ignore inode numbers. *)

val equal : tree -> tree -> bool

val diff : expected:tree -> actual:tree -> string list
(** Human-readable differences, empty when [equal]. *)

val describe : node -> string
(** One-line rendering of a node, used in diffs and reports. *)

val has_errors : tree -> (string * string) list
(** (path, error) for every node that could not be inspected. *)

val pp : Format.formatter -> tree -> unit

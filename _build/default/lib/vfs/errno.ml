type t =
  | ENOENT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | ENOTEMPTY
  | EINVAL
  | EBADF
  | ENOSPC
  | ENAMETOOLONG
  | EMLINK
  | EFBIG
  | EROFS
  | EIO
  | EPERM
  | EXDEV
  | ENOTSUP

let to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EINVAL -> "EINVAL"
  | EBADF -> "EBADF"
  | ENOSPC -> "ENOSPC"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | EMLINK -> "EMLINK"
  | EFBIG -> "EFBIG"
  | EROFS -> "EROFS"
  | EIO -> "EIO"
  | EPERM -> "EPERM"
  | EXDEV -> "EXDEV"
  | ENOTSUP -> "ENOTSUP"

let to_code = function
  | EPERM -> 1
  | ENOENT -> 2
  | EIO -> 5
  | EBADF -> 9
  | EEXIST -> 17
  | EXDEV -> 18
  | ENOTDIR -> 20
  | EISDIR -> 21
  | EINVAL -> 22
  | EFBIG -> 27
  | ENOSPC -> 28
  | EROFS -> 30
  | EMLINK -> 31
  | ENAMETOOLONG -> 36
  | ENOTEMPTY -> 39
  | ENOTSUP -> 95

let equal (a : t) b = a = b
let pp ppf t = Format.pp_print_string ppf (to_string t)

(** Coverage points for gray-box fuzzing.

    The original Chipmunk collects kernel coverage through Syzkaller's KCOV
    integration and user-space coverage through GCC's sanitizer-coverage
    instrumentation (paper section 3.4.2). In this reproduction, file systems
    mark interesting code paths explicitly with {!mark}; the fuzzer snapshots
    the global hit set around each execution to decide whether a workload
    exercised new behaviour.

    Marking is a no-op unless collection is {!enable}d, so the marks cost
    nothing outside fuzzing runs. *)

val enable : unit -> unit
val disable : unit -> unit
val reset : unit -> unit
(** Forget all recorded hits (the enabled/disabled state is unchanged). *)

val mark : string -> unit
(** Record that the named coverage point was reached. *)

val hits : unit -> string list
(** All points recorded since the last [reset], sorted. *)

val count : unit -> int

let enabled = ref false
let table : (string, unit) Hashtbl.t = Hashtbl.create 256

let enable () = enabled := true
let disable () = enabled := false
let reset () = Hashtbl.reset table
let mark point = if !enabled then Hashtbl.replace table point ()
let hits () = Hashtbl.fold (fun k () acc -> k :: acc) table [] |> List.sort String.compare
let count () = Hashtbl.length table

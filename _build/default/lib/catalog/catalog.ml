module S = Vfs.Syscall

type bug_type = Logic | PM

type observation =
  | Obs_logic_not_pm
  | Obs_in_place
  | Obs_rebuild
  | Obs_resilience
  | Obs_mid_syscall
  | Obs_short_workloads
  | Obs_few_writes

type t = {
  bug_no : int;
  fs : string;
  consequence : string;
  affected : string list;
  bug_type : bug_type;
  observations : observation list;
  ace_findable : bool;
  driver : unit -> Vfs.Driver.t;
  trigger : S.t list;
}

let observation_label = function
  | Obs_logic_not_pm -> "logic/design issue, not a PM programming error"
  | Obs_in_place -> "in-place update optimization"
  | Obs_rebuild -> "rebuilding volatile state during recovery"
  | Obs_resilience -> "resilience mechanism introduced the bug"
  | Obs_mid_syscall -> "requires a crash during a system call"
  | Obs_short_workloads -> "exposed by short workloads"
  | Obs_few_writes -> "exposed by replaying few writes"

let bug_type_label = function Logic -> "Logic" | PM -> "PM"

(* Driver builders. *)

let nova ?(fortis = false) bugs () =
  Novafs.driver ~config:(Novafs.config ~fortis ~bugs ()) ()

let pmfs bugs () = Pmfs.driver ~config:(Pmfs.config ~bugs ()) ()
let winefs ?(strict = true) bugs () = Winefs.driver ~config:(Winefs.config ~strict ~bugs ()) ()
let splitfs bugs () = Splitfs.driver ~config:(Splitfs.config ~bugs ()) ()

(* Trigger workloads. *)

let w_creat = [ S.Creat { path = "/foo"; fd_var = 0 }; S.Close { fd_var = 0 } ]

let w_many_creats =
  List.concat_map
    (fun i -> [ S.Creat { path = Printf.sprintf "/file%02d" i; fd_var = i } ])
    (List.init 10 Fun.id)

let w_rename =
  [
    S.Creat { path = "/foo"; fd_var = 0 };
    S.Write { fd_var = 0; data = { seed = 2; len = 100 } };
    S.Close { fd_var = 0 };
    S.Rename { src = "/foo"; dst = "/bar" };
  ]

let w_rename_crossdir =
  [
    S.Mkdir { path = "/d" };
    S.Creat { path = "/foo"; fd_var = 0 };
    S.Write { fd_var = 0; data = { seed = 7; len = 90 } };
    S.Close { fd_var = 0 };
    S.Rename { src = "/foo"; dst = "/d/bar" };
  ]

let w_link =
  [
    S.Creat { path = "/foo"; fd_var = 0 };
    S.Close { fd_var = 0 };
    S.Link { src = "/foo"; dst = "/bar" };
  ]

let w_unlink =
  [
    S.Creat { path = "/foo"; fd_var = 0 };
    S.Write { fd_var = 0; data = { seed = 6; len = 300 } };
    S.Close { fd_var = 0 };
    S.Unlink { path = "/foo" };
  ]

let w_truncate =
  [
    S.Creat { path = "/foo"; fd_var = 0 };
    S.Write { fd_var = 0; data = { seed = 5; len = 400 } };
    S.Truncate { path = "/foo"; size = 100 };
    S.Close { fd_var = 0 };
  ]

let w_fallocate_churn =
  [
    S.Creat { path = "/old"; fd_var = 0 };
    S.Write { fd_var = 0; data = { seed = 6; len = 500 } };
    S.Close { fd_var = 0 };
    S.Unlink { path = "/old" };
    S.Creat { path = "/foo"; fd_var = 1 };
    S.Fallocate { fd_var = 1; off = 0; len = 400; keep_size = false };
    S.Close { fd_var = 1 };
  ]

let w_overwrite =
  [
    S.Creat { path = "/foo"; fd_var = 0 };
    S.Write { fd_var = 0; data = { seed = 1; len = 300 } };
    S.Close { fd_var = 0 };
    S.Open { path = "/foo"; flags = [ Vfs.Types.O_RDWR ]; fd_var = 1 };
    S.Pwrite { fd_var = 1; off = 40; data = { seed = 2; len = 100 } };
    S.Close { fd_var = 1 };
  ]

let w_metadata_mix =
  [
    S.Creat { path = "/a"; fd_var = 0 };
    S.Close { fd_var = 0 };
    S.Link { src = "/a"; dst = "/b" };
    S.Unlink { path = "/b" };
    S.Rename { src = "/a"; dst = "/c" };
  ]

let w_multiblock_write =
  [
    S.Creat { path = "/foo"; fd_var = 0 };
    S.Write { fd_var = 0; data = { seed = 7; len = 400 } };
    S.Close { fd_var = 0 };
    S.Open { path = "/foo"; flags = [ Vfs.Types.O_RDWR ]; fd_var = 1 };
    S.Pwrite { fd_var = 1; off = 0; data = { seed = 8; len = 384 } };
    S.Close { fd_var = 1 };
  ]

let w_boundary_metadata =
  List.concat_map
    (fun i ->
      [ S.Creat { path = Printf.sprintf "/somefile%02d" i; fd_var = i }; S.Close { fd_var = i } ])
    (List.init 16 Fun.id)

let all =
  [
    {
      bug_no = 1;
      fs = "NOVA";
      consequence = "File system unmountable";
      affected = [ "creat"; "mkdir" ];
      bug_type = Logic;
      observations = [ Obs_logic_not_pm; Obs_short_workloads; Obs_few_writes; Obs_mid_syscall ];
      ace_findable = true;
      driver = nova { Novafs.Bugs.none with bug1_dentry_before_inode = true };
      trigger = w_creat;
    };
    {
      bug_no = 2;
      fs = "NOVA";
      consequence = "File is unreadable and undeletable";
      affected = [ "mkdir"; "creat" ];
      bug_type = PM;
      observations = [ Obs_short_workloads ];
      ace_findable = true;
      driver = nova { Novafs.Bugs.none with bug2_unflushed_log_init = true };
      trigger = w_creat;
    };
    {
      bug_no = 3;
      fs = "NOVA";
      consequence = "File system unmountable";
      affected = [ "write"; "pwrite"; "link"; "unlink"; "rename"; "creat" ];
      bug_type = Logic;
      observations =
        [ Obs_logic_not_pm; Obs_rebuild; Obs_mid_syscall; Obs_short_workloads; Obs_few_writes ];
      ace_findable = true;
      driver = nova { Novafs.Bugs.none with bug3_tail_before_page_init = true };
      trigger = w_many_creats;
    };
    {
      bug_no = 4;
      fs = "NOVA";
      consequence = "Rename atomicity broken (file disappears)";
      affected = [ "rename" ];
      bug_type = Logic;
      observations =
        [
          Obs_logic_not_pm; Obs_in_place; Obs_mid_syscall; Obs_short_workloads; Obs_few_writes;
        ];
      ace_findable = true;
      driver = nova { Novafs.Bugs.none with bug4_inplace_dentry_invalidate = true };
      trigger = w_rename;
    };
    {
      bug_no = 5;
      fs = "NOVA";
      consequence = "Rename atomicity broken (old file still present)";
      affected = [ "rename" ];
      bug_type = Logic;
      observations =
        [
          Obs_logic_not_pm; Obs_in_place; Obs_mid_syscall; Obs_short_workloads; Obs_few_writes;
        ];
      ace_findable = true;
      driver = nova { Novafs.Bugs.none with bug5_tail_outside_journal = true };
      trigger = w_rename_crossdir;
    };
    {
      bug_no = 6;
      fs = "NOVA";
      consequence = "Link count incremented before new file appears";
      affected = [ "link" ];
      bug_type = Logic;
      observations =
        [
          Obs_logic_not_pm; Obs_in_place; Obs_mid_syscall; Obs_short_workloads; Obs_few_writes;
        ];
      ace_findable = true;
      driver = nova { Novafs.Bugs.none with bug6_inplace_link_count = true };
      trigger = w_link;
    };
    {
      bug_no = 7;
      fs = "NOVA";
      consequence = "File data lost";
      affected = [ "truncate" ];
      bug_type = Logic;
      observations = [ Obs_logic_not_pm; Obs_in_place; Obs_rebuild; Obs_mid_syscall ];
      ace_findable = true;
      driver = nova { Novafs.Bugs.none with bug7_eager_truncate_zero = true };
      trigger = w_truncate;
    };
    {
      bug_no = 8;
      fs = "NOVA";
      consequence = "File data lost";
      affected = [ "fallocate" ];
      bug_type = Logic;
      observations = [ Obs_logic_not_pm; Obs_mid_syscall ];
      ace_findable = false;
      (* needs allocator churn ACE's patterns do not create *)
      driver = nova { Novafs.Bugs.none with bug8_fallocate_publish_first = true };
      trigger = w_fallocate_churn;
    };
    {
      bug_no = 9;
      fs = "NOVA-Fortis";
      consequence = "Unreadable directory or file data loss";
      affected = [ "unlink"; "rmdir"; "truncate" ];
      bug_type = PM;
      observations = [ Obs_resilience; Obs_mid_syscall; Obs_short_workloads; Obs_few_writes ];
      ace_findable = true;
      driver = nova ~fortis:true { Novafs.Bugs.none with bug9_nonatomic_entry_csum = true };
      trigger = w_unlink;
    };
    {
      bug_no = 10;
      fs = "NOVA-Fortis";
      consequence = "File is undeletable";
      affected = [ "link"; "unlink"; "rename"; "mkdir" ];
      bug_type = Logic;
      observations =
        [
          Obs_logic_not_pm; Obs_resilience; Obs_mid_syscall; Obs_short_workloads; Obs_few_writes;
        ];
      ace_findable = true;
      driver = nova ~fortis:true { Novafs.Bugs.none with bug10_replica_not_updated = true };
      trigger = w_link;
    };
    {
      bug_no = 11;
      fs = "NOVA-Fortis";
      consequence = "FS attempts to deallocate free blocks";
      affected = [ "truncate" ];
      bug_type = Logic;
      observations =
        [
          Obs_logic_not_pm; Obs_rebuild; Obs_resilience; Obs_mid_syscall; Obs_short_workloads;
          Obs_few_writes;
        ];
      ace_findable = true;
      driver = nova ~fortis:true { Novafs.Bugs.none with bug11_replay_truncate_twice = true };
      trigger = w_truncate;
    };
    {
      bug_no = 12;
      fs = "NOVA-Fortis";
      consequence = "File is unreadable";
      affected = [ "truncate" ];
      bug_type = Logic;
      observations =
        [
          Obs_logic_not_pm; Obs_resilience; Obs_mid_syscall; Obs_short_workloads; Obs_few_writes;
        ];
      ace_findable = true;
      driver = nova ~fortis:true { Novafs.Bugs.none with bug12_csum_after_commit = true };
      trigger = w_truncate;
    };
    {
      bug_no = 13;
      fs = "PMFS";
      consequence = "File system unmountable";
      affected = [ "truncate"; "unlink"; "rmdir"; "rename" ];
      bug_type = Logic;
      observations =
        [
          Obs_logic_not_pm; Obs_rebuild; Obs_mid_syscall; Obs_short_workloads; Obs_few_writes;
        ];
      ace_findable = true;
      driver = pmfs { Pmfs.Bugs.none with bug13_truncate_replay = true };
      trigger = w_truncate;
    };
    {
      bug_no = 14;
      fs = "PMFS";
      consequence = "Write is not synchronous";
      affected = [ "write"; "pwrite" ];
      bug_type = PM;
      observations = [ Obs_in_place; Obs_short_workloads ];
      ace_findable = true;
      driver = pmfs { Pmfs.Bugs.none with bug14_async_write = true };
      trigger = w_overwrite;
    };
    {
      bug_no = 15;
      fs = "WineFS";
      consequence = "Write is not synchronous";
      affected = [ "write"; "pwrite" ];
      bug_type = PM;
      observations = [ Obs_in_place; Obs_short_workloads ];
      ace_findable = true;
      driver =
        (fun () ->
          Winefs.driver
            ~config:
              (Winefs.config ~strict:false
                 ~bugs:{ Winefs.Bugs.none with bug14_async_write = true }
                 ())
            ());
      trigger = w_overwrite;
    };
    {
      bug_no = 16;
      fs = "PMFS";
      consequence = "Out-of-bounds memory access";
      affected = [ "all" ];
      bug_type = Logic;
      observations = [ Obs_logic_not_pm; Obs_rebuild; Obs_short_workloads ];
      ace_findable = true;
      driver = pmfs { Pmfs.Bugs.none with bug16_journal_oob = true };
      trigger = w_metadata_mix;
    };
    {
      bug_no = 17;
      fs = "PMFS";
      consequence = "File data lost";
      affected = [ "write"; "pwrite" ];
      bug_type = PM;
      observations = [ Obs_short_workloads ];
      ace_findable = true;
      driver = pmfs { Pmfs.Bugs.none with bug17_unflushed_tail = true };
      trigger = w_overwrite;
    };
    {
      bug_no = 18;
      fs = "WineFS";
      consequence = "File data lost";
      affected = [ "write"; "pwrite" ];
      bug_type = PM;
      observations = [ Obs_short_workloads ];
      ace_findable = true;
      driver =
        (fun () ->
          Winefs.driver
            ~config:
              (Winefs.config ~strict:false
                 ~bugs:{ Winefs.Bugs.none with bug17_unflushed_tail = true }
                 ())
            ());
      trigger = w_overwrite;
    };
    {
      bug_no = 19;
      fs = "WineFS";
      consequence = "File is unreadable and undeletable";
      affected = [ "all" ];
      bug_type = Logic;
      observations =
        [
          Obs_logic_not_pm; Obs_rebuild; Obs_mid_syscall; Obs_short_workloads; Obs_few_writes;
        ];
      ace_findable = true;
      driver = winefs { Winefs.Bugs.none with bug19_journal_index = true };
      trigger = w_metadata_mix;
    };
    {
      bug_no = 20;
      fs = "WineFS";
      consequence = "Data write is not atomic in strict mode";
      affected = [ "write"; "pwrite" ];
      bug_type = Logic;
      observations = [ Obs_logic_not_pm; Obs_mid_syscall; Obs_short_workloads; Obs_few_writes ];
      ace_findable = true;
      driver = winefs { Winefs.Bugs.none with bug20_torn_strict_write = true };
      trigger = w_multiblock_write;
    };
    {
      bug_no = 21;
      fs = "SplitFS";
      consequence = "Operation is not synchronous";
      affected = [ "all metadata" ];
      bug_type = Logic;
      observations = [ Obs_logic_not_pm; Obs_rebuild; Obs_short_workloads ];
      ace_findable = true;
      driver = splitfs { Splitfs.Bugs.none with bug21_unfenced_metadata_log = true };
      trigger = w_metadata_mix;
    };
    {
      bug_no = 22;
      fs = "SplitFS";
      consequence = "File data lost";
      affected = [ "write"; "pwrite" ];
      bug_type = Logic;
      observations = [ Obs_logic_not_pm; Obs_short_workloads ];
      ace_findable = true;
      driver = splitfs { Splitfs.Bugs.none with bug22_unfenced_staging_data = true };
      trigger = w_overwrite;
    };
    {
      bug_no = 23;
      fs = "SplitFS";
      consequence = "File data lost";
      affected = [ "write"; "pwrite" ];
      bug_type = Logic;
      observations = [ Obs_logic_not_pm; Obs_short_workloads ];
      ace_findable = true;
      driver = splitfs { Splitfs.Bugs.none with bug23_entry_before_data = true };
      trigger = w_overwrite;
    };
    {
      bug_no = 24;
      fs = "SplitFS";
      consequence = "Operation is not synchronous";
      affected = [ "all" ];
      bug_type = Logic;
      observations = [ Obs_logic_not_pm; Obs_rebuild; Obs_short_workloads ];
      ace_findable = false;
      (* depends on log offsets ACE's fixed patterns rarely reach *)
      driver = splitfs { Splitfs.Bugs.none with bug24_boundary_entry_unfenced = true };
      trigger = w_boundary_metadata;
    };
    {
      bug_no = 25;
      fs = "SplitFS";
      consequence = "Rename atomicity broken (old file still present)";
      affected = [ "rename" ];
      bug_type = Logic;
      observations = [ Obs_logic_not_pm; Obs_rebuild; Obs_short_workloads ];
      ace_findable = true;
      driver = splitfs { Splitfs.Bugs.none with bug25_rename_two_entries = true };
      trigger = w_rename;
    };
  ]

let unique_bugs =
  (* The paper counts 14&15 and 17&18 as single bugs found in two file
     systems each (its Table 1 has shared rows for them). *)
  let canonical n = match n with 15 -> 14 | 18 -> 17 | n -> n in
  List.length (List.sort_uniq compare (List.map (fun b -> canonical b.bug_no) all))

let clean_drivers =
  [
    ("nova", fun () -> Novafs.driver ());
    ("nova-fortis", fun () -> Novafs.driver ~config:(Novafs.config ~fortis:true ()) ());
    ("pmfs", fun () -> Pmfs.driver ());
    ("winefs", fun () -> Winefs.driver ());
    ("splitfs", fun () -> Splitfs.driver ());
    ("ext4-dax", fun () -> Ext4dax.driver ());
    ("xfs-dax", fun () -> Ext4dax.driver ~config:(Ext4dax.config ~xfs:true ()) ());
  ]

let buggy_driver name =
  match name with
  | "nova" -> Some (fun () -> nova Novafs.Bugs.all ())
  | "nova-fortis" -> Some (fun () -> nova ~fortis:true Novafs.Bugs.all ())
  | "pmfs" -> Some (fun () -> pmfs Pmfs.Bugs.all ())
  | "winefs" -> Some (fun () -> winefs Winefs.Bugs.all ())
  | "splitfs" -> Some (fun () -> splitfs Splitfs.Bugs.all ())
  | "ext4-dax" -> Some (fun () -> Ext4dax.driver ())
  | "xfs-dax" -> Some (fun () -> Ext4dax.driver ~config:(Ext4dax.config ~xfs:true ()) ())
  | _ -> None

(** The paper's bug corpus as data: one entry per bug instance of Table 1,
    with the metadata needed to regenerate Table 1, Table 2 and Figure 3.

    A {e bug instance} is a (bug number, file system) pair: bugs 14/15 and
    17/18 each appear in both PMFS and WineFS, giving 25 instances of 23
    unique bugs, exactly as the paper counts them. *)

type bug_type = Logic | PM

type observation =
  | Obs_logic_not_pm  (** Most bugs are logic/design issues, not PM errors. *)
  | Obs_in_place  (** In-place update optimizations cause bugs. *)
  | Obs_rebuild  (** Rebuilding volatile state during recovery is error-prone. *)
  | Obs_resilience  (** Resilience mechanisms introduce new bugs. *)
  | Obs_mid_syscall  (** Only exposed by crashes during system calls. *)
  | Obs_short_workloads  (** Exposed by short (ACE-style) workloads. *)
  | Obs_few_writes  (** Exposed by replaying few writes onto persistent state. *)

type t = {
  bug_no : int;  (** Paper Table 1 number. *)
  fs : string;  (** Display name ("NOVA", "NOVA-Fortis", ...). *)
  consequence : string;
  affected : string list;  (** Affected system calls, per Table 1. *)
  bug_type : bug_type;
  observations : observation list;  (** Table 2 membership. *)
  ace_findable : bool;  (** Whether the paper's ACE suites expose it. *)
  driver : unit -> Vfs.Driver.t;  (** The file system with only this bug armed. *)
  trigger : Vfs.Syscall.t list;
      (** A short workload known to expose the bug (used by tests and by the
          fuzzer-vs-ACE comparison as ground truth). *)
}

val all : t list
(** The 25 bug instances in Table 1 order. *)

val unique_bugs : int
(** 23: instances deduplicated by bug number. *)

val observation_label : observation -> string
val bug_type_label : bug_type -> string

val clean_drivers : (string * (unit -> Vfs.Driver.t)) list
(** Every modelled file system with all bugs off (including ext4-DAX and
    XFS-DAX, in which the paper found no bugs). *)

val buggy_driver : string -> (unit -> Vfs.Driver.t) option
(** A driver for the named file system with {e all} of its catalogued bugs
    armed at once (the paper's testing scenario). *)

(** PMFS: in-place metadata under a single undo journal, a persistent
    truncate (orphan) list, and non-atomic in-place data writes —
    instantiated from the shared {!Pmcommon.Jfs} core. *)

module Jfs = Pmcommon.Jfs

(** The paper's PMFS bug corpus as injectable switches (all default off). *)
module Bugs : sig
  type t = {
    bug13_truncate_replay : bool;
        (** Recovery replays the truncate list before the volatile free list
            exists: a null dereference makes the file system unmountable
            (paper bug 13, Logic). *)
    bug14_async_write : bool;
        (** The pure-overwrite fast path returns without a fence: writes are
            not synchronous (paper bugs 14/15, PM). *)
    bug16_journal_oob : bool;
        (** The journal valid flag is published with the unfenced records and
            recovery skips validation: out-of-bounds accesses at recovery
            (paper bug 16, Logic). *)
    bug17_unflushed_tail : bool;
        (** The data path never flushes cached unaligned tails: file data
            lost (paper bugs 17/18, PM). *)
  }

  val none : t
  val all : t
  val to_jfs : t -> Jfs.bugs
end

type config = Jfs.config

val default_config : config
val config : ?bugs:Bugs.t -> ?n_pages:int -> ?n_inodes:int -> unit -> config

val driver : ?config:config -> unit -> Vfs.Driver.t
(** Strong consistency, non-atomic data writes. *)

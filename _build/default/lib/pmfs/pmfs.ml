(** PMFS: in-place metadata under a single undo journal, a persistent
    truncate list, and non-atomic in-place data writes — instantiated from
    the shared {!Pmcommon.Jfs} core.

    {!Bugs} exposes the paper's PMFS corpus: bug 13 (truncate-list replay
    dereferences the lost volatile free list), bugs 14/15 (write fast path
    not synchronous), bug 16 (unvalidated journal recovery reads out of
    bounds) and bugs 17/18 (unflushed unaligned data tails). *)

module Jfs = Pmcommon.Jfs

module Bugs = struct
  type t = {
    bug13_truncate_replay : bool;
    bug14_async_write : bool;
    bug16_journal_oob : bool;
    bug17_unflushed_tail : bool;
  }

  let none =
    {
      bug13_truncate_replay = false;
      bug14_async_write = false;
      bug16_journal_oob = false;
      bug17_unflushed_tail = false;
    }

  let all =
    {
      bug13_truncate_replay = true;
      bug14_async_write = true;
      bug16_journal_oob = true;
      bug17_unflushed_tail = true;
    }

  let to_jfs t =
    {
      Jfs.no_bugs with
      Jfs.bug13_replay_without_freelist = t.bug13_truncate_replay;
      bug14_skip_data_fence = t.bug14_async_write;
      bug16_unvalidated_journal = t.bug16_journal_oob;
      bug17_skip_tail_flush = t.bug17_unflushed_tail;
    }
end

type config = Jfs.config

let config ?(bugs = Bugs.none) ?(n_pages = Jfs.base_config.Jfs.n_pages)
    ?(n_inodes = Jfs.base_config.Jfs.n_inodes) () =
  {
    Jfs.base_config with
    Jfs.fs_name = "pmfs";
    n_pages;
    n_inodes;
    n_journals = 1;
    strict_data = false;
    bugs = Bugs.to_jfs bugs;
  }

let default_config = config ()

module P = Vfs.Posix.Make (Jfs)

let driver ?(config = default_config) () =
  {
    Vfs.Driver.name = "pmfs";
    consistency = Vfs.Driver.Strong;
    atomic_data = false;
    device_size = config.Jfs.n_pages * config.Jfs.page_size;
    mkfs = (fun pm -> P.handle (P.init (Jfs.mkfs pm config)));
    mount =
      (fun pm ->
        match Jfs.mount pm config with
        | Ok fs -> Ok (P.handle (P.init fs))
        | Error e -> Error e);
  }

module Types = Vfs.Types
module Errno = Vfs.Errno

type inode = {
  ino : int;
  kind : Types.file_kind;
  mutable nlink : int;
  mutable data : string;  (* Reg only *)
  entries : (string, int) Hashtbl.t;  (* Dir only *)
  xattrs : (string, string) Hashtbl.t;
  mutable opens : int;
}

type fs = {
  inodes : (int, inode) Hashtbl.t;
  mutable next_ino : int;
}

module Fs = struct
  type t = fs

  let name = "memfs"
  let name_max = 255
  let root_ino = 1

  let get t ino = Hashtbl.find_opt t.inodes ino

  let get_exn t ino =
    match get t ino with
    | Some i -> i
    | None -> invalid_arg "memfs: dangling inode"

  let alloc t kind =
    let ino = t.next_ino in
    t.next_ino <- ino + 1;
    let node =
      {
        ino;
        kind;
        nlink = (match kind with Types.Reg -> 1 | Types.Dir -> 2);
        data = "";
        entries = Hashtbl.create 8;
        xattrs = Hashtbl.create 4;
        opens = 0;
      }
    in
    Hashtbl.replace t.inodes ino node;
    node

  let lookup t ~dir ~name =
    match get t dir with
    | None -> Error Errno.ENOENT
    | Some d when d.kind <> Types.Dir -> Error Errno.ENOTDIR
    | Some d -> (
      match Hashtbl.find_opt d.entries name with
      | Some ino -> Ok ino
      | None -> Error Errno.ENOENT)

  let getattr t ~ino =
    match get t ino with
    | None -> Error Errno.ENOENT
    | Some i ->
      Ok
        {
          Types.st_ino = i.ino;
          st_kind = i.kind;
          st_size =
            (match i.kind with
            | Types.Reg -> String.length i.data
            | Types.Dir -> Hashtbl.length i.entries);
          st_nlink = i.nlink;
        }

  let mkdir t ~dir ~name =
    let d = get_exn t dir in
    let node = alloc t Types.Dir in
    Hashtbl.replace d.entries name node.ino;
    d.nlink <- d.nlink + 1;
    Ok node.ino

  let create t ~dir ~name =
    let d = get_exn t dir in
    let node = alloc t Types.Reg in
    Hashtbl.replace d.entries name node.ino;
    Ok node.ino

  let link t ~ino ~dir ~name =
    let d = get_exn t dir in
    let f = get_exn t ino in
    Hashtbl.replace d.entries name ino;
    f.nlink <- f.nlink + 1;
    Ok ()

  let maybe_reclaim t node =
    if node.nlink = 0 && node.opens = 0 then Hashtbl.remove t.inodes node.ino

  let drop_link t node =
    node.nlink <- node.nlink - 1;
    maybe_reclaim t node

  let unlink t ~dir ~name =
    let d = get_exn t dir in
    let ino = Hashtbl.find d.entries name in
    Hashtbl.remove d.entries name;
    drop_link t (get_exn t ino);
    Ok ()

  let rmdir t ~dir ~name =
    let d = get_exn t dir in
    let ino = Hashtbl.find d.entries name in
    let victim = get_exn t ino in
    Hashtbl.remove d.entries name;
    d.nlink <- d.nlink - 1;
    victim.nlink <- 0;
    maybe_reclaim t victim;
    Ok ()

  let rename t ~odir ~oname ~ndir ~nname =
    let od = get_exn t odir and nd = get_exn t ndir in
    let ino = Hashtbl.find od.entries oname in
    let moved = get_exn t ino in
    (* Remove an overwritten target first (Posix validated compatibility). *)
    (match Hashtbl.find_opt nd.entries nname with
    | None -> ()
    | Some tino ->
      let target = get_exn t tino in
      (match target.kind with
      | Types.Reg -> drop_link t target
      | Types.Dir ->
        nd.nlink <- nd.nlink - 1;
        target.nlink <- 0;
        maybe_reclaim t target));
    Hashtbl.remove od.entries oname;
    Hashtbl.replace nd.entries nname ino;
    if moved.kind = Types.Dir && odir <> ndir then begin
      od.nlink <- od.nlink - 1;
      nd.nlink <- nd.nlink + 1
    end;
    Ok ()

  let readdir t ~dir =
    let d = get_exn t dir in
    Ok (Hashtbl.fold (fun name ino acc -> { Types.d_ino = ino; d_name = name } :: acc) d.entries [])

  let read t ~ino ~off ~len =
    let f = get_exn t ino in
    let size = String.length f.data in
    if off >= size then Ok ""
    else Ok (String.sub f.data off (min len (size - off)))

  let splice old ~off data =
    let dlen = String.length data in
    let old_len = String.length old in
    let new_len = max old_len (off + dlen) in
    let b = Bytes.make new_len '\000' in
    Bytes.blit_string old 0 b 0 old_len;
    Bytes.blit_string data 0 b off dlen;
    Bytes.unsafe_to_string b

  let write t ~ino ~off ~data =
    let f = get_exn t ino in
    f.data <- splice f.data ~off data;
    Ok (String.length data)

  let truncate t ~ino ~size =
    let f = get_exn t ino in
    let old_len = String.length f.data in
    if size <= old_len then f.data <- String.sub f.data 0 size
    else f.data <- f.data ^ String.make (size - old_len) '\000';
    Ok ()

  let fallocate t ~ino ~off ~len ~keep_size =
    let f = get_exn t ino in
    if not keep_size && off + len > String.length f.data then
      f.data <- f.data ^ String.make (off + len - String.length f.data) '\000';
    Ok ()

  let setxattr t ~ino ~name ~value =
    let i = get_exn t ino in
    Hashtbl.replace i.xattrs name value;
    Ok ()

  let getxattr t ~ino ~name =
    let i = get_exn t ino in
    match Hashtbl.find_opt i.xattrs name with
    | Some v -> Ok v
    | None -> Error Errno.ENOENT

  let listxattr t ~ino =
    let i = get_exn t ino in
    Ok (Hashtbl.fold (fun k _ acc -> k :: acc) i.xattrs [])

  let removexattr t ~ino ~name =
    let i = get_exn t ino in
    if Hashtbl.mem i.xattrs name then begin
      Hashtbl.remove i.xattrs name;
      Ok ()
    end
    else Error Errno.ENOENT

  let fsync _ ~ino:_ = Ok ()
  let sync _ = ()

  let iget t ~ino =
    match get t ino with None -> () | Some i -> i.opens <- i.opens + 1

  let iput t ~ino =
    match get t ino with
    | None -> ()
    | Some i ->
      i.opens <- max 0 (i.opens - 1);
      maybe_reclaim t i
end

module P = Vfs.Posix.Make (Fs)

let create () =
  let t = { inodes = Hashtbl.create 64; next_ino = 2 } in
  Hashtbl.replace t.inodes Fs.root_ino
    {
      ino = Fs.root_ino;
      kind = Types.Dir;
      nlink = 2;
      data = "";
      entries = Hashtbl.create 8;
      xattrs = Hashtbl.create 4;
      opens = 0;
    };
  t

let handle () = P.handle (P.init (create ()))

(** The oracle file system: a purely in-DRAM reference implementation of the
    POSIX surface, with no crash-consistency machinery at all.

    The Chipmunk checker runs each workload on a fresh Memfs instance in
    parallel with trace replay and compares crash states of the system under
    test against the oracle's pre- and post-syscall trees (paper section
    3.3). Because Memfs has no persistence, it is trivially "correct" —
    there is nothing to tear or lose — which is exactly what an oracle
    needs. *)

module Fs : Vfs.Fs_intf.INODE_OPS

val create : unit -> Fs.t
(** A fresh, empty file system containing only the root directory. *)

val handle : unit -> Vfs.Handle.t
(** [create] + POSIX layer in one step. *)

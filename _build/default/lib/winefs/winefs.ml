(** WineFS: the PMFS-derived hugepage-aware file system, instantiated from
    the shared {!Pmcommon.Jfs} core with per-CPU undo journals, an
    alignment-aware allocator, and a strict mode that makes data writes
    atomic via copy-on-write.

    {!Bugs} exposes the paper's WineFS corpus: bugs 14/15 and 17/18 (shared
    with PMFS), bug 19 (recovery mis-indexes the per-CPU journal array) and
    bug 20 (strict-mode multi-block writes are not actually atomic). *)

module Jfs = Pmcommon.Jfs

module Bugs = struct
  type t = {
    bug14_async_write : bool;
    bug17_unflushed_tail : bool;
    bug19_journal_index : bool;
    bug20_torn_strict_write : bool;
  }

  let none =
    {
      bug14_async_write = false;
      bug17_unflushed_tail = false;
      bug19_journal_index = false;
      bug20_torn_strict_write = false;
    }

  let all =
    {
      bug14_async_write = true;
      bug17_unflushed_tail = true;
      bug19_journal_index = true;
      bug20_torn_strict_write = true;
    }

  let to_jfs t =
    {
      Jfs.no_bugs with
      Jfs.bug14_skip_data_fence = t.bug14_async_write;
      bug17_skip_tail_flush = t.bug17_unflushed_tail;
      bug19_recover_first_journal_only = t.bug19_journal_index;
      bug20_strict_inplace_tail = t.bug20_torn_strict_write;
    }
end

type config = Jfs.config

let config ?(bugs = Bugs.none) ?(strict = true) ?(n_cpus = 4)
    ?(n_pages = Jfs.base_config.Jfs.n_pages) ?(n_inodes = Jfs.base_config.Jfs.n_inodes) () =
  {
    Jfs.base_config with
    Jfs.fs_name = "winefs";
    n_pages;
    n_inodes;
    n_journals = n_cpus;
    strict_data = strict;
    aligned_alloc = true;
    align = 4;
    bugs = Bugs.to_jfs bugs;
  }

let default_config = config ()

module P = Vfs.Posix.Make (Jfs)

let driver ?(config = default_config) () =
  {
    Vfs.Driver.name = "winefs";
    consistency = Vfs.Driver.Strong;
    atomic_data = config.Jfs.strict_data;
    device_size = config.Jfs.n_pages * config.Jfs.page_size;
    mkfs = (fun pm -> P.handle (P.init (Jfs.mkfs pm config)));
    mount =
      (fun pm ->
        match Jfs.mount pm config with
        | Ok fs -> Ok (P.handle (P.init fs))
        | Error e -> Error e);
  }

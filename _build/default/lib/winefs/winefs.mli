(** WineFS: the PMFS-derived hugepage-aware file system, instantiated from
    the shared {!Pmcommon.Jfs} core with per-CPU undo journals, an
    alignment-aware allocator, and a strict mode that makes data writes
    atomic via copy-on-write. *)

module Jfs = Pmcommon.Jfs

(** The paper's WineFS bug corpus as injectable switches (all default off). *)
module Bugs : sig
  type t = {
    bug14_async_write : bool;
        (** Relaxed-mode fast-path writes return without a fence (paper bug
            15, PM; shared mechanism with PMFS). Only reachable with
            [strict:false]. *)
    bug17_unflushed_tail : bool;
        (** Unaligned data tails are never flushed (paper bug 18, PM; shared
            with PMFS). Only reachable with [strict:false]. *)
    bug19_journal_index : bool;
        (** Recovery mis-indexes the per-CPU journal array and only rolls
            back journal 0; transactions on other CPUs stay half-applied
            (paper bug 19, Logic). *)
    bug20_torn_strict_write : bool;
        (** Strict mode copies-on-write only the first touched block of a
            multi-block write, tearing the supposedly atomic write (paper
            bug 20, Logic). *)
  }

  val none : t
  val all : t
  val to_jfs : t -> Jfs.bugs
end

type config = Jfs.config

val default_config : config
(** Strict mode, 4 per-CPU journals. *)

val config :
  ?bugs:Bugs.t -> ?strict:bool -> ?n_cpus:int -> ?n_pages:int -> ?n_inodes:int -> unit -> config

val driver : ?config:config -> unit -> Vfs.Driver.t
(** Strong consistency; data writes are atomic iff the config is strict. *)

(** Workload generation and mutation for the gray-box fuzzer.

    Unlike ACE's exhaustive enumeration, the fuzzer explores long, irregular
    programs: unaligned offsets and lengths, several descriptors open on the
    same file, O_APPEND mixes, deep paths, and explicit fsync/sync calls —
    exactly the complexities the paper credits Syzkaller with covering
    (section 4.3: the four bugs ACE missed involved non-8-byte-aligned
    writes and multiple descriptors per file). *)

val generate : Random.State.t -> max_len:int -> Vfs.Syscall.t list
(** A fresh random program. *)

val mutate : Random.State.t -> Vfs.Syscall.t list -> Vfs.Syscall.t list
(** One mutation step: insert, delete, duplicate, tweak arguments, or
    splice in a freshly generated fragment. Never returns an empty
    program. *)

val to_string : Vfs.Syscall.t list -> string

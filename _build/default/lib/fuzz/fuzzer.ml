type config = {
  rng_seed : int;
  max_execs : int;
  max_seconds : float;
  max_len : int;
  harness_opts : Chipmunk.Harness.opts;
  stop_after_findings : int option;
}

let default_config =
  {
    rng_seed = 1;
    max_execs = 2000;
    max_seconds = 60.0;
    max_len = 14;
    harness_opts = { Chipmunk.Harness.default_opts with cap = Some 2 };
    stop_after_findings = None;
  }

type event = {
  fingerprint : string;
  report : Chipmunk.Report.t;
  at_exec : int;
  elapsed : float;
  workload : Vfs.Syscall.t list;
}

type result = {
  execs : int;
  crash_states : int;
  coverage : int;
  corpus_size : int;
  events : event list;
  clusters : Triage.cluster list;
  elapsed : float;
}

exception Stop

let run ?(config = default_config) driver =
  let rng = Random.State.make [| config.rng_seed |] in
  let t0 = Unix.gettimeofday () in
  Cov.enable ();
  Cov.reset ();
  let corpus = ref [] in
  let corpus_n = ref 0 in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let events = ref [] in
  let all_reports = ref [] in
  let execs = ref 0 in
  let states = ref 0 in
  let next_workload () =
    (* As in Syzkaller: usually mutate a seed, sometimes generate fresh. *)
    if !corpus = [] || Random.State.int rng 4 = 0 then Prog.generate rng ~max_len:config.max_len
    else
      let seed = List.nth !corpus (Random.State.int rng !corpus_n) in
      Prog.mutate rng seed
  in
  (try
     while
       !execs < config.max_execs && Unix.gettimeofday () -. t0 < config.max_seconds
     do
       let workload = next_workload () in
       let cov_before = Cov.count () in
       let r = Chipmunk.Harness.test_workload ~opts:config.harness_opts driver workload in
       incr execs;
       states := !states + r.Chipmunk.Harness.stats.Chipmunk.Harness.crash_states;
       if Cov.count () > cov_before then begin
         corpus := workload :: !corpus;
         incr corpus_n
       end;
       List.iter
         (fun report ->
           all_reports := report :: !all_reports;
           let fp = Chipmunk.Report.fingerprint report in
           if not (Hashtbl.mem seen fp) then begin
             Hashtbl.replace seen fp ();
             events :=
               {
                 fingerprint = fp;
                 report;
                 at_exec = !execs;
                 elapsed = Unix.gettimeofday () -. t0;
                 workload;
               }
               :: !events;
             match config.stop_after_findings with
             | Some n when Hashtbl.length seen >= n -> raise Stop
             | _ -> ()
           end)
         r.Chipmunk.Harness.reports
     done
   with Stop -> ());
  {
    execs = !execs;
    crash_states = !states;
    coverage = Cov.count ();
    corpus_size = !corpus_n;
    events = List.rev !events;
    clusters = Triage.cluster (List.rev !all_reports);
    elapsed = Unix.gettimeofday () -. t0;
  }

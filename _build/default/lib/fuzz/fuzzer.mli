(** The gray-box fuzzing front end (the Syzkaller analogue, paper section
    3.4.2): generate workloads by genetic mutation of a seed corpus, guided
    by coverage points in the file systems under test, and run each
    candidate through the Chipmunk harness.

    Coverage comes from {!Cov} marks placed in file-system code — the
    stand-in for compiler-inserted coverage instrumentation. Workloads that
    reach new points are kept as seeds. Reports are deduplicated by
    fingerprint and clustered for triage. *)

type config = {
  rng_seed : int;
  max_execs : int;
  max_seconds : float;
  max_len : int;  (** Maximum generated program length. *)
  harness_opts : Chipmunk.Harness.opts;
      (** The paper runs the fuzzer with a cap of two replayed writes per
          crash state so outlier tests cannot stall the campaign. *)
  stop_after_findings : int option;
}

val default_config : config

type event = {
  fingerprint : string;
  report : Chipmunk.Report.t;
  at_exec : int;
  elapsed : float;
  workload : Vfs.Syscall.t list;
}

type result = {
  execs : int;
  crash_states : int;
  coverage : int;  (** Distinct coverage points reached. *)
  corpus_size : int;
  events : event list;  (** Unique findings in discovery order. *)
  clusters : Triage.cluster list;
  elapsed : float;
}

val run : ?config:config -> Vfs.Driver.t -> result

lib/fuzz/triage.ml: Char Chipmunk List String

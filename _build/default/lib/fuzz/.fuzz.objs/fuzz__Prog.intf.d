lib/fuzz/prog.mli: Random Vfs

lib/fuzz/prog.ml: Array List Random String Vfs

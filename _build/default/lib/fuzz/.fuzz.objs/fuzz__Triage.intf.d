lib/fuzz/triage.mli: Chipmunk

lib/fuzz/fuzzer.ml: Chipmunk Cov Hashtbl List Prog Random Triage Unix Vfs

lib/fuzz/fuzzer.mli: Chipmunk Triage Vfs

module S = Vfs.Syscall

let paths =
  [|
    "/a"; "/b"; "/c"; "/dir"; "/dir/a"; "/dir/b"; "/dir/sub"; "/dir/sub/x"; "/longer_name_file";
  |]

let dirs = [| "/dir"; "/dir/sub"; "/other" |]

let pick rng a = a.(Random.State.int rng (Array.length a))

(* Deliberately odd offsets and lengths: unaligned writes are one of the
   patterns ACE omits and the fuzzer is meant to restore. *)
let odd_int rng bound = 1 + Random.State.int rng bound

let gen_call rng ~next_var ~live_vars =
  let var () =
    match live_vars with
    | [] -> -1
    | l -> List.nth l (Random.State.int rng (List.length l))
  in
  match Random.State.int rng 20 with
  | 0 | 1 ->
    let v = !next_var in
    incr next_var;
    `Open (S.Creat { path = pick rng paths; fd_var = v }, v)
  | 2 ->
    let v = !next_var in
    incr next_var;
    let flags =
      match Random.State.int rng 4 with
      | 0 -> [ Vfs.Types.O_RDWR ]
      | 1 -> [ Vfs.Types.O_WRONLY; Vfs.Types.O_APPEND ]
      | 2 -> [ Vfs.Types.O_RDWR; Vfs.Types.O_CREAT ]
      | _ -> [ Vfs.Types.O_RDONLY ]
    in
    `Open (S.Open { path = pick rng paths; flags; fd_var = v }, v)
  | 3 -> `Plain (S.Mkdir { path = pick rng dirs })
  | 4 | 5 ->
    `Plain
      (S.Write
         { fd_var = var (); data = { seed = Random.State.int rng 100000; len = odd_int rng 517 } })
  | 6 | 7 ->
    `Plain
      (S.Pwrite
         {
           fd_var = var ();
           off = Random.State.int rng 700;
           data = { seed = Random.State.int rng 100000; len = odd_int rng 313 };
         })
  | 8 -> `Plain (S.Link { src = pick rng paths; dst = pick rng paths })
  | 9 -> `Plain (S.Unlink { path = pick rng paths })
  | 10 -> `Plain (S.Rename { src = pick rng paths; dst = pick rng paths })
  | 11 -> `Plain (S.Rename { src = pick rng dirs; dst = pick rng dirs })
  | 12 -> `Plain (S.Truncate { path = pick rng paths; size = Random.State.int rng 900 })
  | 13 ->
    `Plain
      (S.Fallocate
         {
           fd_var = var ();
           off = Random.State.int rng 500;
           len = odd_int rng 400;
           keep_size = Random.State.bool rng;
         })
  | 14 -> `Plain (S.Rmdir { path = pick rng dirs })
  | 15 -> `Plain (S.Fsync { fd_var = var () })
  | 16 -> `Plain (S.Read { fd_var = var (); len = odd_int rng 200 })
  | 17 ->
    `Plain
      (S.Lseek
         {
           fd_var = var ();
           off = Random.State.int rng 400;
           whence =
             (match Random.State.int rng 3 with
             | 0 -> Vfs.Types.SEEK_SET
             | 1 -> Vfs.Types.SEEK_CUR
             | _ -> Vfs.Types.SEEK_END);
         })
  | 18 -> `Close (var ())
  | _ -> `Plain S.Sync

let generate rng ~max_len =
  let len = 2 + Random.State.int rng (max 1 (max_len - 2)) in
  let next_var = ref 0 in
  let live = ref [] in
  let out = ref [] in
  for _ = 1 to len do
    match gen_call rng ~next_var ~live_vars:!live with
    | `Open (c, v) ->
      live := v :: !live;
      out := c :: !out
    | `Close v ->
      live := List.filter (fun x -> x <> v) !live;
      out := S.Close { fd_var = v } :: !out
    | `Plain c -> out := c :: !out
  done;
  List.rev !out

let tweak rng call =
  match call with
  | S.Write { fd_var; data } ->
    S.Write { fd_var; data = { data with len = max 1 (data.len + Random.State.int rng 65 - 32) } }
  | S.Pwrite { fd_var; off; data } ->
    S.Pwrite
      {
        fd_var;
        off = max 0 (off + Random.State.int rng 129 - 64);
        data = { data with seed = Random.State.int rng 100000 };
      }
  | S.Truncate { path; size } ->
    S.Truncate { path; size = max 0 (size + Random.State.int rng 257 - 128) }
  | S.Fallocate { fd_var; off; len; keep_size } ->
    S.Fallocate { fd_var; off; len; keep_size = not keep_size }
  | S.Rename { src; dst = _ } -> S.Rename { src; dst = pick rng paths }
  | c -> c

let mutate rng prog =
  let arr = Array.of_list prog in
  let n = Array.length arr in
  let result =
    match Random.State.int rng 5 with
    | 0 ->
      (* insert a fresh fragment *)
      let frag = generate rng ~max_len:3 in
      let pos = Random.State.int rng (n + 1) in
      List.concat [ Array.to_list (Array.sub arr 0 pos); frag;
                    Array.to_list (Array.sub arr pos (n - pos)) ]
    | 1 when n > 1 ->
      (* delete one call *)
      let pos = Random.State.int rng n in
      List.filteri (fun i _ -> i <> pos) prog
    | 2 when n > 0 ->
      (* duplicate one call *)
      let pos = Random.State.int rng n in
      List.concat_map (fun (i, c) -> if i = pos then [ c; c ] else [ c ])
        (List.mapi (fun i c -> (i, c)) prog)
    | 3 when n > 0 ->
      (* tweak arguments *)
      let pos = Random.State.int rng n in
      List.mapi (fun i c -> if i = pos then tweak rng c else c) prog
    | _ ->
      (* append *)
      prog @ generate rng ~max_len:2
  in
  if result = [] then generate rng ~max_len:4 else result

let to_string prog = String.concat "; " (List.map S.to_string prog)

(* NOVA tests: basic operation, remount/recovery fidelity, and conformance
   against the memfs oracle. *)

module Types = Vfs.Types
module Errno = Vfs.Errno

let ok = Helpers.check_ok

let test_mkfs_empty () =
  let h, _, _ = Helpers.nova_handle () in
  let tree = Vfs.Walker.capture h in
  Alcotest.(check int) "just root" 1 (List.length tree);
  Alcotest.(check (list string)) "no entries" []
    (List.map (fun d -> d.Types.d_name) (ok "readdir" (h.Vfs.Handle.readdir ~path:"/")))

let test_basic_ops_match_oracle () =
  let h, _, _ = Helpers.nova_handle () in
  Helpers.against_oracle h
    [
      Vfs.Syscall.Mkdir { path = "/d" };
      Vfs.Syscall.Creat { path = "/d/file"; fd_var = 0 };
      Vfs.Syscall.Write { fd_var = 0; data = { seed = 3; len = 300 } };
      Vfs.Syscall.Pwrite { fd_var = 0; off = 50; data = { seed = 4; len = 10 } };
      Vfs.Syscall.Link { src = "/d/file"; dst = "/hardlink" };
      Vfs.Syscall.Rename { src = "/d/file"; dst = "/renamed" };
      Vfs.Syscall.Truncate { path = "/renamed"; size = 123 };
      Vfs.Syscall.Fallocate { fd_var = 0; off = 200; len = 100; keep_size = false };
      Vfs.Syscall.Close { fd_var = 0 };
      Vfs.Syscall.Unlink { path = "/hardlink" };
    ]

let remount (pm : Persist.Pm.t) driver =
  match driver.Vfs.Driver.mount pm with
  | Ok h -> h
  | Error e -> Alcotest.failf "remount failed: %s" e

let test_remount_preserves_tree () =
  let h, pm, driver = Helpers.nova_handle () in
  let calls =
    [
      Vfs.Syscall.Mkdir { path = "/a" };
      Vfs.Syscall.Mkdir { path = "/a/b" };
      Vfs.Syscall.Creat { path = "/a/b/f"; fd_var = 0 };
      Vfs.Syscall.Write { fd_var = 0; data = { seed = 9; len = 500 } };
      Vfs.Syscall.Truncate { path = "/a/b/f"; size = 200 };
      Vfs.Syscall.Link { src = "/a/b/f"; dst = "/a/ln" };
      Vfs.Syscall.Close { fd_var = 0 };
    ]
  in
  let _ = Vfs.Workload.run h calls in
  let before = Vfs.Walker.capture h in
  let h2 = remount pm driver in
  let after = Vfs.Walker.capture h2 in
  let diffs = Vfs.Walker.diff ~expected:before ~actual:after in
  if diffs <> [] then Alcotest.failf "remount diverged:\n%s" (String.concat "\n" diffs)

let test_remount_after_rename_overwrite () =
  let h, pm, driver = Helpers.nova_handle () in
  let calls =
    [
      Vfs.Syscall.Creat { path = "/x"; fd_var = 0 };
      Vfs.Syscall.Write { fd_var = 0; data = { seed = 1; len = 100 } };
      Vfs.Syscall.Creat { path = "/y"; fd_var = 1 };
      Vfs.Syscall.Write { fd_var = 1; data = { seed = 2; len = 50 } };
      Vfs.Syscall.Close { fd_var = 0 };
      Vfs.Syscall.Close { fd_var = 1 };
      Vfs.Syscall.Rename { src = "/x"; dst = "/y" };
    ]
  in
  let _ = Vfs.Workload.run h calls in
  let before = Vfs.Walker.capture h in
  let after = Vfs.Walker.capture (remount pm driver) in
  let diffs = Vfs.Walker.diff ~expected:before ~actual:after in
  if diffs <> [] then Alcotest.failf "remount diverged:\n%s" (String.concat "\n" diffs)

let test_log_extension () =
  (* Enough entries in one directory to force log-page extension. *)
  let h, pm, driver = Helpers.nova_handle () in
  let calls =
    List.concat_map
      (fun i ->
        [ Vfs.Syscall.Creat { path = Printf.sprintf "/file%02d" i; fd_var = i } ])
      (List.init 12 Fun.id)
  in
  let out = Vfs.Workload.run h calls in
  List.iter
    (fun (o : Vfs.Workload.outcome) ->
      if o.Vfs.Workload.ret < 0 then
        Alcotest.failf "creat %d failed: %d" o.Vfs.Workload.idx o.Vfs.Workload.ret)
    out;
  let before = Vfs.Walker.capture h in
  let after = Vfs.Walker.capture (remount pm driver) in
  let diffs = Vfs.Walker.diff ~expected:before ~actual:after in
  if diffs <> [] then Alcotest.failf "remount diverged:\n%s" (String.concat "\n" diffs)

let test_orphan_reclaimed_at_mount () =
  let h, pm, driver = Helpers.nova_handle () in
  let calls =
    [
      Vfs.Syscall.Creat { path = "/f"; fd_var = 0 };
      Vfs.Syscall.Write { fd_var = 0; data = { seed = 5; len = 100 } };
      Vfs.Syscall.Unlink { path = "/f" } (* fd still open: orphan *);
    ]
  in
  let _ = Vfs.Workload.run h calls in
  let h2 = remount pm driver in
  let tree = Vfs.Walker.capture h2 in
  Alcotest.(check int) "only root survives" 1 (List.length tree)

let test_fortis_remount () =
  let config = Novafs.config ~fortis:true () in
  let h, pm, driver = Helpers.nova_handle ~config () in
  let calls =
    [
      Vfs.Syscall.Mkdir { path = "/d" };
      Vfs.Syscall.Creat { path = "/d/f"; fd_var = 0 };
      Vfs.Syscall.Write { fd_var = 0; data = { seed = 11; len = 260 } };
      Vfs.Syscall.Truncate { path = "/d/f"; size = 100 };
      Vfs.Syscall.Close { fd_var = 0 };
    ]
  in
  let _ = Vfs.Workload.run h calls in
  let before = Vfs.Walker.capture h in
  let after = Vfs.Walker.capture (remount pm driver) in
  let diffs = Vfs.Walker.diff ~expected:before ~actual:after in
  if diffs <> [] then Alcotest.failf "fortis remount diverged:\n%s" (String.concat "\n" diffs)

let test_enospc () =
  let config = Novafs.config ~n_pages:40 () in
  let h, _, _ = Helpers.nova_handle ~config () in
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/big") in
  let rec fill i last =
    if i > 200 then last
    else
      match h.Vfs.Handle.write ~fd ~data:(String.make 128 'x') with
      | Ok _ -> fill (i + 1) `Ok
      | Error e -> `Err e
  in
  match fill 0 `Ok with
  | `Err Errno.ENOSPC -> ()
  | `Err e -> Alcotest.failf "expected ENOSPC, got %s" (Errno.to_string e)
  | `Ok -> Alcotest.fail "never ran out of space on a 40-page device"

let prop_random_workloads_match_oracle =
  QCheck.Test.make ~name:"nova matches oracle on random workloads" ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let calls = Helpers.random_workload ~rng ~len:25 in
      let h, _, _ = Helpers.nova_handle () in
      (try Helpers.against_oracle h calls
       with Alcotest.Test_error -> QCheck.Test.fail_report "oracle divergence");
      true)

let prop_remount_is_identity =
  QCheck.Test.make ~name:"remount preserves the tree on random workloads" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let calls = Helpers.random_workload ~rng ~len:20 in
      let h, pm, driver = Helpers.nova_handle () in
      let _ = Vfs.Workload.run h calls in
      let before = Vfs.Walker.capture h in
      match driver.Vfs.Driver.mount pm with
      | Error e -> QCheck.Test.fail_report ("remount failed: " ^ e)
      | Ok h2 ->
        let after = Vfs.Walker.capture h2 in
        let diffs = Vfs.Walker.diff ~expected:before ~actual:after in
        if diffs <> [] then QCheck.Test.fail_report (String.concat "\n" diffs);
        true)

let suite =
  [
    Alcotest.test_case "mkfs empty tree" `Quick test_mkfs_empty;
    Alcotest.test_case "basic ops match oracle" `Quick test_basic_ops_match_oracle;
    Alcotest.test_case "remount preserves tree" `Quick test_remount_preserves_tree;
    Alcotest.test_case "remount after rename overwrite" `Quick test_remount_after_rename_overwrite;
    Alcotest.test_case "log extension survives remount" `Quick test_log_extension;
    Alcotest.test_case "orphan reclaimed at mount" `Quick test_orphan_reclaimed_at_mount;
    Alcotest.test_case "fortis remount" `Quick test_fortis_remount;
    Alcotest.test_case "ENOSPC on small device" `Quick test_enospc;
    QCheck_alcotest.to_alcotest prop_random_workloads_match_oracle;
    QCheck_alcotest.to_alcotest prop_remount_is_identity;
  ]

(* --- white-box: failed multi-append ops must roll the volatile tail back --- *)

let test_failed_rename_rolls_tail_back () =
  let config = Novafs.config ~n_pages:64 () in
  let lay = Novafs.Layout.v config in
  let image = Pmem.Image.create ~size:lay.Novafs.Layout.size in
  let pm = Persist.Pm.create image in
  let t = Novafs.Fs.mkfs pm config in
  (* A few files so the root log has content and little page space left. *)
  let rec creat_some i =
    if i < 4 then (
      match Novafs.Fs.create t ~dir:0 ~name:(Printf.sprintf "file%d" i) with
      | Ok _ -> creat_some (i + 1)
      | Error _ -> ())
  in
  creat_some 0;
  (* Exhaust the allocator so any log extension fails. *)
  let alloc = t.Novafs.Fs.alloc in
  let rec drain () = match Blockalloc.alloc alloc with Ok _ -> drain () | Error _ -> () in
  drain ();
  let root = Result.get_ok (Novafs.Fs.getattr t ~ino:0) in
  ignore root;
  let media_tail () = Persist.Pm.read_u64 pm ~off:(Novafs.Layout.inode_off lay 0 + Novafs.Layout.i_tail) in
  let dram_tail () = (Hashtbl.find t.Novafs.Fs.inodes 0).Novafs.Fs.tail in
  Alcotest.(check int) "tails agree before" (media_tail ()) (dram_tail ());
  (* Rename to a long new name: appends a delete entry, then needs space
     for the add entry; with the allocator drained the extension fails. *)
  let rec try_renames i =
    if i >= 4 then None
    else
      match
        Novafs.Fs.rename t ~odir:0
          ~oname:(Printf.sprintf "file%d" i)
          ~ndir:0 ~nname:(Printf.sprintf "renamed-long-name-%d" i)
      with
      | Error e -> Some e
      | Ok () -> try_renames (i + 1)
  in
  match try_renames 0 with
  | None -> Alcotest.fail "no rename hit ENOSPC; test setup too roomy"
  | Some e ->
    Alcotest.(check string) "fails with ENOSPC" "ENOSPC" (Vfs.Errno.to_string e);
    (* The crucial invariant: the volatile tail was rolled back, so the
       orphaned delete entry can never be published by a later commit. *)
    Alcotest.(check int) "tails agree after failed rename" (media_tail ()) (dram_tail ())

let suite =
  suite
  @ [
      Alcotest.test_case "failed rename rolls the tail back" `Quick
        test_failed_rename_rolls_tail_back;
    ]

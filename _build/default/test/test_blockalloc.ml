(* Tests for the volatile page allocator. *)

let test_alloc_free () =
  let a = Blockalloc.create ~n_pages:8 in
  Alcotest.(check int) "all free" 8 (Blockalloc.free_count a);
  let p1 = Helpers.check_ok "alloc" (Blockalloc.alloc a) in
  let p2 = Helpers.check_ok "alloc" (Blockalloc.alloc a) in
  Alcotest.(check bool) "distinct" true (p1 <> p2);
  Alcotest.(check int) "used" 2 (Blockalloc.used_count a);
  Blockalloc.free a p1;
  Alcotest.(check bool) "freed not used" false (Blockalloc.is_used a p1);
  Alcotest.(check int) "used after free" 1 (Blockalloc.used_count a)

let test_exhaustion () =
  let a = Blockalloc.create ~n_pages:3 in
  let _ = Blockalloc.alloc a and _ = Blockalloc.alloc a and _ = Blockalloc.alloc a in
  Helpers.check_err "exhausted" Vfs.Errno.ENOSPC (Blockalloc.alloc a)

let test_double_free_faults () =
  let a = Blockalloc.create ~n_pages:4 in
  let p = Helpers.check_ok "alloc" (Blockalloc.alloc a) in
  Blockalloc.free a p;
  Alcotest.(check bool) "double free raises" true
    (try
       Blockalloc.free a p;
       false
     with Pmem.Fault.Device_fault _ -> true)

let test_double_claim_faults () =
  let a = Blockalloc.create ~n_pages:4 in
  Blockalloc.mark_used a 2;
  Alcotest.(check bool) "double claim raises" true
    (try
       Blockalloc.mark_used a 2;
       false
     with Pmem.Fault.Device_fault _ -> true)

let test_out_of_range_faults () =
  let a = Blockalloc.create ~n_pages:4 in
  Alcotest.(check bool) "range check" true
    (try
       Blockalloc.mark_used a 7;
       false
     with Pmem.Fault.Device_fault _ -> true)

let test_aligned () =
  let a = Blockalloc.create ~n_pages:16 in
  let p = Helpers.check_ok "aligned" (Blockalloc.alloc_aligned a ~align:4) in
  Alcotest.(check int) "aligned page" 0 (p mod 4);
  Blockalloc.mark_used a 4;
  Blockalloc.mark_used a 8;
  Blockalloc.mark_used a 12;
  (* Only unaligned pages remain free: fallback must still succeed. *)
  let q = Helpers.check_ok "fallback" (Blockalloc.alloc_aligned a ~align:4) in
  Alcotest.(check bool) "fallback unaligned" true (q mod 4 <> 0)

let test_alloc_at_least () =
  let a = Blockalloc.create ~n_pages:6 in
  let ps = Helpers.check_ok "batch" (Blockalloc.alloc_at_least a ~n:4) in
  Alcotest.(check int) "four pages" 4 (List.length ps);
  (* All-or-nothing: a failing batch must release what it took. *)
  Helpers.check_err "too many" Vfs.Errno.ENOSPC (Blockalloc.alloc_at_least a ~n:3);
  Alcotest.(check int) "rolled back" 4 (Blockalloc.used_count a)

let prop_alloc_unique =
  QCheck.Test.make ~name:"allocated pages are always distinct" ~count:100
    QCheck.(int_bound 30)
    (fun n ->
      let a = Blockalloc.create ~n_pages:32 in
      let pages = List.init n (fun _ -> Result.get_ok (Blockalloc.alloc a)) in
      List.length (List.sort_uniq compare pages) = n)

let suite =
  [
    Alcotest.test_case "alloc and free" `Quick test_alloc_free;
    Alcotest.test_case "exhaustion returns ENOSPC" `Quick test_exhaustion;
    Alcotest.test_case "double free faults" `Quick test_double_free_faults;
    Alcotest.test_case "double claim faults" `Quick test_double_claim_faults;
    Alcotest.test_case "out of range faults" `Quick test_out_of_range_faults;
    Alcotest.test_case "aligned allocation" `Quick test_aligned;
    Alcotest.test_case "batch alloc all-or-nothing" `Quick test_alloc_at_least;
    QCheck_alcotest.to_alcotest prop_alloc_unique;
  ]

(* The corpus-wide detection matrix: every catalogued bug instance must be
   detected by its trigger workload, and every clean file system must stay
   silent on every trigger — the repository-level statement of the paper's
   Table 1. *)

let test_every_bug_detected () =
  List.iter
    (fun (b : Catalog.t) ->
      let r = Chipmunk.Harness.test_workload (b.Catalog.driver ()) b.Catalog.trigger in
      if r.Chipmunk.Harness.reports = [] then
        Alcotest.failf "bug %d (%s) not detected by its trigger" b.Catalog.bug_no b.Catalog.fs)
    Catalog.all

let test_clean_silent_on_all_triggers () =
  List.iter
    (fun (name, mk) ->
      let driver = mk () in
      List.iter
        (fun (b : Catalog.t) ->
          let r = Chipmunk.Harness.test_workload driver b.Catalog.trigger in
          match r.Chipmunk.Harness.reports with
          | [] -> ()
          | rep :: _ ->
            Alcotest.failf "clean %s failed bug %d's trigger:\n%s" name b.Catalog.bug_no
              (Format.asprintf "%a" Chipmunk.Report.pp rep))
        Catalog.all)
    Catalog.clean_drivers

let test_catalog_shape () =
  Alcotest.(check int) "25 instances" 25 (List.length Catalog.all);
  Alcotest.(check int) "23 unique bugs" 23 Catalog.unique_bugs;
  Alcotest.(check int) "7 file systems" 7 (List.length Catalog.clean_drivers);
  let logic =
    List.filter (fun (b : Catalog.t) -> b.Catalog.bug_type = Catalog.Logic) Catalog.all
  in
  Alcotest.(check int) "19 logic instances" 19 (List.length logic)

let test_buggy_drivers_resolve () =
  List.iter
    (fun (name, _) ->
      match Catalog.buggy_driver name with
      | Some mk -> ignore (mk ())
      | None -> Alcotest.failf "no buggy driver for %s" name)
    Catalog.clean_drivers;
  Alcotest.(check bool) "unknown rejected" true (Catalog.buggy_driver "nope" = None)

let test_per_bug_cap2_detection () =
  (* The paper's Observation 7: a cap of two replayed writes per crash state
     is enough for the whole corpus. *)
  let opts = { Chipmunk.Harness.default_opts with cap = Some 2 } in
  List.iter
    (fun (b : Catalog.t) ->
      let r = Chipmunk.Harness.test_workload ~opts (b.Catalog.driver ()) b.Catalog.trigger in
      if r.Chipmunk.Harness.reports = [] then
        Alcotest.failf "bug %d (%s) missed with cap=2" b.Catalog.bug_no b.Catalog.fs)
    Catalog.all

let suite =
  [
    Alcotest.test_case "all 25 bug instances detected" `Quick test_every_bug_detected;
    Alcotest.test_case "clean systems silent on all triggers" `Quick test_clean_silent_on_all_triggers;
    Alcotest.test_case "catalog shape matches the paper" `Quick test_catalog_shape;
    Alcotest.test_case "buggy drivers resolve" `Quick test_buggy_drivers_resolve;
    Alcotest.test_case "cap=2 suffices for the corpus" `Quick test_per_bug_cap2_detection;
  ]

let test_all_reports_reproduce () =
  (* Every catalogued bug's first report must re-derive a crash state that
     still fails the checks (paper Figure 1: reports carry enough detail to
     reproduce the bug). *)
  List.iter
    (fun (b : Catalog.t) ->
      let driver = b.Catalog.driver () in
      let r = Chipmunk.Harness.test_workload driver b.Catalog.trigger in
      match r.Chipmunk.Harness.reports with
      | [] -> Alcotest.failf "bug %d: nothing to reproduce" b.Catalog.bug_no
      | report :: _ ->
        if not (Chipmunk.Reproduce.verify driver report) then
          Alcotest.failf "bug %d (%s): report did not reproduce" b.Catalog.bug_no b.Catalog.fs)
    Catalog.all

let suite =
  suite
  @ [ Alcotest.test_case "all 25 reports reproduce" `Quick test_all_reports_reproduce ]

(* A file-system-agnostic POSIX conformance suite.

   Every test takes a fresh handle factory, so the same behavioural
   contract is enforced on the oracle (memfs) and on all seven modelled PM
   file systems — the property the whole Chipmunk pipeline rests on: any
   semantic divergence between a file system and the oracle would show up
   as a false positive (or a masked bug) in crash checking. *)

module Types = Vfs.Types
module Errno = Vfs.Errno

let ok = Helpers.check_ok
let err = Helpers.check_err

type maker = unit -> Vfs.Handle.t

let creat_stat (mk : maker) () =
  let h = mk () in
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/foo") in
  let st = ok "fstat" (h.Vfs.Handle.fstat ~fd) in
  Alcotest.(check int) "size 0" 0 st.Types.st_size;
  Alcotest.(check int) "nlink 1" 1 st.Types.st_nlink;
  Alcotest.(check string) "kind" "reg" (Types.kind_to_string st.Types.st_kind);
  err "creat in missing dir" Errno.ENOENT (h.Vfs.Handle.creat ~path:"/nodir/foo");
  err "stat missing" Errno.ENOENT (h.Vfs.Handle.stat ~path:"/missing")

let write_read_roundtrip (mk : maker) () =
  let h = mk () in
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/f") in
  let payload = Vfs.Syscall.bytes { seed = 99; len = 321 } in
  Alcotest.(check int) "short write not allowed" 321
    (ok "write" (h.Vfs.Handle.write ~fd ~data:payload));
  Alcotest.(check string) "read back" payload (ok "rf" (h.Vfs.Handle.read_file ~path:"/f"));
  let fd2 = ok "open" (h.Vfs.Handle.open_ ~path:"/f" ~flags:[ Types.O_RDONLY ]) in
  Alcotest.(check string) "pread window" (String.sub payload 100 50)
    (ok "pread" (h.Vfs.Handle.pread ~fd:fd2 ~off:100 ~len:50));
  Alcotest.(check string) "pread clamps at EOF" (String.sub payload 300 21)
    (ok "pread tail" (h.Vfs.Handle.pread ~fd:fd2 ~off:300 ~len:500));
  Alcotest.(check string) "pread past EOF is empty" ""
    (ok "pread past" (h.Vfs.Handle.pread ~fd:fd2 ~off:1000 ~len:10))

let sparse_files (mk : maker) () =
  let h = mk () in
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/sparse") in
  let _ = ok "pwrite far" (h.Vfs.Handle.pwrite ~fd ~off:500 ~data:"tail") in
  let content = ok "rf" (h.Vfs.Handle.read_file ~path:"/sparse") in
  Alcotest.(check int) "size" 504 (String.length content);
  Alcotest.(check string) "hole reads zero" (String.make 500 '\000')
    (String.sub content 0 500);
  Alcotest.(check string) "tail" "tail" (String.sub content 500 4)

let overwrite_middle (mk : maker) () =
  let h = mk () in
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/f") in
  let _ = ok "base" (h.Vfs.Handle.write ~fd ~data:(String.make 300 'a')) in
  let _ = ok "patch" (h.Vfs.Handle.pwrite ~fd ~off:130 ~data:(String.make 40 'b')) in
  let content = ok "rf" (h.Vfs.Handle.read_file ~path:"/f") in
  Alcotest.(check int) "size unchanged" 300 (String.length content);
  Alcotest.(check char) "before patch" 'a' content.[129];
  Alcotest.(check char) "patch start" 'b' content.[130];
  Alcotest.(check char) "patch end" 'b' content.[169];
  Alcotest.(check char) "after patch" 'a' content.[170]

let append_mode (mk : maker) () =
  let h = mk () in
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/log") in
  let _ = ok "w" (h.Vfs.Handle.write ~fd ~data:"one") in
  ok "close" (h.Vfs.Handle.close ~fd);
  let fd = ok "append open" (h.Vfs.Handle.open_ ~path:"/log" ~flags:[ Types.O_WRONLY; Types.O_APPEND ]) in
  let _ = ok "seek to 0" (h.Vfs.Handle.lseek ~fd ~off:0 ~whence:Types.SEEK_SET) in
  let _ = ok "append" (h.Vfs.Handle.write ~fd ~data:"two") in
  Alcotest.(check string) "O_APPEND ignores offset" "onetwo"
    (ok "rf" (h.Vfs.Handle.read_file ~path:"/log"))

let lseek_semantics (mk : maker) () =
  let h = mk () in
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/f") in
  let _ = ok "w" (h.Vfs.Handle.write ~fd ~data:(String.make 100 'x')) in
  Alcotest.(check int) "SEEK_END" 90 (ok "se" (h.Vfs.Handle.lseek ~fd ~off:(-10) ~whence:Types.SEEK_END));
  Alcotest.(check int) "SEEK_CUR" 95 (ok "sc" (h.Vfs.Handle.lseek ~fd ~off:5 ~whence:Types.SEEK_CUR));
  Alcotest.(check int) "SEEK_SET" 7 (ok "ss" (h.Vfs.Handle.lseek ~fd ~off:7 ~whence:Types.SEEK_SET));
  err "negative position" Errno.EINVAL (h.Vfs.Handle.lseek ~fd ~off:(-1) ~whence:Types.SEEK_SET)

let directories (mk : maker) () =
  let h = mk () in
  ok "mkdir /a" (h.Vfs.Handle.mkdir ~path:"/a");
  ok "mkdir /a/b" (h.Vfs.Handle.mkdir ~path:"/a/b");
  err "mkdir exists" Errno.EEXIST (h.Vfs.Handle.mkdir ~path:"/a");
  err "mkdir missing parent" Errno.ENOENT (h.Vfs.Handle.mkdir ~path:"/x/y");
  let _ = ok "creat nested" (h.Vfs.Handle.creat ~path:"/a/b/f") in
  let names =
    List.map (fun d -> d.Types.d_name) (ok "readdir" (h.Vfs.Handle.readdir ~path:"/a"))
  in
  Alcotest.(check (list string)) "entries sorted" [ "b" ] names;
  err "readdir of file" Errno.ENOTDIR (h.Vfs.Handle.readdir ~path:"/a/b/f");
  err "rmdir nonempty" Errno.ENOTEMPTY (h.Vfs.Handle.rmdir ~path:"/a/b");
  ok "unlink" (h.Vfs.Handle.unlink ~path:"/a/b/f");
  ok "rmdir" (h.Vfs.Handle.rmdir ~path:"/a/b");
  ok "rmdir /a" (h.Vfs.Handle.rmdir ~path:"/a")

let dir_link_counts (mk : maker) () =
  let h = mk () in
  ok "mkdir /d" (h.Vfs.Handle.mkdir ~path:"/d");
  Alcotest.(check int) "fresh dir nlink" 2
    (ok "stat" (h.Vfs.Handle.stat ~path:"/d")).Types.st_nlink;
  ok "mkdir /d/s1" (h.Vfs.Handle.mkdir ~path:"/d/s1");
  ok "mkdir /d/s2" (h.Vfs.Handle.mkdir ~path:"/d/s2");
  Alcotest.(check int) "2 + subdirs" 4
    (ok "stat" (h.Vfs.Handle.stat ~path:"/d")).Types.st_nlink;
  ok "rmdir /d/s1" (h.Vfs.Handle.rmdir ~path:"/d/s1");
  Alcotest.(check int) "after rmdir" 3
    (ok "stat" (h.Vfs.Handle.stat ~path:"/d")).Types.st_nlink

let hard_links (mk : maker) () =
  let h = mk () in
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/f") in
  let _ = ok "w" (h.Vfs.Handle.write ~fd ~data:"shared") in
  ok "close" (h.Vfs.Handle.close ~fd);
  ok "link" (h.Vfs.Handle.link ~src:"/f" ~dst:"/g");
  Alcotest.(check int) "nlink 2" 2 (ok "stat" (h.Vfs.Handle.stat ~path:"/f")).Types.st_nlink;
  Alcotest.(check string) "same bytes" "shared" (ok "rf" (h.Vfs.Handle.read_file ~path:"/g"));
  (* Writes through one name are visible through the other. *)
  let fd = ok "open g" (h.Vfs.Handle.open_ ~path:"/g" ~flags:[ Types.O_RDWR ]) in
  let _ = ok "pw" (h.Vfs.Handle.pwrite ~fd ~off:0 ~data:"SHARED") in
  ok "close" (h.Vfs.Handle.close ~fd);
  Alcotest.(check string) "visible via f" "SHARED" (ok "rf" (h.Vfs.Handle.read_file ~path:"/f"));
  err "link over existing" Errno.EEXIST (h.Vfs.Handle.link ~src:"/f" ~dst:"/g");
  ok "mkdir" (h.Vfs.Handle.mkdir ~path:"/d");
  err "link directory" Errno.EPERM (h.Vfs.Handle.link ~src:"/d" ~dst:"/d2");
  ok "unlink one name" (h.Vfs.Handle.unlink ~path:"/f");
  Alcotest.(check int) "nlink back to 1" 1
    (ok "stat" (h.Vfs.Handle.stat ~path:"/g")).Types.st_nlink;
  Alcotest.(check string) "content survives" "SHARED" (ok "rf" (h.Vfs.Handle.read_file ~path:"/g"))

let rename_file (mk : maker) () =
  let h = mk () in
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/old") in
  let _ = ok "w" (h.Vfs.Handle.write ~fd ~data:"payload") in
  ok "close" (h.Vfs.Handle.close ~fd);
  ok "rename" (h.Vfs.Handle.rename ~src:"/old" ~dst:"/new");
  err "old gone" Errno.ENOENT (h.Vfs.Handle.stat ~path:"/old");
  Alcotest.(check string) "moved" "payload" (ok "rf" (h.Vfs.Handle.read_file ~path:"/new"));
  err "rename missing" Errno.ENOENT (h.Vfs.Handle.rename ~src:"/old" ~dst:"/x");
  ok "rename self" (h.Vfs.Handle.rename ~src:"/new" ~dst:"/new");
  Alcotest.(check string) "self no-op" "payload" (ok "rf" (h.Vfs.Handle.read_file ~path:"/new"))

let rename_overwrite (mk : maker) () =
  let h = mk () in
  let fd = ok "creat a" (h.Vfs.Handle.creat ~path:"/a") in
  let _ = ok "w a" (h.Vfs.Handle.write ~fd ~data:"winner") in
  ok "close" (h.Vfs.Handle.close ~fd);
  let fd = ok "creat b" (h.Vfs.Handle.creat ~path:"/b") in
  let _ = ok "w b" (h.Vfs.Handle.write ~fd ~data:"loser") in
  ok "close" (h.Vfs.Handle.close ~fd);
  ok "rename over" (h.Vfs.Handle.rename ~src:"/a" ~dst:"/b");
  err "a gone" Errno.ENOENT (h.Vfs.Handle.stat ~path:"/a");
  Alcotest.(check string) "b replaced" "winner" (ok "rf" (h.Vfs.Handle.read_file ~path:"/b"))

let rename_dirs (mk : maker) () =
  let h = mk () in
  ok "mkdir /d1" (h.Vfs.Handle.mkdir ~path:"/d1");
  ok "mkdir /d2" (h.Vfs.Handle.mkdir ~path:"/d2");
  ok "mkdir /d1/sub" (h.Vfs.Handle.mkdir ~path:"/d1/sub");
  let _ = ok "creat" (h.Vfs.Handle.creat ~path:"/d1/sub/f") in
  err "into own subtree" Errno.EINVAL (h.Vfs.Handle.rename ~src:"/d1" ~dst:"/d1/sub/x");
  err "onto nonempty" Errno.ENOTEMPTY (h.Vfs.Handle.rename ~src:"/d2" ~dst:"/d1");
  ok "move dir" (h.Vfs.Handle.rename ~src:"/d1/sub" ~dst:"/d2/moved");
  Alcotest.(check bool) "file moved along" true
    (Result.is_ok (h.Vfs.Handle.stat ~path:"/d2/moved/f"));
  Alcotest.(check int) "old parent nlink" 2
    (ok "stat d1" (h.Vfs.Handle.stat ~path:"/d1")).Types.st_nlink;
  Alcotest.(check int) "new parent nlink" 3
    (ok "stat d2" (h.Vfs.Handle.stat ~path:"/d2")).Types.st_nlink

let truncate_shrink_extend (mk : maker) () =
  let h = mk () in
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/f") in
  let payload = Vfs.Syscall.bytes { seed = 5; len = 400 } in
  let _ = ok "w" (h.Vfs.Handle.write ~fd ~data:payload) in
  ok "shrink" (h.Vfs.Handle.truncate ~path:"/f" ~size:123);
  Alcotest.(check string) "prefix kept" (String.sub payload 0 123)
    (ok "rf" (h.Vfs.Handle.read_file ~path:"/f"));
  ok "extend" (h.Vfs.Handle.truncate ~path:"/f" ~size:200);
  let content = ok "rf" (h.Vfs.Handle.read_file ~path:"/f") in
  Alcotest.(check int) "extended" 200 (String.length content);
  Alcotest.(check string) "zero filled" (String.make 77 '\000') (String.sub content 123 77);
  (* Old bytes must never resurrect past a shrink/extend cycle. *)
  ok "shrink again" (h.Vfs.Handle.truncate ~path:"/f" ~size:50);
  ok "extend again" (h.Vfs.Handle.truncate ~path:"/f" ~size:400);
  let content = ok "rf" (h.Vfs.Handle.read_file ~path:"/f") in
  Alcotest.(check string) "no stale data" (String.make 350 '\000') (String.sub content 50 350)

let fallocate_behaviour (mk : maker) () =
  let h = mk () in
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/f") in
  let _ = ok "w" (h.Vfs.Handle.write ~fd ~data:(String.make 100 'q')) in
  ok "keep_size" (h.Vfs.Handle.fallocate ~fd ~off:0 ~len:500 ~keep_size:true);
  Alcotest.(check int) "size kept" 100 (ok "st" (h.Vfs.Handle.fstat ~fd)).Types.st_size;
  ok "grow" (h.Vfs.Handle.fallocate ~fd ~off:150 ~len:100 ~keep_size:false);
  Alcotest.(check int) "size grown" 250 (ok "st" (h.Vfs.Handle.fstat ~fd)).Types.st_size;
  let content = ok "rf" (h.Vfs.Handle.read_file ~path:"/f") in
  Alcotest.(check string) "existing data intact" (String.make 100 'q') (String.sub content 0 100);
  Alcotest.(check string) "allocated region zero" (String.make 150 '\000')
    (String.sub content 100 150);
  err "bad args" Errno.EINVAL (h.Vfs.Handle.fallocate ~fd ~off:(-1) ~len:10 ~keep_size:false)

let open_flags (mk : maker) () =
  let h = mk () in
  let fd = ok "o_creat" (h.Vfs.Handle.open_ ~path:"/f" ~flags:[ Types.O_RDWR; Types.O_CREAT ]) in
  let _ = ok "w" (h.Vfs.Handle.write ~fd ~data:"xyz") in
  err "o_excl existing" Errno.EEXIST
    (h.Vfs.Handle.open_ ~path:"/f" ~flags:[ Types.O_CREAT; Types.O_EXCL ]);
  let _ = ok "o_trunc" (h.Vfs.Handle.open_ ~path:"/f" ~flags:[ Types.O_WRONLY; Types.O_TRUNC ]) in
  Alcotest.(check int) "truncated" 0 (ok "st" (h.Vfs.Handle.stat ~path:"/f")).Types.st_size;
  err "open missing" Errno.ENOENT (h.Vfs.Handle.open_ ~path:"/nope" ~flags:[ Types.O_RDONLY ]);
  err "write on O_RDONLY" Errno.EBADF
    (let fd = ok "ro" (h.Vfs.Handle.open_ ~path:"/f" ~flags:[ Types.O_RDONLY ]) in
     h.Vfs.Handle.write ~fd ~data:"no");
  err "bad fd" Errno.EBADF (h.Vfs.Handle.close ~fd:9999)

let orphan_files (mk : maker) () =
  let h = mk () in
  let fd =
    ok "creat" (h.Vfs.Handle.open_ ~path:"/doomed" ~flags:[ Types.O_RDWR; Types.O_CREAT ])
  in
  let _ = ok "w" (h.Vfs.Handle.write ~fd ~data:"still here") in
  ok "unlink while open" (h.Vfs.Handle.unlink ~path:"/doomed");
  err "name gone" Errno.ENOENT (h.Vfs.Handle.stat ~path:"/doomed");
  let _ = ok "write orphan" (h.Vfs.Handle.write ~fd ~data:"!") in
  Alcotest.(check string) "pread orphan" "here!"
    (ok "pr" (h.Vfs.Handle.pread ~fd ~off:6 ~len:5));
  ok "close reclaims" (h.Vfs.Handle.close ~fd)

let deep_paths (mk : maker) () =
  let h = mk () in
  ok "a" (h.Vfs.Handle.mkdir ~path:"/a");
  ok "b" (h.Vfs.Handle.mkdir ~path:"/a/b");
  ok "c" (h.Vfs.Handle.mkdir ~path:"/a/b/c");
  let _ = ok "creat deep" (h.Vfs.Handle.creat ~path:"/a/b/c/leaf") in
  Alcotest.(check bool) "dots resolve" true
    (Result.is_ok (h.Vfs.Handle.stat ~path:"/a/./b/../b/c/leaf"));
  err "file as dir" Errno.ENOTDIR (h.Vfs.Handle.stat ~path:"/a/b/c/leaf/under");
  err "name too long" Errno.ENAMETOOLONG
    (h.Vfs.Handle.mkdir ~path:("/a/" ^ String.make 300 'z'))

let remove_dispatch (mk : maker) () =
  let h = mk () in
  let _ = ok "creat" (h.Vfs.Handle.creat ~path:"/f") in
  ok "mkdir" (h.Vfs.Handle.mkdir ~path:"/d");
  ok "remove file" (h.Vfs.Handle.remove ~path:"/f");
  ok "remove dir" (h.Vfs.Handle.remove ~path:"/d");
  err "remove missing" Errno.ENOENT (h.Vfs.Handle.remove ~path:"/f")

let fsync_smoke (mk : maker) () =
  let h = mk () in
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/f") in
  let _ = ok "w" (h.Vfs.Handle.write ~fd ~data:"durable") in
  ok "fsync" (h.Vfs.Handle.fsync ~fd);
  ok "fdatasync" (h.Vfs.Handle.fdatasync ~fd);
  h.Vfs.Handle.sync ();
  Alcotest.(check string) "still readable" "durable" (ok "rf" (h.Vfs.Handle.read_file ~path:"/f"))

let suite ~prefix (mk : maker) =
  List.map
    (fun (name, f) -> Alcotest.test_case (prefix ^ ": " ^ name) `Quick (f mk))
    [
      ("creat and stat", creat_stat);
      ("write/read roundtrip", write_read_roundtrip);
      ("sparse files", sparse_files);
      ("overwrite middle", overwrite_middle);
      ("O_APPEND", append_mode);
      ("lseek", lseek_semantics);
      ("directories", directories);
      ("directory link counts", dir_link_counts);
      ("hard links", hard_links);
      ("rename file", rename_file);
      ("rename overwrite", rename_overwrite);
      ("rename directories", rename_dirs);
      ("truncate shrink/extend", truncate_shrink_extend);
      ("fallocate", fallocate_behaviour);
      ("open flags", open_flags);
      ("orphan files", orphan_files);
      ("deep paths and dots", deep_paths);
      ("remove dispatch", remove_dispatch);
      ("fsync family", fsync_smoke);
    ]

(* Failure-injection stress: tiny devices make allocations fail mid-
   operation (ENOSPC) and force SplitFS's staging-exhaustion and log-
   compaction paths. Two properties must survive regardless:

   - remount identity: the recovered state equals the pre-remount state
     (after a sync, for weak file systems) — failed operations must not
     leave divergent DRAM vs media state;
   - the recovery paths themselves must not raise or reject the image. *)

let tiny_drivers =
  [
    ("nova", fun () -> Novafs.driver ~config:(Novafs.config ~n_pages:80 ()) ());
    ( "nova-fortis",
      fun () -> Novafs.driver ~config:(Novafs.config ~fortis:true ~n_pages:96 ()) () );
    ("pmfs", fun () -> Pmfs.driver ~config:(Pmfs.config ~n_pages:80 ()) ());
    ("winefs", fun () -> Winefs.driver ~config:(Winefs.config ~n_pages:80 ()) ());
    ("ext4-dax", fun () -> Ext4dax.driver ~config:(Ext4dax.config ~n_pages:96 ()) ());
    ( "splitfs",
      fun () ->
        Splitfs.driver
          ~config:
            {
              Splitfs.default_config with
              Splitfs.Usplit.kernel =
                { Splitfs.default_config.Splitfs.Usplit.kernel with Ext4dax.Fs.n_pages = 160 };
            }
          () );
  ]

let prop name mk =
  QCheck.Test.make ~name:(name ^ ": remount identity under ENOSPC") ~count:120
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let (driver : Vfs.Driver.t) = mk () in
      let calls =
        Helpers.random_workload ~rng ~len:30
        @
        if driver.Vfs.Driver.consistency = Vfs.Driver.Weak then [ Vfs.Syscall.Sync ] else []
      in
      let image = Pmem.Image.create ~size:driver.Vfs.Driver.device_size in
      let pm = Persist.Pm.create image in
      let h = driver.Vfs.Driver.mkfs pm in
      let _ = Vfs.Workload.run h calls in
      let before = Vfs.Walker.capture h in
      match driver.Vfs.Driver.mount pm with
      | exception e -> QCheck.Test.fail_report ("mount raised: " ^ Printexc.to_string e)
      | Error e -> QCheck.Test.fail_report ("unmountable: " ^ e)
      | Ok h2 ->
        let diffs = Vfs.Walker.diff ~expected:before ~actual:(Vfs.Walker.capture h2) in
        if diffs <> [] then QCheck.Test.fail_report (String.concat "\n" diffs);
        true)

(* ENOSPC must be reported, not papered over: a workload that overfills a
   tiny device sees the error, and the device remains usable afterwards. *)
let test_enospc_reported_and_survivable () =
  List.iter
    (fun (name, mk) ->
      let (driver : Vfs.Driver.t) = mk () in
      let image = Pmem.Image.create ~size:driver.Vfs.Driver.device_size in
      let pm = Persist.Pm.create image in
      let h = driver.Vfs.Driver.mkfs pm in
      let fd = Helpers.check_ok (name ^ " creat") (h.Vfs.Handle.creat ~path:"/big") in
      let rec fill n saw_enospc =
        if n > 400 then saw_enospc
        else
          match h.Vfs.Handle.write ~fd ~data:(String.make 128 'x') with
          | Ok _ -> fill (n + 1) saw_enospc
          | Error Vfs.Errno.ENOSPC -> true
          | Error Vfs.Errno.EFBIG -> saw_enospc (* per-file cap hit first *)
          | Error e -> Alcotest.failf "%s: unexpected %s" name (Vfs.Errno.to_string e)
      in
      let saw = fill 0 false in
      ignore saw;
      (* The file system must still work for small operations. *)
      Helpers.check_ok (name ^ " post-pressure unlink") (h.Vfs.Handle.unlink ~path:"/big"))
    (List.filter (fun (n, _) -> n <> "splitfs") tiny_drivers)

let suite =
  List.map (fun (name, mk) -> QCheck_alcotest.to_alcotest (prop name mk)) tiny_drivers
  @ [
      Alcotest.test_case "ENOSPC reported and survivable" `Quick
        test_enospc_reported_and_survivable;
    ]

(* Tests for path handling and the POSIX layer (exercised over memfs). *)

module Types = Vfs.Types
module Errno = Vfs.Errno
module Path = Vfs.Path

let ok = Helpers.check_ok
let err = Helpers.check_err

let test_path_split () =
  let show = function
    | Ok parts -> "ok:" ^ String.concat "," parts
    | Error e -> "err:" ^ Errno.to_string e
  in
  Alcotest.(check string) "simple" "ok:a,b" (show (Path.split "/a/b"));
  Alcotest.(check string) "root" "ok:" (show (Path.split "/"));
  Alcotest.(check string) "dup slashes" "ok:a,b" (show (Path.split "//a///b/"));
  Alcotest.(check string) "dot" "ok:a,b" (show (Path.split "/a/./b"));
  Alcotest.(check string) "dotdot" "ok:b" (show (Path.split "/a/../b"));
  Alcotest.(check string) "dotdot at root" "ok:a" (show (Path.split "/../a"));
  Alcotest.(check string) "relative" "err:ENOENT" (show (Path.split "a/b"));
  Alcotest.(check string) "empty" "err:ENOENT" (show (Path.split ""))

let test_path_parent () =
  (match Path.split_parent "/a/b/c" with
  | Ok (parents, name) ->
    Alcotest.(check (list string)) "parents" [ "a"; "b" ] parents;
    Alcotest.(check string) "name" "c" name
  | Error _ -> Alcotest.fail "split_parent");
  (match Path.split_parent "/" with
  | Error Errno.EINVAL -> ()
  | _ -> Alcotest.fail "root has no parent");
  Alcotest.(check string) "basename" "c" (Path.basename "/a/b/c");
  Alcotest.(check string) "concat at root" "/x" (Path.concat "/" "x");
  Alcotest.(check string) "concat nested" "/a/x" (Path.concat "/a" "x")

let h () = Memfs.handle ()

let test_creat_stat () =
  let h = h () in
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/foo") in
  let st = ok "fstat" (h.Vfs.Handle.fstat ~fd) in
  Alcotest.(check int) "size 0" 0 st.Types.st_size;
  Alcotest.(check int) "nlink 1" 1 st.Types.st_nlink;
  err "creat in missing dir" Errno.ENOENT (h.Vfs.Handle.creat ~path:"/nodir/foo")

let test_write_read () =
  let h = h () in
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/foo") in
  let n = ok "write" (h.Vfs.Handle.write ~fd ~data:"hello world") in
  Alcotest.(check int) "wrote all" 11 n;
  let fd2 = ok "open" (h.Vfs.Handle.open_ ~path:"/foo" ~flags:[ Types.O_RDONLY ]) in
  Alcotest.(check string) "read back" "hello world" (ok "read" (h.Vfs.Handle.read ~fd:fd2 ~len:100));
  Alcotest.(check string) "pread mid" "world" (ok "pread" (h.Vfs.Handle.pread ~fd:fd2 ~off:6 ~len:5));
  err "write on rdonly" Errno.EBADF (h.Vfs.Handle.write ~fd:fd2 ~data:"x");
  (* Sparse write creates a zero-filled hole. *)
  let _ = ok "pwrite sparse" (h.Vfs.Handle.pwrite ~fd ~off:20 ~data:"end") in
  let content = ok "read_file" (h.Vfs.Handle.read_file ~path:"/foo") in
  Alcotest.(check int) "size with hole" 23 (String.length content);
  Alcotest.(check char) "hole is zero" '\000' content.[15]

let test_append_and_seek () =
  let h = h () in
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/log") in
  let _ = ok "w1" (h.Vfs.Handle.write ~fd ~data:"aaa") in
  let _ = ok "w2" (h.Vfs.Handle.write ~fd ~data:"bbb") in
  Alcotest.(check string) "sequential writes" "aaabbb"
    (ok "read_file" (h.Vfs.Handle.read_file ~path:"/log"));
  let fda = ok "open append" (h.Vfs.Handle.open_ ~path:"/log" ~flags:[ Types.O_WRONLY; Types.O_APPEND ]) in
  let _ = ok "pos0" (h.Vfs.Handle.lseek ~fd:fda ~off:0 ~whence:Types.SEEK_SET) in
  let _ = ok "append" (h.Vfs.Handle.write ~fd:fda ~data:"ccc") in
  Alcotest.(check string) "O_APPEND ignores offset" "aaabbbccc"
    (ok "read_file" (h.Vfs.Handle.read_file ~path:"/log"));
  let pos = ok "seek end" (h.Vfs.Handle.lseek ~fd:fda ~off:(-3) ~whence:Types.SEEK_END) in
  Alcotest.(check int) "SEEK_END" 6 pos

let test_mkdir_tree () =
  let h = h () in
  ok "mkdir /a" (h.Vfs.Handle.mkdir ~path:"/a");
  ok "mkdir /a/b" (h.Vfs.Handle.mkdir ~path:"/a/b");
  err "mkdir exists" Errno.EEXIST (h.Vfs.Handle.mkdir ~path:"/a");
  err "mkdir under file" Errno.ENOENT (h.Vfs.Handle.mkdir ~path:"/nope/x");
  let _ = ok "creat nested" (h.Vfs.Handle.creat ~path:"/a/b/f") in
  let entries = ok "readdir" (h.Vfs.Handle.readdir ~path:"/a") in
  Alcotest.(check (list string)) "entries" [ "b" ] (List.map (fun d -> d.Types.d_name) entries);
  let st = ok "stat /a" (h.Vfs.Handle.stat ~path:"/a") in
  Alcotest.(check int) "dir nlink 2+subdirs" 3 st.Types.st_nlink;
  err "rmdir nonempty" Errno.ENOTEMPTY (h.Vfs.Handle.rmdir ~path:"/a/b");
  ok "unlink file" (h.Vfs.Handle.unlink ~path:"/a/b/f");
  ok "rmdir" (h.Vfs.Handle.rmdir ~path:"/a/b");
  err "rmdir file" Errno.ENOENT (h.Vfs.Handle.rmdir ~path:"/a/b")

let test_link_unlink () =
  let h = h () in
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/f") in
  let _ = ok "write" (h.Vfs.Handle.write ~fd ~data:"data") in
  ok "link" (h.Vfs.Handle.link ~src:"/f" ~dst:"/g");
  let st = ok "stat" (h.Vfs.Handle.stat ~path:"/g") in
  Alcotest.(check int) "nlink 2" 2 st.Types.st_nlink;
  Alcotest.(check string) "same content" "data" (ok "read g" (h.Vfs.Handle.read_file ~path:"/g"));
  err "link existing dst" Errno.EEXIST (h.Vfs.Handle.link ~src:"/f" ~dst:"/g");
  ok "mkdir" (h.Vfs.Handle.mkdir ~path:"/d");
  err "link dir" Errno.EPERM (h.Vfs.Handle.link ~src:"/d" ~dst:"/d2");
  ok "unlink f" (h.Vfs.Handle.unlink ~path:"/f");
  let st = ok "stat g after unlink" (h.Vfs.Handle.stat ~path:"/g") in
  Alcotest.(check int) "nlink back to 1" 1 st.Types.st_nlink;
  err "unlink dir" Errno.EISDIR (h.Vfs.Handle.unlink ~path:"/d")

let test_rename () =
  let h = h () in
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/old") in
  let _ = ok "write" (h.Vfs.Handle.write ~fd ~data:"payload") in
  ok "rename" (h.Vfs.Handle.rename ~src:"/old" ~dst:"/new");
  err "old gone" Errno.ENOENT (h.Vfs.Handle.stat ~path:"/old");
  Alcotest.(check string) "content moved" "payload" (ok "read" (h.Vfs.Handle.read_file ~path:"/new"));
  (* Overwriting rename. *)
  let fd2 = ok "creat2" (h.Vfs.Handle.creat ~path:"/other") in
  let _ = ok "write2" (h.Vfs.Handle.write ~fd:fd2 ~data:"loser") in
  ok "rename overwrite" (h.Vfs.Handle.rename ~src:"/new" ~dst:"/other");
  Alcotest.(check string) "winner content" "payload"
    (ok "read winner" (h.Vfs.Handle.read_file ~path:"/other"));
  (* Directory renames. *)
  ok "mkdir /d1" (h.Vfs.Handle.mkdir ~path:"/d1");
  ok "mkdir /d2" (h.Vfs.Handle.mkdir ~path:"/d2");
  ok "mkdir /d1/sub" (h.Vfs.Handle.mkdir ~path:"/d1/sub");
  err "dir onto nonempty dir" Errno.ENOTEMPTY (h.Vfs.Handle.rename ~src:"/d2" ~dst:"/d1");
  err "dir into own subtree" Errno.EINVAL (h.Vfs.Handle.rename ~src:"/d1" ~dst:"/d1/sub/x");
  ok "dir onto empty dir" (h.Vfs.Handle.rename ~src:"/d1/sub" ~dst:"/d2");
  err "file onto dir" Errno.EISDIR (h.Vfs.Handle.rename ~src:"/other" ~dst:"/d2");
  ok "rename to self" (h.Vfs.Handle.rename ~src:"/other" ~dst:"/other");
  (* Renaming onto a hard link of the same inode is a no-op. *)
  ok "link" (h.Vfs.Handle.link ~src:"/other" ~dst:"/alias");
  ok "rename onto alias" (h.Vfs.Handle.rename ~src:"/other" ~dst:"/alias");
  Alcotest.(check bool) "both names remain" true
    (Result.is_ok (h.Vfs.Handle.stat ~path:"/other") && Result.is_ok (h.Vfs.Handle.stat ~path:"/alias"))

let test_truncate_fallocate () =
  let h = h () in
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/f") in
  let _ = ok "write" (h.Vfs.Handle.write ~fd ~data:"0123456789") in
  ok "shrink" (h.Vfs.Handle.truncate ~path:"/f" ~size:4);
  Alcotest.(check string) "shrunk" "0123" (ok "read" (h.Vfs.Handle.read_file ~path:"/f"));
  ok "extend" (h.Vfs.Handle.truncate ~path:"/f" ~size:8);
  Alcotest.(check string) "zero filled" "0123\000\000\000\000"
    (ok "read" (h.Vfs.Handle.read_file ~path:"/f"));
  ok "fallocate keep" (h.Vfs.Handle.fallocate ~fd ~off:0 ~len:100 ~keep_size:true);
  Alcotest.(check int) "size kept" 8
    (ok "stat" (h.Vfs.Handle.stat ~path:"/f")).Types.st_size;
  ok "fallocate grow" (h.Vfs.Handle.fallocate ~fd ~off:10 ~len:10 ~keep_size:false);
  Alcotest.(check int) "size grown" 20
    (ok "stat" (h.Vfs.Handle.stat ~path:"/f")).Types.st_size;
  err "truncate dir" Errno.EISDIR (h.Vfs.Handle.truncate ~path:"/" ~size:0);
  err "negative" Errno.EINVAL (h.Vfs.Handle.truncate ~path:"/f" ~size:(-1))

let test_orphan_file () =
  let h = h () in
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/doomed") in
  let _ = ok "write" (h.Vfs.Handle.write ~fd ~data:"still here") in
  ok "unlink while open" (h.Vfs.Handle.unlink ~path:"/doomed");
  err "name gone" Errno.ENOENT (h.Vfs.Handle.stat ~path:"/doomed");
  let st = ok "fstat orphan" (h.Vfs.Handle.fstat ~fd) in
  Alcotest.(check int) "nlink 0" 0 st.Types.st_nlink;
  let _ = ok "write orphan" (h.Vfs.Handle.write ~fd ~data:"!") in
  ok "close reclaims" (h.Vfs.Handle.close ~fd)

let test_open_flags () =
  let h = h () in
  let fd = ok "o_creat" (h.Vfs.Handle.open_ ~path:"/f" ~flags:[ Types.O_RDWR; Types.O_CREAT ]) in
  let _ = ok "w" (h.Vfs.Handle.write ~fd ~data:"xyz") in
  err "o_excl on existing" Errno.EEXIST
    (h.Vfs.Handle.open_ ~path:"/f" ~flags:[ Types.O_CREAT; Types.O_EXCL ]);
  let _ = ok "o_trunc" (h.Vfs.Handle.open_ ~path:"/f" ~flags:[ Types.O_WRONLY; Types.O_TRUNC ]) in
  Alcotest.(check int) "truncated" 0 (ok "stat" (h.Vfs.Handle.stat ~path:"/f")).Types.st_size;
  err "open missing" Errno.ENOENT (h.Vfs.Handle.open_ ~path:"/missing" ~flags:[ Types.O_RDONLY ]);
  err "write dir" Errno.EISDIR (h.Vfs.Handle.open_ ~path:"/" ~flags:[ Types.O_WRONLY ]);
  err "bad fd" Errno.EBADF (h.Vfs.Handle.close ~fd:999)

let test_remove () =
  let h = h () in
  let _ = ok "creat" (h.Vfs.Handle.creat ~path:"/f") in
  ok "mkdir" (h.Vfs.Handle.mkdir ~path:"/d");
  ok "remove file" (h.Vfs.Handle.remove ~path:"/f");
  ok "remove dir" (h.Vfs.Handle.remove ~path:"/d");
  err "remove missing" Errno.ENOENT (h.Vfs.Handle.remove ~path:"/f")

let test_name_validation () =
  let h = h () in
  err "280-char name" Errno.ENAMETOOLONG (h.Vfs.Handle.mkdir ~path:("/" ^ String.make 280 'a'))

let test_walker_capture_diff () =
  let h = h () in
  ok "mkdir" (h.Vfs.Handle.mkdir ~path:"/d");
  let fd = ok "creat" (h.Vfs.Handle.creat ~path:"/d/f") in
  let _ = ok "write" (h.Vfs.Handle.write ~fd ~data:"abc") in
  let t1 = Vfs.Walker.capture h in
  Alcotest.(check int) "three nodes" 3 (List.length t1);
  Alcotest.(check bool) "self equal" true (Vfs.Walker.equal t1 t1);
  let _ = ok "write more" (h.Vfs.Handle.write ~fd ~data:"def") in
  let t2 = Vfs.Walker.capture h in
  Alcotest.(check bool) "diverged" false (Vfs.Walker.equal t1 t2);
  let diffs = Vfs.Walker.diff ~expected:t1 ~actual:t2 in
  Alcotest.(check int) "one mismatch" 1 (List.length diffs)

let test_workload_executor () =
  let h = h () in
  let calls =
    [
      Vfs.Syscall.Mkdir { path = "/d" };
      Vfs.Syscall.Creat { path = "/d/f"; fd_var = 0 };
      Vfs.Syscall.Write { fd_var = 0; data = { seed = 42; len = 10 } };
      Vfs.Syscall.Close { fd_var = 0 };
      Vfs.Syscall.Write { fd_var = 0; data = { seed = 1; len = 1 } };
      (* closed: EBADF *)
      Vfs.Syscall.Unlink { path = "/missing" };
    ]
  in
  let out = Vfs.Workload.run h calls in
  let rets = List.map (fun (o : Vfs.Workload.outcome) -> o.Vfs.Workload.ret) out in
  Alcotest.(check (list int)) "returns"
    [ 0; 3; 10; 0; -Errno.to_code Errno.EBADF; -Errno.to_code Errno.ENOENT ]
    rets;
  Alcotest.(check int) "file written" 10
    (ok "stat" (h.Vfs.Handle.stat ~path:"/d/f")).Types.st_size

let test_deterministic_payload () =
  let a = Vfs.Syscall.bytes { seed = 7; len = 32 } in
  let b = Vfs.Syscall.bytes { seed = 7; len = 32 } in
  let c = Vfs.Syscall.bytes { seed = 8; len = 32 } in
  Alcotest.(check string) "same seed same bytes" a b;
  Alcotest.(check bool) "different seed differs" false (a = c)

let suite =
  [
    Alcotest.test_case "path split" `Quick test_path_split;
    Alcotest.test_case "path parent/basename" `Quick test_path_parent;
    Alcotest.test_case "creat and stat" `Quick test_creat_stat;
    Alcotest.test_case "write/read/pread holes" `Quick test_write_read;
    Alcotest.test_case "append and lseek" `Quick test_append_and_seek;
    Alcotest.test_case "mkdir tree and rmdir" `Quick test_mkdir_tree;
    Alcotest.test_case "link and unlink" `Quick test_link_unlink;
    Alcotest.test_case "rename semantics" `Quick test_rename;
    Alcotest.test_case "truncate and fallocate" `Quick test_truncate_fallocate;
    Alcotest.test_case "orphan files stay writable" `Quick test_orphan_file;
    Alcotest.test_case "open flags" `Quick test_open_flags;
    Alcotest.test_case "remove dispatches by kind" `Quick test_remove;
    Alcotest.test_case "name validation" `Quick test_name_validation;
    Alcotest.test_case "walker capture and diff" `Quick test_walker_capture_diff;
    Alcotest.test_case "workload executor" `Quick test_workload_executor;
    Alcotest.test_case "deterministic payloads" `Quick test_deterministic_payload;
  ]

(* --- workload serialization --- *)

let sample_workload =
  [
    Vfs.Syscall.Mkdir { path = "/d" };
    Vfs.Syscall.Creat { path = "/d/f"; fd_var = 0 };
    Vfs.Syscall.Open { path = "/d/f"; flags = [ Types.O_RDWR; Types.O_APPEND ]; fd_var = 1 };
    Vfs.Syscall.Write { fd_var = 1; data = { seed = 42; len = 420 } };
    Vfs.Syscall.Pwrite { fd_var = 1; off = 17; data = { seed = 7; len = 33 } };
    Vfs.Syscall.Read { fd_var = 1; len = 64 };
    Vfs.Syscall.Lseek { fd_var = 1; off = -3; whence = Types.SEEK_END };
    Vfs.Syscall.Link { src = "/d/f"; dst = "/g" };
    Vfs.Syscall.Rename { src = "/g"; dst = "/h" };
    Vfs.Syscall.Truncate { path = "/h"; size = 100 };
    Vfs.Syscall.Fallocate { fd_var = 1; off = 5; len = 50; keep_size = true };
    Vfs.Syscall.Fsync { fd_var = 1 };
    Vfs.Syscall.Fdatasync { fd_var = 1 };
    Vfs.Syscall.Close { fd_var = 1 };
    Vfs.Syscall.Setxattr { path = "/h"; name = "user.k"; value = "v1" };
    Vfs.Syscall.Removexattr { path = "/h"; name = "user.k" };
    Vfs.Syscall.Unlink { path = "/h" };
    Vfs.Syscall.Remove { path = "/d/f" };
    Vfs.Syscall.Rmdir { path = "/d" };
    Vfs.Syscall.Sync;
  ]

let test_workload_io_roundtrip () =
  let text = Vfs.Workload_io.to_string sample_workload in
  match Vfs.Workload_io.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok parsed ->
    Alcotest.(check bool) "roundtrip preserves every call" true (parsed = sample_workload)

let test_workload_io_errors () =
  let bad l =
    match Vfs.Workload_io.of_string l with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted garbage: %s" l
  in
  bad "explode /f";
  bad "creat /f notanumber";
  bad "write 0 seed=x len=1";
  bad "open /f O_BOGUS 0";
  (match Vfs.Workload_io.of_string "# only comments\n\n" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "comments/blank lines should parse to empty")

let test_workload_io_file_roundtrip () =
  let path = Filename.temp_file "chipmunk" ".workload" in
  Vfs.Workload_io.save ~path sample_workload;
  (match Vfs.Workload_io.load ~path with
  | Ok parsed -> Alcotest.(check bool) "file roundtrip" true (parsed = sample_workload)
  | Error e -> Alcotest.failf "load: %s" e);
  Sys.remove path

let suite =
  suite
  @ [
      Alcotest.test_case "workload serialization roundtrip" `Quick test_workload_io_roundtrip;
      Alcotest.test_case "workload parser rejects garbage" `Quick test_workload_io_errors;
      Alcotest.test_case "workload file save/load" `Quick test_workload_io_file_roundtrip;
    ]

(* PMFS / WineFS tests: oracle conformance, remount fidelity, and per-bug
   regressions for paper bugs 13-20. *)

module Syscall = Vfs.Syscall

let pmfs_handle ?(config = Pmfs.default_config) () =
  let driver = Pmfs.driver ~config () in
  let image = Pmem.Image.create ~size:driver.Vfs.Driver.device_size in
  let pm = Persist.Pm.create image in
  (driver.Vfs.Driver.mkfs pm, pm, driver)

let winefs_handle ?(config = Winefs.default_config) () =
  let driver = Winefs.driver ~config () in
  let image = Pmem.Image.create ~size:driver.Vfs.Driver.device_size in
  let pm = Persist.Pm.create image in
  (driver.Vfs.Driver.mkfs pm, pm, driver)

let remount pm (driver : Vfs.Driver.t) =
  match driver.Vfs.Driver.mount pm with
  | Ok h -> h
  | Error e -> Alcotest.failf "remount failed: %s" e

let scenario =
  [
    Syscall.Mkdir { path = "/d" };
    Syscall.Creat { path = "/d/file"; fd_var = 0 };
    Syscall.Write { fd_var = 0; data = { seed = 3; len = 500 } };
    Syscall.Pwrite { fd_var = 0; off = 50; data = { seed = 4; len = 33 } };
    Syscall.Link { src = "/d/file"; dst = "/hardlink" };
    Syscall.Rename { src = "/d/file"; dst = "/renamed" };
    Syscall.Truncate { path = "/renamed"; size = 123 };
    Syscall.Fallocate { fd_var = 0; off = 600; len = 100; keep_size = false };
    Syscall.Close { fd_var = 0 };
    Syscall.Unlink { path = "/hardlink" };
    Syscall.Truncate { path = "/renamed"; size = 700 };
  ]

let test_pmfs_conformance () =
  let h, _, _ = pmfs_handle () in
  Helpers.against_oracle h scenario

let test_winefs_conformance () =
  let h, _, _ = winefs_handle () in
  Helpers.against_oracle h scenario

let check_remount mk =
  let h, pm, driver = mk () in
  let _ = Vfs.Workload.run h scenario in
  let before = Vfs.Walker.capture h in
  let after = Vfs.Walker.capture (remount pm driver) in
  let diffs = Vfs.Walker.diff ~expected:before ~actual:after in
  if diffs <> [] then Alcotest.failf "remount diverged:\n%s" (String.concat "\n" diffs)

let test_pmfs_remount () = check_remount (fun () -> pmfs_handle ())
let test_winefs_remount () = check_remount (fun () -> winefs_handle ())

let prop_conformance name mk =
  QCheck.Test.make ~name ~count:50
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let calls = Helpers.random_workload ~rng ~len:25 in
      let h, _, _ = mk () in
      Helpers.against_oracle h calls;
      true)

let prop_remount name mk =
  QCheck.Test.make ~name ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let calls = Helpers.random_workload ~rng ~len:20 in
      let h, pm, (driver : Vfs.Driver.t) = mk () in
      let _ = Vfs.Workload.run h calls in
      let before = Vfs.Walker.capture h in
      match driver.Vfs.Driver.mount pm with
      | Error e -> QCheck.Test.fail_report ("remount failed: " ^ e)
      | Ok h2 ->
        let diffs = Vfs.Walker.diff ~expected:before ~actual:(Vfs.Walker.capture h2) in
        if diffs <> [] then QCheck.Test.fail_report (String.concat "\n" diffs);
        true)

(* --- crash-consistency bug regressions --- *)

let w_overwrite =
  [
    Syscall.Creat { path = "/foo"; fd_var = 0 };
    Syscall.Write { fd_var = 0; data = { seed = 1; len = 300 } };
    Syscall.Close { fd_var = 0 };
    Syscall.Open { path = "/foo"; flags = [ Vfs.Types.O_RDWR ]; fd_var = 1 };
    Syscall.Pwrite { fd_var = 1; off = 40; data = { seed = 2; len = 100 } };
    Syscall.Close { fd_var = 1 };
  ]

let w_truncate =
  [
    Syscall.Creat { path = "/foo"; fd_var = 0 };
    Syscall.Write { fd_var = 0; data = { seed = 5; len = 400 } };
    Syscall.Truncate { path = "/foo"; size = 100 };
    Syscall.Close { fd_var = 0 };
  ]

let w_unlink =
  [
    Syscall.Creat { path = "/foo"; fd_var = 0 };
    Syscall.Write { fd_var = 0; data = { seed = 6; len = 300 } };
    Syscall.Close { fd_var = 0 };
    Syscall.Unlink { path = "/foo" };
  ]

let w_metadata_mix =
  [
    Syscall.Creat { path = "/a"; fd_var = 0 };
    Syscall.Close { fd_var = 0 };
    Syscall.Link { src = "/a"; dst = "/b" };
    Syscall.Unlink { path = "/b" };
    Syscall.Rename { src = "/a"; dst = "/c" };
  ]

let w_multiblock_write =
  [
    Syscall.Creat { path = "/foo"; fd_var = 0 };
    Syscall.Write { fd_var = 0; data = { seed = 7; len = 400 } };
    Syscall.Close { fd_var = 0 };
    Syscall.Open { path = "/foo"; flags = [ Vfs.Types.O_RDWR ]; fd_var = 1 };
    Syscall.Pwrite { fd_var = 1; off = 0; data = { seed = 8; len = 384 } };
    Syscall.Close { fd_var = 1 };
  ]

let run_pmfs bugs w =
  let driver = Pmfs.driver ~config:(Pmfs.config ~bugs ()) () in
  Chipmunk.Harness.test_workload driver w

let run_winefs bugs w =
  let driver = Winefs.driver ~config:(Winefs.config ~bugs ()) () in
  Chipmunk.Harness.test_workload driver w

let expect run ~name bugs workloads pred =
  let reports = List.concat_map (fun w -> (run bugs w).Chipmunk.Harness.reports) workloads in
  if not (List.exists (fun r -> pred r.Chipmunk.Report.kind) reports) then
    Alcotest.failf "%s: expected kind not found among %d report(s): %s" name
      (List.length reports)
      (String.concat "; " (List.map Chipmunk.Report.summary reports))

let test_bug13 () =
  expect run_pmfs ~name:"bug13"
    { Pmfs.Bugs.none with bug13_truncate_replay = true }
    [ w_truncate; w_unlink ]
    (function Chipmunk.Report.Recovery_fault _ -> true | _ -> false)

let test_bug14_pmfs () =
  expect run_pmfs ~name:"bug14 pmfs"
    { Pmfs.Bugs.none with bug14_async_write = true }
    [ w_overwrite ]
    (function Chipmunk.Report.Synchrony _ -> true | _ -> false)

let test_bug15_winefs () =
  (* The unfenced fast path only exists in WineFS's relaxed (non-strict)
     mode; strict mode routes every write through the copy-on-write
     transaction. *)
  let bugs = { Winefs.Bugs.none with bug14_async_write = true } in
  let driver = Winefs.driver ~config:(Winefs.config ~bugs ~strict:false ()) () in
  let r = Chipmunk.Harness.test_workload driver w_overwrite in
  if
    not
      (List.exists
         (fun r ->
           match r.Chipmunk.Report.kind with Chipmunk.Report.Synchrony _ -> true | _ -> false)
         r.Chipmunk.Harness.reports)
  then Alcotest.fail "bug15: no synchrony report"

let test_bug16 () =
  expect run_pmfs ~name:"bug16"
    { Pmfs.Bugs.none with bug16_journal_oob = true }
    [ w_metadata_mix ]
    (function
      | Chipmunk.Report.Recovery_fault _ | Chipmunk.Report.Unmountable _
      | Chipmunk.Report.Synchrony _ | Chipmunk.Report.Atomicity _
      | Chipmunk.Report.Inaccessible _ ->
        true
      | _ -> false)

let test_bug17_pmfs () =
  expect run_pmfs ~name:"bug17 pmfs"
    { Pmfs.Bugs.none with bug17_unflushed_tail = true }
    [ w_overwrite ]
    (function Chipmunk.Report.Synchrony _ -> true | _ -> false)

let test_bug18_winefs () =
  (* WineFS strict mode copies whole blocks on write, so the unaligned-tail
     path only runs in relaxed mode. *)
  let bugs = { Winefs.Bugs.none with bug17_unflushed_tail = true } in
  let driver = Winefs.driver ~config:(Winefs.config ~bugs ~strict:false ()) () in
  let r = Chipmunk.Harness.test_workload driver w_overwrite in
  if
    not
      (List.exists
         (fun r ->
           match r.Chipmunk.Report.kind with Chipmunk.Report.Synchrony _ -> true | _ -> false)
         r.Chipmunk.Harness.reports)
  then Alcotest.fail "bug18: no synchrony report"

let test_bug19 () =
  expect run_winefs ~name:"bug19"
    { Winefs.Bugs.none with bug19_journal_index = true }
    [ w_metadata_mix; w_truncate ]
    (function
      | Chipmunk.Report.Inaccessible _ | Chipmunk.Report.Atomicity _
      | Chipmunk.Report.Synchrony _ | Chipmunk.Report.Unusable _ ->
        true
      | _ -> false)

let test_bug20 () =
  expect run_winefs ~name:"bug20"
    { Winefs.Bugs.none with bug20_torn_strict_write = true }
    [ w_multiblock_write ]
    (function
      | Chipmunk.Report.Atomicity _ | Chipmunk.Report.Torn_data _ -> true
      | _ -> false)

let test_clean_no_reports () =
  List.iter
    (fun w ->
      let r = run_pmfs Pmfs.Bugs.none w in
      (match r.Chipmunk.Harness.reports with
      | [] -> ()
      | rep :: _ ->
        Alcotest.failf "pmfs false positive:\n%s" (Format.asprintf "%a" Chipmunk.Report.pp rep));
      let r = run_winefs Winefs.Bugs.none w in
      match r.Chipmunk.Harness.reports with
      | [] -> ()
      | rep :: _ ->
        Alcotest.failf "winefs false positive:\n%s" (Format.asprintf "%a" Chipmunk.Report.pp rep))
    [ w_overwrite; w_truncate; w_unlink; w_metadata_mix; w_multiblock_write ]

let suite =
  [
    Alcotest.test_case "pmfs conformance" `Quick test_pmfs_conformance;
    Alcotest.test_case "winefs conformance" `Quick test_winefs_conformance;
    Alcotest.test_case "pmfs remount" `Quick test_pmfs_remount;
    Alcotest.test_case "winefs remount" `Quick test_winefs_remount;
    QCheck_alcotest.to_alcotest (prop_conformance "pmfs matches oracle" (fun () -> pmfs_handle ()));
    QCheck_alcotest.to_alcotest
      (prop_conformance "winefs matches oracle" (fun () -> winefs_handle ()));
    QCheck_alcotest.to_alcotest (prop_remount "pmfs remount identity" (fun () -> pmfs_handle ()));
    QCheck_alcotest.to_alcotest
      (prop_remount "winefs remount identity" (fun () -> winefs_handle ()));
    Alcotest.test_case "clean pmfs/winefs: no false positives" `Quick test_clean_no_reports;
    Alcotest.test_case "bug 13: truncate replay null deref" `Quick test_bug13;
    Alcotest.test_case "bug 14: pmfs write not synchronous" `Quick test_bug14_pmfs;
    Alcotest.test_case "bug 15: winefs write not synchronous" `Quick test_bug15_winefs;
    Alcotest.test_case "bug 16: unvalidated journal recovery" `Quick test_bug16;
    Alcotest.test_case "bug 17: pmfs unflushed tail" `Quick test_bug17_pmfs;
    Alcotest.test_case "bug 18: winefs unflushed tail" `Quick test_bug18_winefs;
    Alcotest.test_case "bug 19: per-CPU journal index" `Quick test_bug19;
    Alcotest.test_case "bug 20: torn strict write" `Quick test_bug20;
  ]

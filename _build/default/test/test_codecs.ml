(* Round-trip and robustness tests for the on-media codecs: NOVA log
   entries, the NOVA lite journal, the PMFS/WineFS undo journal, and the
   SplitFS operation log. Decoders must never crash on garbage — after a
   crash they read whatever bytes the subset replay left behind. *)

module Entry = Novafs.Entry

let gen_entry =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun ino name -> Entry.Dentry_add { ino; name; valid = true })
          (int_bound 1000)
          (string_size ~gen:(char_range 'a' 'z') (1 -- 20));
        map2
          (fun ino name -> Entry.Dentry_del { ino; name })
          (int_bound 1000)
          (string_size ~gen:(char_range 'a' 'z') (1 -- 20));
        map2
          (fun (file_off, new_size) pages ->
            Entry.File_write { file_off; new_size; len = 128 * List.length pages; pages })
          (pair (int_bound 10000) (int_bound 10000))
          (list_size (1 -- 8) (int_bound 1000));
        map2
          (fun new_size data_csum -> Entry.Setattr { new_size; data_csum })
          (int_bound 100000) (int_bound 0xFFFF);
      ])

let arb_entry = QCheck.make gen_entry

let prop_entry_roundtrip fortis =
  QCheck.Test.make
    ~name:(Printf.sprintf "nova entry roundtrip (fortis=%b)" fortis)
    ~count:300 arb_entry
    (fun e ->
      let encoded = Entry.encode ~fortis e in
      (* Decode from a page-like buffer with trailing zeros. *)
      let buf = encoded ^ String.make 32 '\000' in
      match Entry.decode ~fortis buf 0 with
      | Ok (d, len) -> len = String.length encoded && d = e
      | Error _ -> false)

let prop_entry_decode_never_crashes =
  QCheck.Test.make ~name:"nova entry decode survives garbage" ~count:500
    QCheck.(string_of_size QCheck.Gen.(0 -- 80))
    (fun junk ->
      match Entry.decode ~fortis:true junk 0 with
      | Ok _ | Error _ -> true)

let prop_entry_csum_detects_corruption =
  QCheck.Test.make ~name:"fortis checksum catches single-byte corruption" ~count:200
    QCheck.(pair arb_entry (int_bound 1000))
    (fun (e, flip) ->
      let encoded = Entry.encode ~fortis:true e in
      let pos = flip mod String.length encoded in
      let corrupted =
        String.mapi (fun i c -> if i = pos then Char.chr (Char.code c lxor 0x5A) else c) encoded
      in
      if corrupted = encoded then true
      else
        match Entry.decode ~fortis:true (corrupted ^ String.make 16 '\000') 0 with
        | Ok (d, _) -> d <> e (* length-field corruption may still decode, but never to e *)
        | Error _ -> true)

(* --- NOVA lite journal --- *)

let nova_setup () =
  let cfg = Novafs.default_config in
  let lay = Novafs.Layout.v cfg in
  let img = Pmem.Image.create ~size:lay.Novafs.Layout.size in
  (Persist.Pm.create img, lay)

let test_nova_journal_replay () =
  let pm, lay = nova_setup () in
  let records =
    [
      { Novafs.Journal.addr = 900; data = "hello" };
      { Novafs.Journal.addr = 950; data = "world!!" };
    ]
  in
  (* Commit but crash before apply: recovery must redo the records. *)
  Novafs.Journal.commit pm lay records;
  (match Novafs.Journal.recover pm lay with
  | Ok n -> Alcotest.(check int) "replayed" 2 n
  | Error e -> Alcotest.failf "recover: %s" e);
  Alcotest.(check string) "first applied" "hello" (Persist.Pm.read pm ~off:900 ~len:5);
  Alcotest.(check string) "second applied" "world!!" (Persist.Pm.read pm ~off:950 ~len:7);
  (* Cleared: a second recovery is a no-op. *)
  match Novafs.Journal.recover pm lay with
  | Ok 0 -> ()
  | Ok n -> Alcotest.failf "journal not cleared: replayed %d" n
  | Error e -> Alcotest.failf "second recover: %s" e

let test_nova_journal_uncommitted_ignored () =
  let pm, lay = nova_setup () in
  (* Write record bytes but never the valid flag: recovery must ignore. *)
  Persist.Pm.memcpy_nt pm ~off:(lay.Novafs.Layout.journal + 1) "\001garbage-record-bytes";
  Persist.Pm.fence pm;
  match Novafs.Journal.recover pm lay with
  | Ok 0 -> ()
  | Ok n -> Alcotest.failf "uncommitted journal replayed %d records" n
  | Error e -> Alcotest.failf "recover: %s" e

let test_nova_journal_validates_addresses () =
  let pm, lay = nova_setup () in
  (* A committed journal whose record points far outside the device. *)
  let b = Bytes.make 16 '\000' in
  Bytes.set b 0 '\001';
  (* count *)
  Bytes.set_int32_le b 1 (Int32.of_int 99_999_999);
  Bytes.set b 5 (Char.chr 8);
  Persist.Pm.memcpy_nt pm ~off:(lay.Novafs.Layout.journal + 1) (Bytes.to_string b);
  Persist.Pm.memcpy_nt pm ~off:lay.Novafs.Layout.journal "\001";
  Persist.Pm.fence pm;
  match Novafs.Journal.recover pm lay with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range record accepted"

(* --- Undo journal (PMFS/WineFS) --- *)

let undo_setup () =
  let img = Pmem.Image.create ~size:4096 in
  (Persist.Pm.create img, { Pmcommon.Undo_journal.base = 1024; space = 512 })

let test_undo_journal_rollback () =
  let pm, j = undo_setup () in
  Persist.Pm.memcpy_nt pm ~off:100 "original-contents";
  Persist.Pm.fence pm;
  Pmcommon.Undo_journal.begin_tx pm j ~spans:[ (100, 17) ];
  Persist.Pm.memcpy_nt pm ~off:100 "clobbered-after!!";
  (* Crash before end_tx: recovery rolls the span back. *)
  (match Pmcommon.Undo_journal.recover pm j ~device_size:4096 with
  | Ok n -> Alcotest.(check int) "one span" 1 n
  | Error e -> Alcotest.failf "recover: %s" e);
  Alcotest.(check string) "rolled back" "original-contents"
    (Persist.Pm.read pm ~off:100 ~len:17)

let test_undo_journal_completed_tx_not_rolled_back () =
  let pm, j = undo_setup () in
  Persist.Pm.memcpy_nt pm ~off:100 "before";
  Persist.Pm.fence pm;
  Pmcommon.Undo_journal.begin_tx pm j ~spans:[ (100, 6) ];
  Persist.Pm.memcpy_nt pm ~off:100 "after!";
  Pmcommon.Undo_journal.end_tx pm j;
  (match Pmcommon.Undo_journal.recover pm j ~device_size:4096 with
  | Ok 0 -> ()
  | Ok n -> Alcotest.failf "cleared journal replayed %d" n
  | Error e -> Alcotest.failf "recover: %s" e);
  Alcotest.(check string) "kept" "after!" (Persist.Pm.read pm ~off:100 ~len:6)

let prop_undo_journal_roundtrip =
  QCheck.Test.make ~name:"undo journal restores arbitrary spans" ~count:100
    QCheck.(small_list (pair (int_range 0 3000) (int_range 1 30)))
    (fun raw_spans ->
      let pm, j = undo_setup () in
      (* Pre-fill with a pattern, avoiding the journal area itself. *)
      for i = 0 to 4095 do
        Pmem.Image.write_u8 (Persist.Pm.image pm) ~off:i (i * 13 mod 251)
      done;
      let spans =
        List.filteri (fun i _ -> i < 8)
          (List.filter (fun (off, len) -> off + len <= 1024 || off >= 1536) raw_spans)
      in
      let snap = Pmem.Image.snapshot (Persist.Pm.image pm) in
      if spans = [] then true
      else begin
        Pmcommon.Undo_journal.begin_tx pm j ~spans;
        List.iter
          (fun (off, len) -> Persist.Pm.memset_nt pm ~off ~len 'Z')
          spans;
        (* Crash before end_tx. *)
        match Pmcommon.Undo_journal.recover pm j ~device_size:4096 with
        | Error _ -> false
        | Ok _ ->
          (* Everything outside the journal region must be restored. *)
          let ok = ref true in
          List.iter
            (fun (off, len) ->
              if Pmem.Image.read (Persist.Pm.image pm) ~off ~len
                 <> Pmem.Image.read snap ~off ~len
              then ok := false)
            spans;
          !ok
      end)

let suite =
  [
    QCheck_alcotest.to_alcotest (prop_entry_roundtrip false);
    QCheck_alcotest.to_alcotest (prop_entry_roundtrip true);
    QCheck_alcotest.to_alcotest prop_entry_decode_never_crashes;
    QCheck_alcotest.to_alcotest prop_entry_csum_detects_corruption;
    Alcotest.test_case "nova journal redo replay" `Quick test_nova_journal_replay;
    Alcotest.test_case "nova journal ignores uncommitted" `Quick
      test_nova_journal_uncommitted_ignored;
    Alcotest.test_case "nova journal validates addresses" `Quick
      test_nova_journal_validates_addresses;
    Alcotest.test_case "undo journal rollback" `Quick test_undo_journal_rollback;
    Alcotest.test_case "undo journal keeps completed tx" `Quick
      test_undo_journal_completed_tx_not_rolled_back;
    QCheck_alcotest.to_alcotest prop_undo_journal_roundtrip;
  ]

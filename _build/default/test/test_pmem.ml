(* Unit and property tests for the PM device model. *)

module Image = Pmem.Image
module Const = Pmem.Const

let test_create_zeroed () =
  let img = Image.create ~size:256 in
  Alcotest.(check int) "size" 256 (Image.size img);
  Alcotest.(check string) "zeroed" (String.make 256 '\000') (Image.read img ~off:0 ~len:256)

let test_rw_roundtrip () =
  let img = Image.create ~size:256 in
  Image.write_string img ~off:10 "hello";
  Alcotest.(check string) "read back" "hello" (Image.read img ~off:10 ~len:5);
  Image.write_u64 img ~off:64 0x1122334455667788;
  Alcotest.(check int) "u64" 0x1122334455667788 (Image.read_u64 img ~off:64);
  Image.write_u32 img ~off:100 0xDEADBEEF;
  Alcotest.(check int) "u32" 0xDEADBEEF (Image.read_u32 img ~off:100);
  Image.write_u16 img ~off:104 0xBEEF;
  Alcotest.(check int) "u16" 0xBEEF (Image.read_u16 img ~off:104);
  Image.write_u8 img ~off:106 0xAB;
  Alcotest.(check int) "u8" 0xAB (Image.read_u8 img ~off:106)

let test_bounds () =
  let img = Image.create ~size:64 in
  let oob f = try f (); false with Pmem.Fault.Out_of_bounds _ -> true in
  Alcotest.(check bool) "read past end" true (oob (fun () -> ignore (Image.read img ~off:60 ~len:8)));
  Alcotest.(check bool) "negative off" true (oob (fun () -> ignore (Image.read img ~off:(-1) ~len:1)));
  Alcotest.(check bool) "write past end" true (oob (fun () -> Image.write_string img ~off:63 "xy"));
  Alcotest.(check bool) "u64 at end" true (oob (fun () -> ignore (Image.read_u64 img ~off:57)))

let test_snapshot_restore () =
  let img = Image.create ~size:128 in
  Image.write_string img ~off:0 "abc";
  let snap = Image.snapshot img in
  Image.write_string img ~off:0 "xyz";
  Alcotest.(check bool) "diverged" false (Image.equal img snap);
  Image.restore img ~from:snap;
  Alcotest.(check bool) "restored" true (Image.equal img snap);
  Alcotest.(check string) "content" "abc" (Image.read img ~off:0 ~len:3)

let test_const () =
  Alcotest.(check int) "line_of" 1 (Const.line_of 64);
  Alcotest.(check int) "line_base" 64 (Const.line_base 127);
  Alcotest.(check bool) "aligned u64 atomic" true (Const.is_atomic ~off:8 ~len:8);
  Alcotest.(check bool) "crossing u64 not atomic" false (Const.is_atomic ~off:4 ~len:8);
  Alcotest.(check bool) "small write atomic" true (Const.is_atomic ~off:17 ~len:2);
  Alcotest.(check bool) "zero len not atomic" false (Const.is_atomic ~off:0 ~len:0)

let test_checksum () =
  Alcotest.(check int) "crc32 of empty" 0 (Pmem.Checksum.crc32 "");
  (* Known value for "123456789" per the CRC-32/IEEE test vector. *)
  Alcotest.(check int) "crc32 vector" 0xCBF43926 (Pmem.Checksum.crc32 "123456789");
  Alcotest.(check int) "sub matches whole"
    (Pmem.Checksum.crc32 "456")
    (Pmem.Checksum.crc32_sub "123456789" ~pos:3 ~len:3)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_hexdump () =
  let img = Image.create ~size:32 in
  Image.write_string img ~off:0 "AB";
  let dump = Pmem.Image.hexdump img in
  Alcotest.(check bool) "mentions bytes" true (contains ~sub:"41 42" dump)

let prop_snapshot_independent =
  QCheck.Test.make ~name:"snapshot is independent of later writes" ~count:100
    QCheck.(pair (int_bound 200) (string_of_size Gen.(1 -- 20)))
    (fun (off, s) ->
      let img = Image.create ~size:256 in
      let snap = Image.snapshot img in
      let off = min off (256 - String.length s - 1) in
      if String.length s = 0 then true
      else begin
        Image.write_string img ~off s;
        Image.read snap ~off ~len:(String.length s) = String.make (String.length s) '\000'
      end)

let suite =
  [
    Alcotest.test_case "create zeroed" `Quick test_create_zeroed;
    Alcotest.test_case "read/write roundtrip" `Quick test_rw_roundtrip;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
    Alcotest.test_case "constants" `Quick test_const;
    Alcotest.test_case "crc32" `Quick test_checksum;
    Alcotest.test_case "hexdump" `Quick test_hexdump;
    QCheck_alcotest.to_alcotest prop_snapshot_independent;
  ]

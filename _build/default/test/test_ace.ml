(* Tests for the ACE workload generator. *)

module S = Vfs.Syscall

let test_suite_sizes () =
  let n1 = Ace.count (Ace.seq1 Ace.Strong) in
  let n2 = Ace.count (Ace.seq2 Ace.Strong) in
  Alcotest.(check int) "seq1 = |ops|" (List.length Ace.core_ops) n1;
  Alcotest.(check int) "seq2 = |ops|^2" (n1 * n1) n2;
  Alcotest.(check bool) "seq3 metadata space smaller" true
    (List.length Ace.metadata_ops < List.length Ace.core_ops)

let test_names_stable () =
  let names l = List.of_seq (Seq.map fst (Seq.take 3 l)) in
  Alcotest.(check (list string)) "stable naming"
    [ "seq1-00000"; "seq1-00001"; "seq1-00002" ]
    (names (Ace.seq1 Ace.Strong))

let all_valid_on_oracle mode suite =
  Seq.iter
    (fun (name, w) ->
      let h = Memfs.handle () in
      let out = Vfs.Workload.run h w in
      List.iter
        (fun (o : Vfs.Workload.outcome) ->
          (* ACE satisfies dependencies, so only benign failures remain:
             rename/overwrite cases may hit ENOTEMPTY or EEXIST. *)
          if o.Vfs.Workload.ret < 0 then
            let e = -o.Vfs.Workload.ret in
            if
              e <> Vfs.Errno.to_code Vfs.Errno.ENOTEMPTY
              && e <> Vfs.Errno.to_code Vfs.Errno.EEXIST
              && e <> Vfs.Errno.to_code Vfs.Errno.EINVAL
            then
              Alcotest.failf "%s: %s failed with %d" name
                (S.to_string o.Vfs.Workload.call) o.Vfs.Workload.ret)
        out;
      ignore mode)
    suite

let test_seq1_valid () = all_valid_on_oracle Ace.Strong (Ace.seq1 Ace.Strong)
let test_seq2_valid () = all_valid_on_oracle Ace.Strong (Seq.take 800 (Ace.seq2 Ace.Strong))
let test_seq3_valid () =
  all_valid_on_oracle Ace.Strong (Seq.take 500 (Ace.seq3_metadata Ace.Strong))

let test_strong_mode_has_no_fsync () =
  Seq.iter
    (fun (_, w) ->
      if List.exists S.is_fsync_family w then Alcotest.fail "fsync in strong-mode workload")
    (Ace.seq1 Ace.Strong)

let test_fsync_mode_syncs () =
  Seq.iter
    (fun (name, w) ->
      if not (List.exists S.is_fsync_family w) then
        Alcotest.failf "%s: no fsync-family call in Fsync mode" name;
      match List.rev w with
      | S.Sync :: _ -> ()
      | _ -> Alcotest.failf "%s: Fsync-mode workload does not end with sync" name)
    (Ace.seq1 Ace.Fsync)

let test_fds_balanced () =
  (* Every opened descriptor is closed by the end of the workload. *)
  Seq.iter
    (fun (name, w) ->
      let open_vars = Hashtbl.create 8 in
      List.iter
        (fun call ->
          match call with
          | S.Creat { fd_var; _ } | S.Open { fd_var; _ } -> Hashtbl.replace open_vars fd_var ()
          | S.Close { fd_var } -> Hashtbl.remove open_vars fd_var
          | _ -> ())
        w;
      if Hashtbl.length open_vars <> 0 then Alcotest.failf "%s: leaked descriptors" name)
    (Seq.append (Ace.seq1 Ace.Strong) (Seq.take 500 (Ace.seq2 Ace.Strong)))

let test_expand_is_deterministic () =
  let w1 = List.of_seq (Seq.take 50 (Ace.seq2 Ace.Strong)) in
  let w2 = List.of_seq (Seq.take 50 (Ace.seq2 Ace.Strong)) in
  Alcotest.(check bool) "same workloads on re-enumeration" true (w1 = w2)

let test_core_to_string () =
  List.iter
    (fun c -> Alcotest.(check bool) "nonempty" true (String.length (Ace.core_to_string c) > 0))
    Ace.core_ops

let suite =
  [
    Alcotest.test_case "suite sizes" `Quick test_suite_sizes;
    Alcotest.test_case "stable names" `Quick test_names_stable;
    Alcotest.test_case "seq1 dependencies satisfied" `Quick test_seq1_valid;
    Alcotest.test_case "seq2 dependencies satisfied (sample)" `Quick test_seq2_valid;
    Alcotest.test_case "seq3 dependencies satisfied (sample)" `Quick test_seq3_valid;
    Alcotest.test_case "strong mode has no fsync" `Quick test_strong_mode_has_no_fsync;
    Alcotest.test_case "fsync mode inserts syncs" `Quick test_fsync_mode_syncs;
    Alcotest.test_case "descriptors balanced" `Quick test_fds_balanced;
    Alcotest.test_case "enumeration deterministic" `Quick test_expand_is_deterministic;
    Alcotest.test_case "core op rendering" `Quick test_core_to_string;
  ]

(* SplitFS and ext4-DAX tests: conformance, remount fidelity, and
   regressions for paper bugs 21-25. *)

module Syscall = Vfs.Syscall

let mk (driver : Vfs.Driver.t) =
  let image = Pmem.Image.create ~size:driver.Vfs.Driver.device_size in
  let pm = Persist.Pm.create image in
  (driver.Vfs.Driver.mkfs pm, pm, driver)

let scenario =
  [
    Syscall.Mkdir { path = "/d" };
    Syscall.Creat { path = "/d/file"; fd_var = 0 };
    Syscall.Write { fd_var = 0; data = { seed = 3; len = 500 } };
    Syscall.Pwrite { fd_var = 0; off = 50; data = { seed = 4; len = 33 } };
    Syscall.Fsync { fd_var = 0 };
    Syscall.Link { src = "/d/file"; dst = "/hardlink" };
    Syscall.Rename { src = "/d/file"; dst = "/renamed" };
    Syscall.Truncate { path = "/renamed"; size = 123 };
    Syscall.Write { fd_var = 0; data = { seed = 6; len = 150 } };
    Syscall.Close { fd_var = 0 };
    Syscall.Unlink { path = "/hardlink" };
    Syscall.Sync;
  ]

let test_splitfs_conformance () =
  let h, _, _ = mk (Splitfs.driver ()) in
  Helpers.against_oracle h scenario

let test_ext4dax_conformance () =
  let h, _, _ = mk (Ext4dax.driver ()) in
  Helpers.against_oracle h scenario

let test_xfsdax_conformance () =
  let h, _, _ = mk (Ext4dax.driver ~config:(Ext4dax.config ~xfs:true ()) ()) in
  Helpers.against_oracle h scenario

let check_remount driver =
  let h, pm, (driver : Vfs.Driver.t) = mk driver in
  let _ = Vfs.Workload.run h scenario in
  let before = Vfs.Walker.capture h in
  match driver.Vfs.Driver.mount pm with
  | Error e -> Alcotest.failf "remount failed: %s" e
  | Ok h2 ->
    let diffs = Vfs.Walker.diff ~expected:before ~actual:(Vfs.Walker.capture h2) in
    if diffs <> [] then Alcotest.failf "remount diverged:\n%s" (String.concat "\n" diffs)

let test_splitfs_remount () = check_remount (Splitfs.driver ())
let test_ext4dax_remount () = check_remount (Ext4dax.driver ())

(* SplitFS survives a remount even without a trailing sync: its op log must
   reconstruct everything (ext4-DAX alone would legitimately lose state). *)
let test_splitfs_log_replay () =
  let h, pm, driver = mk (Splitfs.driver ()) in
  let calls =
    [
      Syscall.Mkdir { path = "/d" };
      Syscall.Creat { path = "/d/f"; fd_var = 0 };
      Syscall.Write { fd_var = 0; data = { seed = 11; len = 300 } };
      Syscall.Rename { src = "/d/f"; dst = "/d/g" };
      Syscall.Close { fd_var = 0 };
    ]
  in
  let _ = Vfs.Workload.run h calls in
  let before = Vfs.Walker.capture h in
  match driver.Vfs.Driver.mount pm with
  | Error e -> Alcotest.failf "mount failed: %s" e
  | Ok h2 ->
    let diffs = Vfs.Walker.diff ~expected:before ~actual:(Vfs.Walker.capture h2) in
    if diffs <> [] then Alcotest.failf "log replay diverged:\n%s" (String.concat "\n" diffs)

let prop_splitfs_conformance =
  QCheck.Test.make ~name:"splitfs matches oracle on random workloads" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let calls = Helpers.random_workload ~rng ~len:20 in
      let h, _, _ = mk (Splitfs.driver ()) in
      Helpers.against_oracle h calls;
      true)

let prop_splitfs_remount =
  QCheck.Test.make ~name:"splitfs log replay on random workloads" ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let calls = Helpers.random_workload ~rng ~len:15 in
      let h, pm, (driver : Vfs.Driver.t) = mk (Splitfs.driver ()) in
      let _ = Vfs.Workload.run h calls in
      let before = Vfs.Walker.capture h in
      match driver.Vfs.Driver.mount pm with
      | Error e -> QCheck.Test.fail_report ("mount failed: " ^ e)
      | Ok h2 ->
        let diffs = Vfs.Walker.diff ~expected:before ~actual:(Vfs.Walker.capture h2) in
        if diffs <> [] then QCheck.Test.fail_report (String.concat "\n" diffs);
        true)

(* --- bug regressions --- *)

let w_metadata =
  [
    Syscall.Mkdir { path = "/d" };
    Syscall.Creat { path = "/d/f"; fd_var = 0 };
    Syscall.Close { fd_var = 0 };
    Syscall.Link { src = "/d/f"; dst = "/ln" };
    Syscall.Unlink { path = "/ln" };
  ]

let w_write =
  [
    Syscall.Creat { path = "/f"; fd_var = 0 };
    Syscall.Write { fd_var = 0; data = { seed = 1; len = 300 } };
    Syscall.Close { fd_var = 0 };
  ]

let w_write_fsync =
  [
    Syscall.Creat { path = "/f"; fd_var = 0 };
    Syscall.Write { fd_var = 0; data = { seed = 1; len = 300 } };
    Syscall.Fsync { fd_var = 0 };
    Syscall.Close { fd_var = 0 };
  ]

let w_rename =
  [
    Syscall.Creat { path = "/old"; fd_var = 0 };
    Syscall.Write { fd_var = 0; data = { seed = 2; len = 120 } };
    Syscall.Close { fd_var = 0 };
    Syscall.Rename { src = "/old"; dst = "/new" };
  ]

let w_many_metadata =
  (* Enough log entries to straddle log-page boundaries (bug 24). *)
  List.concat_map
    (fun i ->
      [
        Syscall.Creat { path = Printf.sprintf "/somefile%02d" i; fd_var = i };
        Syscall.Close { fd_var = i };
      ])
    (List.init 16 Fun.id)

let run bugs w =
  let driver = Splitfs.driver ~config:(Splitfs.config ~bugs ()) () in
  Chipmunk.Harness.test_workload driver w

let expect ~name bugs workloads pred =
  let reports = List.concat_map (fun w -> (run bugs w).Chipmunk.Harness.reports) workloads in
  if not (List.exists (fun r -> pred r.Chipmunk.Report.kind) reports) then
    Alcotest.failf "%s: expected kind not found among %d report(s): %s" name
      (List.length reports)
      (String.concat "; " (List.map Chipmunk.Report.summary reports))

let is_sync_or_atom = function
  | Chipmunk.Report.Synchrony _ | Chipmunk.Report.Atomicity _ -> true
  | _ -> false

let test_bug21 () =
  expect ~name:"bug21"
    { Splitfs.Bugs.none with bug21_unfenced_metadata_log = true }
    [ w_metadata ] is_sync_or_atom

let test_bug22 () =
  expect ~name:"bug22"
    { Splitfs.Bugs.none with bug22_unfenced_staging_data = true }
    [ w_write_fsync; w_write ] is_sync_or_atom

let test_bug23 () =
  expect ~name:"bug23"
    { Splitfs.Bugs.none with bug23_entry_before_data = true }
    [ w_write ] is_sync_or_atom

let test_bug24 () =
  expect ~name:"bug24"
    { Splitfs.Bugs.none with bug24_boundary_entry_unfenced = true }
    [ w_many_metadata ] is_sync_or_atom

let test_bug25 () =
  expect ~name:"bug25"
    { Splitfs.Bugs.none with bug25_rename_two_entries = true }
    [ w_rename ]
    (function Chipmunk.Report.Atomicity _ -> true | _ -> false)

let test_clean () =
  List.iter
    (fun w ->
      match (run Splitfs.Bugs.none w).Chipmunk.Harness.reports with
      | [] -> ()
      | rep :: _ ->
        Alcotest.failf "splitfs false positive:\n%s" (Format.asprintf "%a" Chipmunk.Report.pp rep))
    [ w_metadata; w_write; w_write_fsync; w_rename; w_many_metadata ]

let suite =
  [
    Alcotest.test_case "splitfs conformance" `Quick test_splitfs_conformance;
    Alcotest.test_case "ext4-dax conformance" `Quick test_ext4dax_conformance;
    Alcotest.test_case "xfs-dax conformance" `Quick test_xfsdax_conformance;
    Alcotest.test_case "splitfs remount" `Quick test_splitfs_remount;
    Alcotest.test_case "ext4-dax remount (synced)" `Quick test_ext4dax_remount;
    Alcotest.test_case "splitfs log replay without sync" `Quick test_splitfs_log_replay;
    QCheck_alcotest.to_alcotest prop_splitfs_conformance;
    QCheck_alcotest.to_alcotest prop_splitfs_remount;
    Alcotest.test_case "clean splitfs: no false positives" `Quick test_clean;
    Alcotest.test_case "bug 21: metadata log entry not fenced" `Quick test_bug21;
    Alcotest.test_case "bug 22: staging data not fenced" `Quick test_bug22;
    Alcotest.test_case "bug 23: log entry before data" `Quick test_bug23;
    Alcotest.test_case "bug 24: page-boundary entry not fenced" `Quick test_bug24;
    Alcotest.test_case "bug 25: rename as two entries" `Quick test_bug25;
  ]

(* --- extended attributes (DAX family only, as in the paper) --- *)

let test_xattr_roundtrip () =
  let h, _, _ = mk (Ext4dax.driver ()) in
  let _ = Helpers.check_ok "creat" (h.Vfs.Handle.creat ~path:"/f") in
  Helpers.check_ok "set" (h.Vfs.Handle.setxattr ~path:"/f" ~name:"user.a" ~value:"1");
  Helpers.check_ok "set2" (h.Vfs.Handle.setxattr ~path:"/f" ~name:"user.b" ~value:"2");
  Alcotest.(check string) "get" "1"
    (Helpers.check_ok "get" (h.Vfs.Handle.getxattr ~path:"/f" ~name:"user.a"));
  Alcotest.(check (list string)) "list" [ "user.a"; "user.b" ]
    (Helpers.check_ok "list" (h.Vfs.Handle.listxattr ~path:"/f"));
  Helpers.check_ok "remove" (h.Vfs.Handle.removexattr ~path:"/f" ~name:"user.a");
  Helpers.check_err "gone" Vfs.Errno.ENOENT (h.Vfs.Handle.getxattr ~path:"/f" ~name:"user.a");
  (* The oracle supports them identically. *)
  let o = Memfs.handle () in
  let _ = Helpers.check_ok "creat" (o.Vfs.Handle.creat ~path:"/f") in
  Helpers.check_ok "set" (o.Vfs.Handle.setxattr ~path:"/f" ~name:"user.a" ~value:"1");
  Alcotest.(check string) "oracle get" "1"
    (Helpers.check_ok "get" (o.Vfs.Handle.getxattr ~path:"/f" ~name:"user.a"))

let test_xattr_unsupported_elsewhere () =
  List.iter
    (fun (name, mk_driver) ->
      if name <> "ext4-dax" && name <> "xfs-dax" then begin
        let h, _, _ = mk (mk_driver ()) in
        let _ = Helpers.check_ok "creat" (h.Vfs.Handle.creat ~path:"/f") in
        Helpers.check_err (name ^ " setxattr") Vfs.Errno.ENOTSUP
          (h.Vfs.Handle.setxattr ~path:"/f" ~name:"user.a" ~value:"1")
      end)
    Catalog.clean_drivers

let test_xattr_durable_after_fsync () =
  let h, pm, driver = mk (Ext4dax.driver ()) in
  let fd = Helpers.check_ok "creat" (h.Vfs.Handle.creat ~path:"/f") in
  Helpers.check_ok "set" (h.Vfs.Handle.setxattr ~path:"/f" ~name:"user.k" ~value:"vvv");
  Helpers.check_ok "fsync" (h.Vfs.Handle.fsync ~fd);
  match driver.Vfs.Driver.mount pm with
  | Error e -> Alcotest.failf "remount: %s" e
  | Ok h2 ->
    Alcotest.(check string) "xattr survived" "vvv"
      (Helpers.check_ok "get" (h2.Vfs.Handle.getxattr ~path:"/f" ~name:"user.k"))

let test_xattr_crash_consistency () =
  (* The weak checker compares the fsynced file's node including xattrs. *)
  let driver = Ext4dax.driver () in
  let w =
    [
      Syscall.Creat { path = "/f"; fd_var = 0 };
      Syscall.Setxattr { path = "/f"; name = "user.x"; value = "abc" };
      Syscall.Fsync { fd_var = 0 };
      Syscall.Removexattr { path = "/f"; name = "user.x" };
      Syscall.Fsync { fd_var = 0 };
      Syscall.Close { fd_var = 0 };
      Syscall.Sync;
    ]
  in
  let r = Chipmunk.Harness.test_workload driver w in
  match r.Chipmunk.Harness.reports with
  | [] -> ()
  | rep :: _ ->
    Alcotest.failf "xattr false positive:\n%s" (Format.asprintf "%a" Chipmunk.Report.pp rep)

let suite =
  suite
  @ [
      Alcotest.test_case "xattr roundtrip on the DAX family" `Quick test_xattr_roundtrip;
      Alcotest.test_case "xattr ENOTSUP elsewhere" `Quick test_xattr_unsupported_elsewhere;
      Alcotest.test_case "xattr durable after fsync" `Quick test_xattr_durable_after_fsync;
      Alcotest.test_case "xattr crash consistency under chipmunk" `Quick
        test_xattr_crash_consistency;
    ]

(* --- white-box: staging exhaustion, log compaction, bank switching --- *)

let mk_usplit () =
  let config = Splitfs.default_config in
  let driver = Splitfs.driver ~config () in
  let image = Pmem.Image.create ~size:driver.Vfs.Driver.device_size in
  let pm = Persist.Pm.create image in
  let t = Splitfs.Usplit.mkfs pm config in
  (t, Splitfs.Usplit.handle t, pm, driver)

let test_staging_exhaustion_forces_relink () =
  (* Default staging is 24 pages = 3072 bytes; write more than that without
     any fsync: the implementation must sync+re-provision transparently. *)
  let _, h, pm, driver = mk_usplit () in
  let fd = Helpers.check_ok "creat" (h.Vfs.Handle.creat ~path:"/big") in
  for i = 0 to 19 do
    match h.Vfs.Handle.pwrite ~fd ~off:(i * 230) ~data:(Vfs.Syscall.bytes { seed = i; len = 230 }) with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "write %d failed: %s" i (Vfs.Errno.to_string e)
  done;
  let expected = Helpers.check_ok "read" (h.Vfs.Handle.read_file ~path:"/big") in
  Alcotest.(check int) "all bytes live" (19 * 230 + 230) (String.length expected);
  (* Everything must also survive recovery. *)
  match driver.Vfs.Driver.mount pm with
  | Error e -> Alcotest.failf "mount: %s" e
  | Ok h2 ->
    Alcotest.(check string) "content after recovery" expected
      (Helpers.check_ok "read2" (h2.Vfs.Handle.read_file ~path:"/big"))

let test_log_compaction_flips_banks () =
  let t, h, _, _ = mk_usplit () in
  let bank0 = t.Splitfs.Usplit.active in
  let fd = Helpers.check_ok "creat" (h.Vfs.Handle.creat ~path:"/f") in
  let _ = Helpers.check_ok "w" (h.Vfs.Handle.write ~fd ~data:"data") in
  Helpers.check_ok "fsync" (h.Vfs.Handle.fsync ~fd);
  Alcotest.(check bool) "bank flipped at commit" true (t.Splitfs.Usplit.active <> bank0);
  (* After the relink, the file's data is kernel-owned: the compacted log
     holds no write entries for it. *)
  Alcotest.(check int) "log compacted to empty" 0 t.Splitfs.Usplit.log_used

let test_compaction_preserves_other_files () =
  (* fsync of one file compacts the log; a second file's staged writes must
     survive the compaction and still replay after a crash. *)
  let _, h, pm, driver = mk_usplit () in
  let fd1 = Helpers.check_ok "creat a" (h.Vfs.Handle.creat ~path:"/a") in
  let fd2 = Helpers.check_ok "creat b" (h.Vfs.Handle.creat ~path:"/b") in
  let _ = Helpers.check_ok "w a" (h.Vfs.Handle.write ~fd:fd1 ~data:"aaa-staged") in
  let _ = Helpers.check_ok "w b" (h.Vfs.Handle.write ~fd:fd2 ~data:"bbb-staged") in
  Helpers.check_ok "fsync a only" (h.Vfs.Handle.fsync ~fd:fd1);
  match driver.Vfs.Driver.mount pm with
  | Error e -> Alcotest.failf "mount: %s" e
  | Ok h2 ->
    Alcotest.(check string) "synced file" "aaa-staged"
      (Helpers.check_ok "read a" (h2.Vfs.Handle.read_file ~path:"/a"));
    Alcotest.(check string) "unsynced file recovered from the log" "bbb-staged"
      (Helpers.check_ok "read b" (h2.Vfs.Handle.read_file ~path:"/b"))

let test_orphan_write_not_logged () =
  (* Writes through an orphaned descriptor must not be replayed onto
     whichever file later takes the name. *)
  let _, h, pm, driver = mk_usplit () in
  let fd = Helpers.check_ok "creat" (h.Vfs.Handle.creat ~path:"/name") in
  Helpers.check_ok "unlink" (h.Vfs.Handle.unlink ~path:"/name");
  let _ = Helpers.check_ok "orphan write" (h.Vfs.Handle.write ~fd ~data:"ghost-data") in
  let fd2 = Helpers.check_ok "recreate" (h.Vfs.Handle.creat ~path:"/name") in
  ignore fd2;
  match driver.Vfs.Driver.mount pm with
  | Error e -> Alcotest.failf "mount: %s" e
  | Ok h2 ->
    Alcotest.(check string) "no ghost data" ""
      (Helpers.check_ok "read" (h2.Vfs.Handle.read_file ~path:"/name"))

let test_staging_hidden () =
  let _, h, _, _ = mk_usplit () in
  Helpers.check_err "stat hidden" Vfs.Errno.ENOENT (h.Vfs.Handle.stat ~path:"/.staging");
  let entries = Helpers.check_ok "readdir" (h.Vfs.Handle.readdir ~path:"/") in
  Alcotest.(check (list string)) "root looks empty" []
    (List.map (fun d -> d.Vfs.Types.d_name) entries);
  Helpers.check_err "creat over hidden" Vfs.Errno.EPERM (h.Vfs.Handle.creat ~path:"/.staging")

let suite =
  suite
  @ [
      Alcotest.test_case "staging exhaustion forces relink" `Quick
        test_staging_exhaustion_forces_relink;
      Alcotest.test_case "log compaction flips banks" `Quick test_log_compaction_flips_banks;
      Alcotest.test_case "compaction preserves other files" `Quick
        test_compaction_preserves_other_files;
      Alcotest.test_case "orphan writes are not logged" `Quick test_orphan_write_not_logged;
      Alcotest.test_case "staging file is hidden" `Quick test_staging_hidden;
    ]

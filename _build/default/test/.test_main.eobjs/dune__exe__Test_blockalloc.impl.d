test/test_blockalloc.ml: Alcotest Blockalloc Helpers List Pmem QCheck QCheck_alcotest Result Vfs

test/test_stress.ml: Alcotest Ext4dax Helpers List Novafs Persist Pmem Pmfs Printexc QCheck QCheck_alcotest Random Splitfs String Vfs Winefs

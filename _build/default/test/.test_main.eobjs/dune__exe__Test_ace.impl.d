test/test_ace.ml: Ace Alcotest Hashtbl List Memfs Seq String Vfs

test/test_chipmunk.ml: Alcotest Catalog Chipmunk Format List Novafs Printf String Vfs

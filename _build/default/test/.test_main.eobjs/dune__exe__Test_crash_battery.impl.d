test/test_crash_battery.ml: Alcotest Catalog Chipmunk Format List Vfs

test/test_vfs.ml: Alcotest Filename Helpers List Memfs Result String Sys Vfs

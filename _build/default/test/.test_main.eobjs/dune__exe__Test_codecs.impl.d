test/test_codecs.ml: Alcotest Bytes Char Int32 List Novafs Persist Pmcommon Pmem Printf QCheck QCheck_alcotest String

test/test_catalog.ml: Alcotest Catalog Chipmunk Format List

test/test_fuzz.ml: Alcotest Chipmunk Cov Fuzz List Memfs Novafs Random Vfs

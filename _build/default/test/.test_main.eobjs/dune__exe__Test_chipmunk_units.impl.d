test/test_chipmunk_units.ml: Ace Alcotest Chipmunk Format List Novafs Persist String Vfs

test/test_persist.ml: Alcotest Array Gen List Persist Pmem QCheck QCheck_alcotest String

test/conformance.ml: Alcotest Helpers List Result String Vfs

test/test_conformance.ml: Conformance Ext4dax Memfs Novafs Persist Pmem Pmfs Splitfs Vfs Winefs

test/test_novafs.ml: Alcotest Blockalloc Fun Hashtbl Helpers List Novafs Persist Pmem Printf QCheck QCheck_alcotest Random Result String Vfs

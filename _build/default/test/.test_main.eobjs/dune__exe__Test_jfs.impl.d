test/test_jfs.ml: Alcotest Chipmunk Format Helpers List Persist Pmem Pmfs QCheck QCheck_alcotest Random String Vfs Winefs

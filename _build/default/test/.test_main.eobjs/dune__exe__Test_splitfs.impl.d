test/test_splitfs.ml: Alcotest Catalog Chipmunk Ext4dax Format Fun Helpers List Memfs Persist Pmem Printf QCheck QCheck_alcotest Random Splitfs String Vfs

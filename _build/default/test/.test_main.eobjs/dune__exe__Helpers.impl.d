test/helpers.ml: Alcotest Array List Memfs Novafs Persist Pmem Random String Vfs

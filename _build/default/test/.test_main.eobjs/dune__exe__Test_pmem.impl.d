test/test_pmem.ml: Alcotest Gen Pmem QCheck QCheck_alcotest String

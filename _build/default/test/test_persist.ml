(* Tests for the persistence layer: trace recording semantics, cache-line
   widening of flushes, undo log, in-flight analysis. *)

module Pm = Persist.Pm
module Trace = Persist.Trace

let setup () =
  let img = Pmem.Image.create ~size:1024 in
  let pm = Pm.create img in
  let trace = Trace.create () in
  Pm.trace_to pm trace;
  (img, pm, trace)

let stores trace =
  Array.to_list (Trace.ops trace)
  |> List.filter_map (function Trace.Store s -> Some s | _ -> None)

let test_nt_store_logged () =
  let img, pm, trace = setup () in
  Pm.memcpy_nt pm ~off:100 "hello";
  Alcotest.(check string) "visible to reads" "hello" (Pmem.Image.read img ~off:100 ~len:5);
  match stores trace with
  | [ s ] ->
    Alcotest.(check int) "addr" 100 s.Trace.addr;
    Alcotest.(check string) "data" "hello" s.Trace.data;
    Alcotest.(check string) "func" "memcpy_nt" s.Trace.func
  | l -> Alcotest.failf "expected 1 store, got %d" (List.length l)

let test_cached_store_not_logged () =
  let _, pm, trace = setup () in
  Pm.store pm ~off:0 "volatile";
  Pm.fence pm;
  Alcotest.(check int) "only the fence is logged" 1 (Trace.length trace)

let test_flush_widens_to_lines () =
  let _, pm, trace = setup () in
  Pm.store pm ~off:70 "x";
  Pm.flush pm ~off:70 ~len:1;
  match stores trace with
  | [ s ] ->
    Alcotest.(check int) "line base" 64 s.Trace.addr;
    Alcotest.(check int) "line length" 64 (String.length s.Trace.data);
    Alcotest.(check char) "contains the store" 'x' s.Trace.data.[6]
  | l -> Alcotest.failf "expected 1 store, got %d" (List.length l)

let test_flush_clamped_at_device_end () =
  let _, pm, trace = setup () in
  Pm.store pm ~off:1020 "ab";
  Pm.flush pm ~off:1020 ~len:2;
  match stores trace with
  | [ s ] -> Alcotest.(check int) "clamped" 1024 (s.Trace.addr + String.length s.Trace.data)
  | l -> Alcotest.failf "expected 1 store, got %d" (List.length l)

let test_markers_and_epochs () =
  let _, pm, trace = setup () in
  Pm.mark_syscall_begin pm ~idx:0 ~descr:"creat /foo";
  Pm.memcpy_nt pm ~off:0 "a";
  Pm.memcpy_nt pm ~off:8 "b";
  Pm.fence pm;
  Pm.memcpy_nt pm ~off:16 "c";
  Pm.fence pm;
  Pm.mark_syscall_end pm ~idx:0 ~ret:0;
  Alcotest.(check (list int)) "in-flight sizes" [ 2; 1 ] (Trace.stores_between_fences trace);
  match Persist.Analysis.per_syscall_summary trace with
  | [ ("creat", s) ] ->
    Alcotest.(check int) "epochs" 2 s.Persist.Analysis.count;
    Alcotest.(check int) "max" 2 s.Persist.Analysis.max
  | _ -> Alcotest.fail "expected one creat summary"

let test_undo_rollback () =
  let img = Pmem.Image.create ~size:256 in
  Pmem.Image.write_string img ~off:0 "original";
  let undo = Persist.Undo.create img in
  Persist.Undo.write_string undo ~off:0 "clobber!";
  Persist.Undo.write_string undo ~off:4 "zzzz";
  Alcotest.(check string) "mutated" "clobzzzz" (Pmem.Image.read img ~off:0 ~len:8);
  Persist.Undo.rollback undo;
  Alcotest.(check string) "rolled back" "original" (Pmem.Image.read img ~off:0 ~len:8);
  Alcotest.(check int) "log empty" 0 (Persist.Undo.entries undo)

let test_undo_via_pm () =
  let img = Pmem.Image.create ~size:256 in
  let pm = Pm.create img in
  Pm.memcpy_nt pm ~off:0 "base data here";
  let snap = Pmem.Image.snapshot img in
  let undo = Persist.Undo.create img in
  Pm.set_undo pm (Some undo);
  Pm.memcpy_nt pm ~off:0 "XXXX";
  Pm.memset_nt pm ~off:8 ~len:4 'y';
  Pm.store pm ~off:20 "zz";
  Pm.set_undo pm None;
  Persist.Undo.rollback undo;
  Alcotest.(check bool) "image restored" true (Pmem.Image.equal img snap)

let prop_undo_restores_exactly =
  QCheck.Test.make ~name:"undo restores arbitrary write sequences" ~count:200
    QCheck.(small_list (pair (int_bound 240) (string_of_size Gen.(1 -- 10))))
    (fun writes ->
      let img = Pmem.Image.create ~size:256 in
      for i = 0 to 255 do
        Pmem.Image.write_u8 img ~off:i (i * 7 mod 256)
      done;
      let snap = Pmem.Image.snapshot img in
      let undo = Persist.Undo.create img in
      List.iter
        (fun (off, s) ->
          if String.length s > 0 && off + String.length s <= 256 then
            Persist.Undo.write_string undo ~off s)
        writes;
      Persist.Undo.rollback undo;
      Pmem.Image.equal img snap)

let test_stats () =
  let _, pm, _ = setup () in
  Pm.memcpy_nt pm ~off:0 "abc";
  Pm.store pm ~off:10 "d";
  Pm.flush pm ~off:10 ~len:1;
  Pm.fence pm;
  let st = Pm.stats pm in
  Alcotest.(check int) "nt" 1 st.Pm.nt_calls;
  Alcotest.(check int) "flush" 1 st.Pm.flush_calls;
  Alcotest.(check int) "fence" 1 st.Pm.fence_calls;
  Alcotest.(check int) "cached" 1 st.Pm.cached_stores

let suite =
  [
    Alcotest.test_case "nt store logged with contents" `Quick test_nt_store_logged;
    Alcotest.test_case "cached store not logged until flushed" `Quick test_cached_store_not_logged;
    Alcotest.test_case "flush widens to cache lines" `Quick test_flush_widens_to_lines;
    Alcotest.test_case "flush clamped at device end" `Quick test_flush_clamped_at_device_end;
    Alcotest.test_case "syscall markers and epochs" `Quick test_markers_and_epochs;
    Alcotest.test_case "undo rollback" `Quick test_undo_rollback;
    Alcotest.test_case "undo hooks into Pm writes" `Quick test_undo_via_pm;
    Alcotest.test_case "live stats" `Quick test_stats;
    QCheck_alcotest.to_alcotest prop_undo_restores_exactly;
  ]

(* Instantiate the generic POSIX conformance suite for the oracle and every
   modelled file system. *)

let pm_handle (driver : Vfs.Driver.t) () =
  let image = Pmem.Image.create ~size:driver.Vfs.Driver.device_size in
  let pm = Persist.Pm.create image in
  driver.Vfs.Driver.mkfs pm

let suites =
  Conformance.suite ~prefix:"memfs" (fun () -> Memfs.handle ())
  @ Conformance.suite ~prefix:"nova" (pm_handle (Novafs.driver ()))
  @ Conformance.suite ~prefix:"nova-fortis"
      (pm_handle (Novafs.driver ~config:(Novafs.config ~fortis:true ()) ()))
  @ Conformance.suite ~prefix:"pmfs" (pm_handle (Pmfs.driver ()))
  @ Conformance.suite ~prefix:"winefs" (pm_handle (Winefs.driver ()))
  @ Conformance.suite ~prefix:"winefs-relaxed"
      (pm_handle (Winefs.driver ~config:(Winefs.config ~strict:false ()) ()))
  @ Conformance.suite ~prefix:"ext4-dax" (pm_handle (Ext4dax.driver ()))
  @ Conformance.suite ~prefix:"xfs-dax"
      (pm_handle (Ext4dax.driver ~config:(Ext4dax.config ~xfs:true ()) ()))
  @ Conformance.suite ~prefix:"splitfs" (pm_handle (Splitfs.driver ()))

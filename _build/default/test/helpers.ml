(* Shared test utilities: building file systems, running workloads on a
   target and the memfs oracle side by side, and comparing the results. *)

module Types = Vfs.Types
module Errno = Vfs.Errno
module Syscall = Vfs.Syscall

let nova_handle ?(config = Novafs.default_config) () =
  let image = Pmem.Image.create ~size:(config.Novafs.Layout.n_pages * config.Novafs.Layout.page_size) in
  let pm = Persist.Pm.create image in
  let driver = Novafs.driver ~config () in
  (driver.Vfs.Driver.mkfs pm, pm, driver)

let check_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s failed: %s" what (Errno.to_string e)

let check_err what expected = function
  | Ok _ -> Alcotest.failf "%s unexpectedly succeeded" what
  | Error e ->
    Alcotest.(check string) what (Errno.to_string expected) (Errno.to_string e)

(* Run the same workload against a target handle and a fresh oracle; check
   that every syscall returns the same result class and that the final trees
   match. *)
let against_oracle ?(check_rets = true) (target : Vfs.Handle.t) calls =
  let oracle = Memfs.handle () in
  let target_out = Vfs.Workload.run target calls in
  let oracle_out = Vfs.Workload.run oracle calls in
  if check_rets then
    List.iter2
      (fun (t : Vfs.Workload.outcome) (o : Vfs.Workload.outcome) ->
        let norm (r : int) = if r >= 0 then `Ok else `Err (-r) in
        if norm t.ret <> norm o.ret then
          Alcotest.failf "syscall %d (%s): target ret %d, oracle ret %d" t.idx
            (Syscall.to_string t.call) t.ret o.ret)
      target_out oracle_out;
  let t_tree = Vfs.Walker.capture target in
  let o_tree = Vfs.Walker.capture oracle in
  let diffs = Vfs.Walker.diff ~expected:o_tree ~actual:t_tree in
  if diffs <> [] then
    Alcotest.failf "tree mismatch:\n%s" (String.concat "\n" diffs)

(* A deterministic pseudo-random workload generator used by conformance
   property tests. It tracks a model of live paths so that most generated
   calls are valid, with a sprinkling of invalid ones. *)
let random_workload ~rng ~len =
  let files = [| "/f0"; "/f1"; "/d0/f0"; "/d0/f1"; "/d1/f0" |] in
  let dirs = [| "/d0"; "/d1"; "/d0/sub" |] in
  let pick a = a.(Random.State.int rng (Array.length a)) in
  let calls = ref [] in
  let fd_counter = ref 0 in
  let open_fds = ref [] in
  for _ = 1 to len do
    let c =
      match Random.State.int rng 12 with
      | 0 ->
        let v = !fd_counter in
        incr fd_counter;
        open_fds := v :: !open_fds;
        Syscall.Creat { path = pick files; fd_var = v }
      | 1 -> Syscall.Mkdir { path = pick dirs }
      | 2 -> (
        match !open_fds with
        | [] -> Syscall.Mkdir { path = pick dirs }
        | v :: _ ->
          Syscall.Write
            { fd_var = v; data = { seed = Random.State.int rng 10000; len = 1 + Random.State.int rng 400 } })
      | 3 -> (
        match !open_fds with
        | [] -> Syscall.Unlink { path = pick files }
        | v :: _ ->
          Syscall.Pwrite
            {
              fd_var = v;
              off = Random.State.int rng 500;
              data = { seed = Random.State.int rng 10000; len = 1 + Random.State.int rng 300 };
            })
      | 4 -> Syscall.Link { src = pick files; dst = pick files }
      | 5 -> Syscall.Unlink { path = pick files }
      | 6 -> Syscall.Rename { src = pick files; dst = pick files }
      | 7 -> Syscall.Rename { src = pick dirs; dst = pick dirs }
      | 8 -> Syscall.Truncate { path = pick files; size = Random.State.int rng 600 }
      | 9 -> Syscall.Rmdir { path = pick dirs }
      | 10 -> (
        match !open_fds with
        | [] -> Syscall.Creat { path = pick files; fd_var = (incr fd_counter; !fd_counter - 1) }
        | v :: rest ->
          open_fds := rest;
          Syscall.Close { fd_var = v })
      | _ -> (
        match !open_fds with
        | [] -> Syscall.Mkdir { path = pick dirs }
        | v :: _ ->
          Syscall.Fallocate
            {
              fd_var = v;
              off = Random.State.int rng 400;
              len = 1 + Random.State.int rng 300;
              keep_size = Random.State.bool rng;
            })
    in
    calls := c :: !calls
  done;
  List.rev !calls

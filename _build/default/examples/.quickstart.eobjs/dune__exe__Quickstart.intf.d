examples/quickstart.mli:

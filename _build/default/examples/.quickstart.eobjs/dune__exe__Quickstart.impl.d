examples/quickstart.ml: Chipmunk Format List Novafs Printf Vfs

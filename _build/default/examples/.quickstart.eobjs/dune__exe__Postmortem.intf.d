examples/postmortem.mli:

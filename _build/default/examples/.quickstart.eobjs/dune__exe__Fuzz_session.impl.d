examples/fuzz_session.ml: Catalog Chipmunk Format Fuzz List Option Printf

examples/rename_atomicity.mli:

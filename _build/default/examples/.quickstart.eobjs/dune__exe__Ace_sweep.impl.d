examples/ace_sweep.ml: Ace Catalog Chipmunk List Option Printf Vfs

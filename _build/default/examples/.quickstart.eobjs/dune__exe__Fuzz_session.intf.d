examples/fuzz_session.mli:

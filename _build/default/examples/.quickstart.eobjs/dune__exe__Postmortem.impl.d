examples/postmortem.ml: Chipmunk Format Novafs Pmem Printf Vfs

examples/ace_sweep.mli:

examples/rename_atomicity.ml: Array Chipmunk Format Novafs Persist Printf Vfs

(* Quickstart: create a PM file system on a simulated device, run a
   workload, and test every crash state Chipmunk can construct from it.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Pick a file system under test. Drivers bundle mkfs + mount
        (recovery) + the crash-consistency contract to check against. *)
  let driver = Novafs.driver () in

  (* 2. Describe a workload: a sequence of POSIX calls. File descriptors
        are virtual registers ($0 below), bound when creat/open runs. *)
  let workload =
    [
      Vfs.Syscall.Mkdir { path = "/docs" };
      Vfs.Syscall.Creat { path = "/docs/notes.txt"; fd_var = 0 };
      Vfs.Syscall.Write { fd_var = 0; data = { seed = 42; len = 420 } };
      Vfs.Syscall.Close { fd_var = 0 };
      Vfs.Syscall.Rename { src = "/docs/notes.txt"; dst = "/docs/final.txt" };
    ]
  in

  (* 3. Run the record-and-replay pipeline: execute the workload on an
        instrumented instance, log its PM writes, then mount and check the
        file system on every crash state. *)
  let result = Chipmunk.Harness.test_workload driver workload in

  let stats = result.Chipmunk.Harness.stats in
  Printf.printf "file system:        %s\n" driver.Vfs.Driver.name;
  Printf.printf "store fences:       %d\n" stats.Chipmunk.Harness.fences;
  Printf.printf "crash points:       %d\n" stats.Chipmunk.Harness.crash_points;
  Printf.printf "crash states:       %d\n" stats.Chipmunk.Harness.crash_states;
  Printf.printf "max in-flight:      %d coalesced writes\n" stats.Chipmunk.Harness.max_in_flight;
  (match result.Chipmunk.Harness.reports with
  | [] -> print_endline "verdict:            crash consistent (no bugs found)"
  | reports ->
    Printf.printf "verdict:            %d unique bug(s)!\n" (List.length reports);
    List.iter (fun r -> Format.printf "%a" Chipmunk.Report.pp r) reports);

  (* 4. The same pipeline on the same file system with one of the paper's
        bugs re-injected: rename invalidates the old directory entry in
        place before its journal transaction commits (paper bug 4). *)
  print_newline ();
  let buggy =
    Novafs.driver
      ~config:
        (Novafs.config
           ~bugs:{ Novafs.Bugs.none with bug4_inplace_dentry_invalidate = true }
           ())
      ()
  in
  let result = Chipmunk.Harness.test_workload buggy workload in
  match result.Chipmunk.Harness.reports with
  | [] -> print_endline "unexpected: injected bug not found"
  | r :: _ ->
    Printf.printf "with paper bug 4 injected: %s\n" (Chipmunk.Report.summary r)

(* Post-mortem workflow: a bug report carries enough detail to rebuild the
   exact crash state it describes (paper Figure 1). This example finds a
   bug, re-derives the crash image from the report alone, mounts it, and
   inspects the damage down to the device bytes.

   Run with:  dune exec examples/postmortem.exe *)

let () =
  (* Find a bug: NOVA with the paper's bug 4 armed. *)
  let driver =
    Novafs.driver
      ~config:
        (Novafs.config
           ~bugs:{ Novafs.Bugs.none with bug4_inplace_dentry_invalidate = true }
           ())
      ()
  in
  let workload =
    [
      Vfs.Syscall.Creat { path = "/precious"; fd_var = 0 };
      Vfs.Syscall.Write { fd_var = 0; data = { seed = 77; len = 160 } };
      Vfs.Syscall.Close { fd_var = 0 };
      Vfs.Syscall.Rename { src = "/precious"; dst = "/safe" };
    ]
  in
  let result = Chipmunk.Harness.test_workload driver workload in
  let report =
    match result.Chipmunk.Harness.reports with
    | r :: _ -> r
    | [] -> failwith "expected a finding"
  in
  print_endline "--- the report, as a developer would receive it ---";
  Format.printf "%a@." Chipmunk.Report.pp report;

  (* Rebuild the crash state from nothing but the report. *)
  print_endline "--- post-mortem: rebuilding the crash state ---";
  (match Chipmunk.Reproduce.crash_state driver report with
  | Error e -> Printf.printf "cannot rebuild: %s\n" e
  | Ok cs ->
    Printf.printf "does the finding reproduce? %b\n"
      (cs.Chipmunk.Reproduce.check () <> []);
    (match cs.Chipmunk.Reproduce.mount () with
    | Error e -> Printf.printf "crash state does not mount: %s\n" e
    | Ok h ->
      print_endline "recovered tree of the crash state:";
      Format.printf "%a" Vfs.Walker.pp (Vfs.Walker.capture h);
      print_endline "(both /precious and /safe are gone: the rename lost the file)");
    (* Drop to the device bytes: the first lines of the inode table. *)
    print_endline "inode table bytes of the crash image:";
    print_string
      (Pmem.Image.hexdump ~off:128 ~len:64 cs.Chipmunk.Reproduce.image));

  (* The same report does not reproduce on the fixed file system. *)
  let fixed = Novafs.driver () in
  Printf.printf "reproduces on fixed NOVA? %b\n" (Chipmunk.Reproduce.verify fixed report)

(* The paper's Figure 2 walkthrough: how a crash in the middle of rename()
   loses a file when the old directory entry is invalidated in place (NOVA
   bug 4), and how Chipmunk's record-and-replay pipeline exposes it.

   Run with:  dune exec examples/rename_atomicity.exe *)

let section title = Printf.printf "\n=== %s ===\n" title

(* The atomic-replace idiom editors rely on: write a temporary file, then
   rename it over the real one. If rename is not atomic, a crash can lose
   the user's document entirely. *)
let workload =
  [
    Vfs.Syscall.Creat { path = "/document"; fd_var = 0 };
    Vfs.Syscall.Write { fd_var = 0; data = { seed = 1; len = 200 } };
    Vfs.Syscall.Close { fd_var = 0 };
    Vfs.Syscall.Creat { path = "/document.tmp"; fd_var = 1 };
    Vfs.Syscall.Write { fd_var = 1; data = { seed = 2; len = 240 } };
    Vfs.Syscall.Close { fd_var = 1 };
    Vfs.Syscall.Rename { src = "/document.tmp"; dst = "/document" };
  ]

let run name driver =
  section (name ^ ": record");
  let result = Chipmunk.Harness.test_workload driver workload in
  (* Show the tail of the recorded PM write trace: the rename's writes. *)
  let ops = Persist.Trace.ops result.Chipmunk.Harness.trace in
  let from = max 0 (Array.length ops - 14) in
  Printf.printf "last %d logged PM operations:\n" (Array.length ops - from);
  Array.iteri
    (fun i op ->
      if i >= from then Format.printf "  %a@." Persist.Trace.pp_op op)
    ops;
  section (name ^ ": replay and check");
  Printf.printf "crash states checked: %d\n"
    result.Chipmunk.Harness.stats.Chipmunk.Harness.crash_states;
  (match result.Chipmunk.Harness.reports with
  | [] -> print_endline "rename is atomic: every crash state shows the old or the new document"
  | r :: _ ->
    print_endline "rename atomicity is BROKEN:";
    Format.printf "%a" Chipmunk.Report.pp r);
  result.Chipmunk.Harness.reports <> []

let () =
  let fixed = Novafs.driver () in
  let buggy =
    Novafs.driver
      ~config:
        (Novafs.config
           ~bugs:{ Novafs.Bugs.none with bug4_inplace_dentry_invalidate = true }
           ())
      ()
  in
  let found_fixed = run "NOVA (fixed)" fixed in
  let found_buggy = run "NOVA (paper bug 4 injected)" buggy in
  section "summary";
  Printf.printf "fixed NOVA:  %s\n" (if found_fixed then "bug found (?)" else "crash consistent");
  Printf.printf "buggy NOVA:  %s\n"
    (if found_buggy then "file-disappears bug found, as in the paper" else "bug missed (?)")

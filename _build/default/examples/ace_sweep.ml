(* Systematic testing: run the ACE seq-1 suite across every modelled PM file
   system, first with all bugs fixed (expecting silence) and then with each
   system's catalogued bugs armed (expecting findings) — the paper's
   "lightweight checks during development" mode.

   Run with:  dune exec examples/ace_sweep.exe *)

let sweep ~buggy =
  Printf.printf "%-12s %10s %13s %9s %8s   %s\n" "FS" "workloads" "crash states" "findings"
    "time(s)" "first finding";
  List.iter
    (fun (name, _) ->
      let driver =
        if buggy then (Option.get (Catalog.buggy_driver name)) ()
        else (List.assoc name Catalog.clean_drivers) ()
      in
      let mode =
        if driver.Vfs.Driver.consistency = Vfs.Driver.Weak then Ace.Fsync else Ace.Strong
      in
      let r = Chipmunk.Campaign.run driver (Ace.seq1 mode) in
      Printf.printf "%-12s %10d %13d %9d %8.2f   %s\n" name r.Chipmunk.Campaign.workloads_run
        r.Chipmunk.Campaign.crash_states
        (List.length r.Chipmunk.Campaign.events)
        r.Chipmunk.Campaign.elapsed
        (match r.Chipmunk.Campaign.events with
        | [] -> "-"
        | e :: _ -> Chipmunk.Report.summary e.Chipmunk.Campaign.report))
    Catalog.clean_drivers

let () =
  print_endline "ACE seq-1 sweep, all bugs fixed (expect: silence everywhere):";
  sweep ~buggy:false;
  print_newline ();
  print_endline "ACE seq-1 sweep, catalogued bugs armed (expect: findings in the PM FSes):";
  sweep ~buggy:true

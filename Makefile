# Convenience targets; the source of truth is dune.

.PHONY: ci build test bench-perf clean

ci: build test

build:
	dune build @all

test:
	dune runtest

# Rewrite BENCH_parallel.json (sequential vs parallel wall-clock, dedup
# hit-rate, states/sec) so the perf trajectory is tracked across PRs.
# Override the worker-domain count with CHIPMUNK_JOBS=N.
bench-perf:
	dune exec bench/main.exe parallel

clean:
	dune clean

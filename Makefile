# Convenience targets; the source of truth is dune.

.PHONY: ci build test bench-perf bench-shrink shrink-smoke clean

ci: build test shrink-smoke

build:
	dune build @all

test:
	dune runtest

# Minimizer smoke test: shrink one known catalogued bug to a reproducer
# (must strictly reduce the workload and keep the fingerprint — the CLI
# exits non-zero otherwise), then rebuild and re-verify the artifact.
shrink-smoke:
	dune exec bin/chipmunk_cli.exe -- minimize --bug 4 --expect-shrink \
	  --out _build/bug-4.repro.json
	dune exec bin/chipmunk_cli.exe -- reproduce --bug 4 _build/bug-4.repro.json

# Rewrite BENCH_parallel.json (sequential vs parallel wall-clock, dedup
# hit-rate, states/sec) so the perf trajectory is tracked across PRs.
# Override the worker-domain count with CHIPMUNK_JOBS=N.
bench-perf:
	dune exec bench/main.exe parallel

# Rewrite BENCH_shrink.json (delta-debugging shrink factors over the
# 25-bug corpus).
bench-shrink:
	dune exec bench/main.exe shrink

clean:
	dune clean

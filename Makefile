# Convenience targets; the source of truth is dune.

.PHONY: ci build test bench-perf bench-fuzz bench-shrink shrink-smoke \
  fuzz-parallel-smoke cache-smoke oracle-digest-smoke clean

ci: build test shrink-smoke fuzz-parallel-smoke cache-smoke oracle-digest-smoke

build:
	dune build @all

test:
	dune runtest

# Minimizer smoke test: shrink one known catalogued bug to a reproducer
# (must strictly reduce the workload and keep the fingerprint — the CLI
# exits non-zero otherwise), then rebuild and re-verify the artifact.
shrink-smoke:
	dune exec bin/chipmunk_cli.exe -- minimize --bug 4 --expect-shrink \
	  --out _build/bug-4.repro.json
	dune exec bin/chipmunk_cli.exe -- reproduce --bug 4 _build/bug-4.repro.json

# Sharded-fuzzer smoke test: a short campaign on buggy NOVA at --jobs 1
# and --jobs 2 with the same seed must report the identical finding lines
# (the Chipmunk.Run determinism contract), and must find something.
fuzz-parallel-smoke:
	dune exec bin/chipmunk_cli.exe -- fuzz --fs nova --buggy --execs 96 \
	  --seed 7 --jobs 1 | grep '^finding' > _build/fuzz-smoke-j1.txt
	dune exec bin/chipmunk_cli.exe -- fuzz --fs nova --buggy --execs 96 \
	  --seed 7 --jobs 2 | grep '^finding' > _build/fuzz-smoke-j2.txt
	test -s _build/fuzz-smoke-j1.txt
	diff -u _build/fuzz-smoke-j1.txt _build/fuzz-smoke-j2.txt

# Cache-transparency smoke test: the dedup cache and the verdict cache
# must not change what a campaign finds, only how fast it finds it. Run
# the buggy-NOVA ACE suite with caches at their defaults, with dedup off
# and with the verdict cache off; the per-finding fingerprint lines must
# match exactly (only the hit-rate footer may differ).
cache-smoke:
	dune exec bin/chipmunk_cli.exe -- ace --fs nova --buggy --suite seq1 \
	  | grep '^fingerprint' > _build/cache-smoke-default.txt
	dune exec bin/chipmunk_cli.exe -- ace --fs nova --buggy --suite seq1 \
	  --no-dedup | grep '^fingerprint' > _build/cache-smoke-nodedup.txt
	dune exec bin/chipmunk_cli.exe -- ace --fs nova --buggy --suite seq1 \
	  --no-vcache | grep '^fingerprint' > _build/cache-smoke-novcache.txt
	test -s _build/cache-smoke-default.txt
	diff -u _build/cache-smoke-nodedup.txt _build/cache-smoke-default.txt
	diff -u _build/cache-smoke-novcache.txt _build/cache-smoke-default.txt

# Digest-keying smoke test: verdict-cache keys built from the oracle's
# incremental tree digests (the default) and keys built by re-serializing
# whole oracle trees (--vcache-keys serialized, the historical scheme)
# must produce identical finding lines on the buggy-NOVA ACE suite.
oracle-digest-smoke:
	dune exec bin/chipmunk_cli.exe -- ace --fs nova --buggy --suite seq1 \
	  | grep '^fingerprint' > _build/oracle-digest-smoke-digest.txt
	dune exec bin/chipmunk_cli.exe -- ace --fs nova --buggy --suite seq1 \
	  --vcache-keys serialized | grep '^fingerprint' > _build/oracle-digest-smoke-serialized.txt
	test -s _build/oracle-digest-smoke-digest.txt
	diff -u _build/oracle-digest-smoke-serialized.txt _build/oracle-digest-smoke-digest.txt

# Rewrite BENCH_parallel.json (sequential vs parallel wall-clock, dedup
# hit-rate, states/sec) so the perf trajectory is tracked across PRs.
# Override the worker-domain count with CHIPMUNK_JOBS=N.
bench-perf:
	dune exec bench/main.exe parallel

# Rewrite BENCH_fuzz.json (fuzzer execs/sec at jobs=1/2/4 plus the
# cross-job determinism check).
bench-fuzz:
	dune exec bench/main.exe fuzz-parallel

# Rewrite BENCH_shrink.json (delta-debugging shrink factors over the
# 25-bug corpus).
bench-shrink:
	dune exec bench/main.exe shrink

clean:
	dune clean

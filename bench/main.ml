(* Benchmark and experiment harness: regenerates every table and figure of
   the paper's evaluation (see DESIGN.md's experiment index E1-E8 and
   EXPERIMENTS.md for paper-vs-measured numbers).

     table1       Table 1  - the bug corpus, with detection results
     table2       Table 2  - observations and the bugs behind them
     figure3      Figure 3 - cumulative time to find bugs, ACE vs fuzzer
     suite-stats  sect 4.3 - suite sizes, crash-state counts per FS
     cap-sweep    Obs. 7   - minimal replayed-writes cap per bug
     inflight     sect 3.2 - in-flight write statistics per syscall
     perf         Obs. 2 + sect 6.2 - Bechamel microbenchmarks
     parallel     perf tracking - sequential vs --jobs, dedup hit-rate
                  (rewrites BENCH_parallel.json for cross-PR comparison)
     fuzz-parallel perf tracking - fuzzer execs/sec at jobs=1/2/4 plus the
                  cross-job determinism check (rewrites BENCH_fuzz.json)
     shrink       minimizer  - delta-debugging shrink factors over the bug
                  corpus (rewrites BENCH_shrink.json)
     ablation     DESIGN.md - coalescing design choice

   Running with no argument executes everything. Campaign-level experiments
   shard workloads across domains; set CHIPMUNK_JOBS=N to override. *)

let line = String.make 78 '-'
let header title = Printf.printf "\n%s\n%s\n%s\n" line title line

(* Worker domains for the campaign-level experiments; override with
   CHIPMUNK_JOBS=N (the perf-tracking JSON records the value used). *)
let jobs =
  match Sys.getenv_opt "CHIPMUNK_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> Chipmunk.Pool.default_jobs ())
  | None -> Chipmunk.Pool.default_jobs ()

(* ------------------------------------------------------------------ *)
(* E1: Table 1                                                         *)

let detect (bug : Catalog.t) =
  let driver = bug.Catalog.driver () in
  let r = Chipmunk.Harness.test_workload driver bug.Catalog.trigger in
  r.Chipmunk.Harness.reports

let table1 () =
  header "Table 1: bugs found by Chipmunk, their consequences and affected syscalls";
  Printf.printf "%-4s %-12s %-6s %-9s %-46s %s\n" "Bug" "FS" "Type" "Detected" "Consequence"
    "Affected syscalls";
  let found = ref 0 in
  List.iter
    (fun (b : Catalog.t) ->
      let reports = detect b in
      if reports <> [] then incr found;
      Printf.printf "%-4d %-12s %-6s %-9s %-46s %s\n" b.Catalog.bug_no b.Catalog.fs
        (Catalog.bug_type_label b.Catalog.bug_type)
        (if reports <> [] then "yes" else "NO")
        b.Catalog.consequence
        (String.concat ", " b.Catalog.affected))
    Catalog.all;
  Printf.printf
    "\n%d/%d bug instances detected (%d unique bugs; paper: 23 unique bugs, 25 instances)\n"
    !found (List.length Catalog.all) Catalog.unique_bugs;
  let logic =
    List.length (List.filter (fun (b : Catalog.t) -> b.Catalog.bug_type = Catalog.Logic) Catalog.all)
  in
  Printf.printf "logic vs PM: %d logic-type instances, %d PM-type (paper: 19/23 unique are logic)\n"
    logic (List.length Catalog.all - logic)

(* ------------------------------------------------------------------ *)
(* E2: Table 2                                                         *)

let table2 () =
  header "Table 2: observations and the bugs associated with them";
  let obs =
    [
      Catalog.Obs_logic_not_pm; Catalog.Obs_in_place; Catalog.Obs_rebuild; Catalog.Obs_resilience;
      Catalog.Obs_mid_syscall; Catalog.Obs_short_workloads; Catalog.Obs_few_writes;
    ]
  in
  List.iter
    (fun o ->
      let bugs =
        List.filter_map
          (fun (b : Catalog.t) ->
            if List.mem o b.Catalog.observations then Some b.Catalog.bug_no else None)
          Catalog.all
        |> List.sort_uniq compare |> List.map string_of_int
      in
      Printf.printf "%-55s  bugs: %s\n" (Catalog.observation_label o) (String.concat ", " bugs))
    obs

(* ------------------------------------------------------------------ *)
(* E3: Figure 3                                                        *)

let ace_suite () =
  Seq.append (Ace.seq1 Ace.Strong)
    (Seq.append (Ace.seq2 Ace.Strong)
       (* A bounded slice of seq-3, as the paper bounds seq-3 to metadata
          workloads to keep testing tractable. *)
       (Seq.take 2000 (Ace.seq3_metadata Ace.Strong)))

let figure3 () =
  header "Figure 3: cumulative CPU time to find each bug, ACE vs fuzzer";
  let opts = { Chipmunk.Harness.default_opts with cap = Some 2; stop_on_first = true } in
  let results =
    List.map
      (fun (b : Catalog.t) ->
        let ace_time =
          let r =
            Chipmunk.Campaign.run
              ~exec:(Chipmunk.Run.exec ~opts ~keep_sizes:false ~jobs ())
              ~budget:(Chipmunk.Run.budget ~stop_after_findings:1 ~max_seconds:30.0 ())
              (b.Catalog.driver ()) (ace_suite ())
          in
          match r.Chipmunk.Campaign.events with
          | e :: _ -> Some e.Chipmunk.Campaign.elapsed
          | [] -> None
        in
        let fuzz_time =
          let config =
            Fuzz.Fuzzer.config
              ~rng_seed:(7 + b.Catalog.bug_no)
              ~budget:
                (Chipmunk.Run.budget ~max_execs:50_000 ~max_seconds:20.0
                   ~stop_after_findings:1 ())
              ()
          in
          let r = Fuzz.Fuzzer.run ~config (b.Catalog.driver ()) in
          match r.Fuzz.Fuzzer.events with
          | e :: _ -> Some e.Fuzz.Fuzzer.elapsed
          | [] -> None
        in
        (b, ace_time, fuzz_time))
      Catalog.all
  in
  Printf.printf "%-4s %-12s %14s %14s\n" "Bug" "FS" "ACE (s)" "Fuzzer (s)";
  List.iter
    (fun ((b : Catalog.t), a, f) ->
      let show = function None -> "not found" | Some s -> Printf.sprintf "%.3f" s in
      Printf.printf "%-4d %-12s %14s %14s\n" b.Catalog.bug_no b.Catalog.fs (show a) (show f))
    results;
  let cumulative times =
    let found = List.sort compare (List.filter_map Fun.id times) in
    List.rev (fst (List.fold_left (fun (acc, tot) t -> ((tot +. t) :: acc, tot +. t)) ([], 0.0) found))
  in
  let ace_series = cumulative (List.map (fun (_, a, _) -> a) results) in
  let fuzz_series = cumulative (List.map (fun (_, _, f) -> f) results) in
  Printf.printf "\nCumulative CPU time to find the n-th bug (seconds):\n";
  Printf.printf "%-6s %14s %14s\n" "n" "ACE" "Fuzzer";
  let n = max (List.length ace_series) (List.length fuzz_series) in
  for i = 0 to n - 1 do
    let get l = match List.nth_opt l i with None -> "-" | Some v -> Printf.sprintf "%.3f" v in
    Printf.printf "%-6d %14s %14s\n" (i + 1) (get ace_series) (get fuzz_series)
  done;
  Printf.printf
    "\nACE found %d, fuzzer found %d of %d instances\n\
     (paper: ACE finds 19/23 quickly; the fuzzer needs ~6-20x more CPU time overall but\n\
     reaches the remaining bugs whose patterns ACE's enumeration omits).\n"
    (List.length ace_series) (List.length fuzz_series) (List.length Catalog.all)

(* ------------------------------------------------------------------ *)
(* E4: suite statistics                                                *)

let suite_stats () =
  header "Section 4.3: suite sizes and crash-state counts per file system (all bugs fixed)";
  let seq1_n = Ace.count (Ace.seq1 Ace.Strong) in
  let seq2_n = Ace.count (Ace.seq2 Ace.Strong) in
  let seq3_n =
    let m = List.length Ace.metadata_ops in
    m * m * m
  in
  Printf.printf "suite sizes: seq-1 %d, seq-2 %d, seq-3 metadata %d (paper: 56 / 3136 / 50650)\n\n"
    seq1_n seq2_n seq3_n;
  Printf.printf "%-12s %10s %12s %12s %10s %10s %8s\n" "FS" "workloads" "crash pts"
    "crash states" "dedup" "false pos" "time(s)";
  (* One worker domain per file system: the seven sweeps are independent, so
     fanning the drivers out (rather than sharding workloads within one
     driver) parallelizes across the whole table. Pool.map returns results
     in submission order, so rows print deterministically, driver by
     driver, whatever order the domains finished in. *)
  let results =
    Chipmunk.Pool.map
      ~jobs:(min jobs (List.length Catalog.clean_drivers))
      (fun (name, mk) ->
        let suite =
          if name = "ext4-dax" || name = "xfs-dax" then
            Seq.append (Ace.seq1 Ace.Fsync) (Seq.take 1500 (Ace.seq2 Ace.Fsync))
          else Seq.append (Ace.seq1 Ace.Strong) (Ace.seq2 Ace.Strong)
        in
        Chipmunk.Campaign.run ~exec:(Chipmunk.Run.exec ~keep_sizes:false ()) (mk ()) suite)
      (List.to_seq Catalog.clean_drivers)
  in
  let rows =
    List.map
      (fun (_, (name, _), r) ->
        Printf.printf "%-12s %10d %12d %12d %10d %10d %8.1f\n" name
          r.Chipmunk.Campaign.workloads_run r.Chipmunk.Campaign.crash_points
          r.Chipmunk.Campaign.crash_states r.Chipmunk.Campaign.dedup_hits
          (List.length r.Chipmunk.Campaign.events)
          r.Chipmunk.Campaign.elapsed;
        (name, r.Chipmunk.Campaign.crash_states))
      results
  in
  let strong = List.filter (fun (n, _) -> n <> "ext4-dax" && n <> "xfs-dax") rows in
  let mx = List.fold_left (fun a (_, s) -> max a s) 0 strong in
  let mn = List.fold_left (fun a (_, s) -> min a s) max_int strong in
  Printf.printf
    "\ncrash-state variation across strong-consistency FSes: %.1fx\n\
     (paper: up to 3x, PMFS checking the most and WineFS the fewest)\n"
    (float_of_int mx /. float_of_int (max 1 mn))

(* ------------------------------------------------------------------ *)
(* E5: cap sweep (Observation 7)                                       *)

let cap_sweep () =
  header "Observation 7: smallest replayed-subset cap that exposes each bug";
  Printf.printf "%-4s %-12s %10s %14s %14s\n" "Bug" "FS" "min cap" "states@cap2" "states@nocap";
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (b : Catalog.t) ->
      let find cap =
        let opts = { Chipmunk.Harness.default_opts with cap } in
        let r = Chipmunk.Harness.test_workload ~opts (b.Catalog.driver ()) b.Catalog.trigger in
        (r.Chipmunk.Harness.reports <> [], r.Chipmunk.Harness.stats.Chipmunk.Harness.crash_states)
      in
      let rec min_cap c =
        if c > 5 then None else if fst (find (Some c)) then Some c else min_cap (c + 1)
      in
      let mc = min_cap 0 in
      let _, states2 = find (Some 2) in
      let _, states_all = find None in
      (match mc with
      | Some c -> Hashtbl.replace counts c (1 + Option.value (Hashtbl.find_opt counts c) ~default:0)
      | None -> ());
      Printf.printf "%-4d %-12s %10s %14d %14d\n" b.Catalog.bug_no b.Catalog.fs
        (match mc with None -> ">5" | Some c -> string_of_int c)
        states2 states_all)
    Catalog.all;
  Printf.printf "\nbugs by minimal cap:";
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) counts []
  |> List.sort compare
  |> List.iter (fun (c, n) -> Printf.printf " cap=%d: %d" c n);
  Printf.printf
    "\n(paper Observation 7: 10 of 11 mid-syscall bugs need one replayed write, one\n\
     needs two; a cap of two suffices for the whole corpus)\n"

(* ------------------------------------------------------------------ *)
(* E7: in-flight write statistics                                      *)

let inflight () =
  header "Section 3.2: in-flight (coalesced) writes per fence epoch, by syscall";
  List.iter
    (fun (name, mk) ->
      if name <> "ext4-dax" && name <> "xfs-dax" then begin
        let driver = mk () in
        let tbl : (string, int list) Hashtbl.t = Hashtbl.create 16 in
        Seq.iter
          (fun (_, w) ->
            let r = Chipmunk.Harness.test_workload driver w in
            List.iter
              (fun (k, (s : Persist.Analysis.summary)) ->
                let prev = Option.value (Hashtbl.find_opt tbl k) ~default:[] in
                Hashtbl.replace tbl k (s.Persist.Analysis.max :: prev))
              (Persist.Analysis.per_syscall_summary r.Chipmunk.Harness.trace))
          (Ace.seq1 Ace.Strong);
        let rows = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
        Printf.printf "%s:\n" name;
        let all_meta = ref [] in
        List.iter
          (fun (k, sizes) ->
            let s = Persist.Analysis.summarize sizes in
            if k <> "write" && k <> "pwrite" && k <> "fallocate" then all_meta := sizes @ !all_meta;
            Printf.printf "  %-10s epochs=%4d  mean=%.1f  max=%d\n" k s.Persist.Analysis.count
              s.Persist.Analysis.mean s.Persist.Analysis.max)
          rows;
        let m = Persist.Analysis.summarize !all_meta in
        Printf.printf "  metadata ops overall: mean=%.1f max=%d (paper: mean ~3, max ~10)\n\n"
          m.Persist.Analysis.mean m.Persist.Analysis.max
      end)
    Catalog.clean_drivers

(* ------------------------------------------------------------------ *)
(* E6/E8: performance microbenchmarks (Bechamel)                       *)

let mk_fs driver =
  let image = Pmem.Image.create ~size:driver.Vfs.Driver.device_size in
  let pm = Persist.Pm.create image in
  driver.Vfs.Driver.mkfs pm

(* Large devices for the timing loops so per-run mkfs cost is amortized
   across many operations. *)
let big_nova bugs = Novafs.driver ~config:(Novafs.config ~n_pages:8192 ~bugs ()) ()

let rename_loop h =
  (* The atomic-replace idiom: write a temp file, rename it over the target
     (what editors do on save - the workload behind Observation 2). *)
  (match h.Vfs.Handle.creat ~path:"/target" with
  | Error _ -> ()
  | Ok fd ->
    ignore (h.Vfs.Handle.write ~fd ~data:"seed");
    ignore (h.Vfs.Handle.close ~fd));
  for i = 0 to 511 do
    match h.Vfs.Handle.creat ~path:"/tmp_file" with
    | Error _ -> ()
    | Ok fd ->
      ignore (h.Vfs.Handle.write ~fd ~data:(Printf.sprintf "version %d padded out...." i));
      ignore (h.Vfs.Handle.close ~fd);
      ignore (h.Vfs.Handle.rename ~src:"/tmp_file" ~dst:"/target")
  done

let link_loop h =
  (* A well-populated directory: the unfixed in-place path must re-read the
     whole directory log to prove the update safe, which is what made the
     journalled fix faster in the paper. *)
  for i = 0 to 19 do
    match h.Vfs.Handle.creat ~path:(Printf.sprintf "/pre%02d" i) with
    | Error _ -> ()
    | Ok fd -> ignore (h.Vfs.Handle.close ~fd)
  done;
  (match h.Vfs.Handle.creat ~path:"/file" with
  | Error _ -> ()
  | Ok fd -> ignore (h.Vfs.Handle.close ~fd));
  for round = 0 to 7 do
    ignore round;
    for i = 0 to 23 do
      ignore (h.Vfs.Handle.link ~src:"/file" ~dst:(Printf.sprintf "/ln%02d" i))
    done;
    for i = 0 to 23 do
      ignore (h.Vfs.Handle.unlink ~path:(Printf.sprintf "/ln%02d" i))
    done
  done

(* A git-checkout-like metadata macrobenchmark: a small tree repeatedly
   switched between versions with rewrites and renames. *)
let metadata_macro h =
  ignore (h.Vfs.Handle.mkdir ~path:"/src");
  for i = 0 to 5 do
    match h.Vfs.Handle.creat ~path:(Printf.sprintf "/src/f%d" i) with
    | Error _ -> ()
    | Ok fd ->
      ignore (h.Vfs.Handle.write ~fd ~data:(String.make 200 (Char.chr (65 + i))));
      ignore (h.Vfs.Handle.close ~fd)
  done;
  (* Mostly reads and writes, renames only on a small fraction of
     operations, like a repository checkout. *)
  for v = 0 to 23 do
    for i = 0 to 5 do
      match h.Vfs.Handle.open_ ~path:(Printf.sprintf "/src/f%d" i) ~flags:[ Vfs.Types.O_RDWR ] with
      | Error _ -> ()
      | Ok fd ->
        ignore (h.Vfs.Handle.pwrite ~fd ~off:(v * 8 mod 160) ~data:(String.make 100 'x'));
        ignore (h.Vfs.Handle.pwrite ~fd ~off:120 ~data:(String.make 60 'y'));
        ignore (h.Vfs.Handle.read ~fd ~len:64);
        ignore (h.Vfs.Handle.close ~fd)
    done;
    match h.Vfs.Handle.creat ~path:"/src/tmp" with
    | Error _ -> ()
    | Ok fd ->
      ignore (h.Vfs.Handle.write ~fd ~data:"index-state");
      ignore (h.Vfs.Handle.close ~fd);
      ignore (h.Vfs.Handle.rename ~src:"/src/tmp" ~dst:"/src/index")
  done


let rename_bugs =
  {
    Novafs.Bugs.none with
    bug4_inplace_dentry_invalidate = true;
    bug5_tail_outside_journal = true;
  }

(* Deterministic cost model: count the PM traffic (non-temporal writes,
   flushes, fences, bytes) one workload iteration generates. Wall-clock at
   these microsecond scales is noisy; the PM operation counts are exactly
   the quantity the paper's Observation 2 reasons about (journalling more
   data = more persistent writes and ordering points). *)
let pm_cost driver loop =
  let image = Pmem.Image.create ~size:driver.Vfs.Driver.device_size in
  let pm = Persist.Pm.create image in
  let h = driver.Vfs.Driver.mkfs pm in
  let base = (Persist.Pm.stats pm).Persist.Pm.nt_calls in
  let base_f = (Persist.Pm.stats pm).Persist.Pm.fence_calls in
  let base_b = (Persist.Pm.stats pm).Persist.Pm.bytes_written in
  loop h;
  let st = Persist.Pm.stats pm in
  ( st.Persist.Pm.nt_calls - base,
    st.Persist.Pm.fence_calls - base_f,
    st.Persist.Pm.bytes_written - base_b )

let perf () =
  header "Observation 2 + section 6.2: performance of fixed vs unfixed NOVA (Bechamel)";
  Printf.printf "PM traffic per workload iteration (deterministic):\n";
  Printf.printf "%-28s %10s %10s %10s\n" "workload" "nt stores" "fences" "bytes";
  List.iter
    (fun (name, driver, loop) ->
      let nt, fences, bytes = pm_cost driver loop in
      Printf.printf "%-28s %10d %10d %10d\n" name nt fences bytes)
    [
      ("rename-overwrite/unfixed", big_nova rename_bugs, rename_loop);
      ("rename-overwrite/fixed", big_nova Novafs.Bugs.none, rename_loop);
      ( "link-churn/unfixed",
        big_nova { Novafs.Bugs.none with bug6_inplace_link_count = true },
        link_loop );
      ("link-churn/fixed", big_nova Novafs.Bugs.none, link_loop);
      ("metadata-macro/unfixed", big_nova rename_bugs, metadata_macro);
      ("metadata-macro/fixed", big_nova Novafs.Bugs.none, metadata_macro);
    ];
  Printf.printf "\nWall-clock (Bechamel, includes OCaml-level work such as the safety re-reads\n\
                 that made the paper's link fix faster):\n";
  let open Bechamel in
  let bench name f = Test.make ~name (Staged.stage f) in
  let tests =
    [
      bench "rename-overwrite/unfixed" (fun () -> rename_loop (mk_fs (big_nova rename_bugs)));
      bench "rename-overwrite/fixed" (fun () -> rename_loop (mk_fs (big_nova Novafs.Bugs.none)));
      bench "link-churn/unfixed" (fun () ->
          link_loop (mk_fs (big_nova { Novafs.Bugs.none with bug6_inplace_link_count = true })));
      bench "link-churn/fixed" (fun () -> link_loop (mk_fs (big_nova Novafs.Bugs.none)));
      bench "metadata-macro/unfixed" (fun () -> metadata_macro (mk_fs (big_nova rename_bugs)));
      bench "metadata-macro/fixed" (fun () -> metadata_macro (mk_fs (big_nova Novafs.Bugs.none)));
      bench "chipmunk-seq1/nova" (fun () ->
          ignore (Chipmunk.Campaign.run (Novafs.driver ()) (Ace.seq1 Ace.Strong)));
    ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 2.0) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"nova" tests) in
  let ols =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = List.sort compare (Hashtbl.fold (fun name r acc -> (name, r) :: acc) ols []) in
  let value name =
    match List.assoc_opt name rows with
    | Some r -> ( match Analyze.OLS.estimates r with Some [ v ] -> Some v | _ -> None)
    | None -> None
  in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ v ] -> Printf.printf "%-40s %14.0f ns/run\n" name v
      | _ -> Printf.printf "%-40s %14s\n" name "-")
    rows;
  let ratio fixed unfixed =
    match (value fixed, value unfixed) with
    | Some x, Some y when y > 0.0 -> Some (100.0 *. (x -. y) /. y)
    | _ -> None
  in
  (match ratio "nova/rename-overwrite/fixed" "nova/rename-overwrite/unfixed" with
  | Some p ->
    Printf.printf "\nrename microbench: fixed is %+.1f%% vs unfixed (paper: +25%%, slower)\n" p
  | None -> ());
  (match ratio "nova/link-churn/fixed" "nova/link-churn/unfixed" with
  | Some p -> Printf.printf "link microbench:   fixed is %+.1f%% vs unfixed (paper: -7%%, faster)\n" p
  | None -> ());
  (match ratio "nova/metadata-macro/fixed" "nova/metadata-macro/unfixed" with
  | Some p -> Printf.printf "metadata macro:    fixed is %+.1f%% vs unfixed (paper: <1%%)\n" p
  | None -> ())

(* ------------------------------------------------------------------ *)
(* Parallel campaign + dedup cache perf tracking                       *)

(* Machine-readable perf snapshot so the trajectory (sequential vs
   domain-sharded wall-clock, dedup hit-rate, states/sec) is comparable
   across commits: every run rewrites BENCH_parallel.json in the working
   directory. *)
let parallel_perf () =
  header
    (Printf.sprintf
       "Parallel campaign + crash-state dedup (jobs=%d, %d core(s) recommended)" jobs
       (Domain.recommended_domain_count ()));
  let mk_driver () =
    match Catalog.buggy_driver "nova" with
    | Some mk -> mk ()
    | None -> Novafs.driver ()
  in
  let suite () = Seq.append (Ace.seq1 Ace.Strong) (Seq.take 600 (Ace.seq2 Ace.Strong)) in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Five configs, each isolating one layer: no caches at all, the
     per-point dedup alone, dedup + verdict cache keyed by whole-tree
     serialization (the pre-digest scheme, kept as the before-measurement),
     dedup + verdict cache on incremental oracle digests (the default), and
     the full config sharded over domains. *)
  let no_dedup = { Chipmunk.Harness.default_opts with dedup_states = false } in
  let serialized_keys =
    {
      Chipmunk.Harness.default_opts with
      vcache_keying = Chipmunk.Vcache.Tree_serialization;
    }
  in
  let seq_nc, t_seq_nc =
    time (fun () ->
        Chipmunk.Campaign.run
          ~exec:(Chipmunk.Run.exec ~opts:no_dedup ~keep_sizes:false ~use_vcache:false ())
          (mk_driver ()) (suite ()))
  in
  let seq_d, t_seq_d =
    time (fun () ->
        Chipmunk.Campaign.run
          ~exec:(Chipmunk.Run.exec ~keep_sizes:false ~use_vcache:false ())
          (mk_driver ()) (suite ()))
  in
  let seq_ser, t_seq_ser =
    time (fun () ->
        Chipmunk.Campaign.run
          ~exec:(Chipmunk.Run.exec ~opts:serialized_keys ~keep_sizes:false ())
          (mk_driver ()) (suite ()))
  in
  let seq, t_seq =
    time (fun () ->
        Chipmunk.Campaign.run
          ~exec:(Chipmunk.Run.exec ~keep_sizes:false ())
          (mk_driver ()) (suite ()))
  in
  let par, t_par =
    time (fun () ->
        Chipmunk.Campaign.run
          ~exec:(Chipmunk.Run.exec ~keep_sizes:false ~jobs ())
          (mk_driver ()) (suite ()))
  in
  let fps (r : Chipmunk.Campaign.result) =
    List.map (fun e -> e.Chipmunk.Campaign.fingerprint) r.Chipmunk.Campaign.events
  in
  let findings_equal =
    fps seq = fps par && fps seq = fps seq_nc && fps seq = fps seq_d
    && fps seq = fps seq_ser
  in
  let checked (r : Chipmunk.Campaign.result) =
    r.Chipmunk.Campaign.crash_states - r.Chipmunk.Campaign.dedup_hits
    - r.Chipmunk.Campaign.vcache_hits
  in
  let rate r t = float_of_int (checked r) /. t in
  let hit_rate =
    float_of_int seq_d.Chipmunk.Campaign.dedup_hits
    /. float_of_int (max 1 seq_d.Chipmunk.Campaign.crash_states)
  in
  let vcache_hit_rate =
    float_of_int seq.Chipmunk.Campaign.vcache_hits
    /. float_of_int (max 1 seq.Chipmunk.Campaign.crash_states)
  in
  let row label (r : Chipmunk.Campaign.result) t =
    Printf.printf "%-24s %8.2fs %10d states %8d dedup %8d vcache %10.0f checked/s %4d findings\n"
      label t r.Chipmunk.Campaign.crash_states r.Chipmunk.Campaign.dedup_hits
      r.Chipmunk.Campaign.vcache_hits (rate r t)
      (List.length r.Chipmunk.Campaign.events)
  in
  row "sequential, no caches" seq_nc t_seq_nc;
  row "sequential, dedup only" seq_d t_seq_d;
  row "sequential, vcache ser." seq_ser t_seq_ser;
  row "sequential (full)" seq t_seq;
  row (Printf.sprintf "parallel (jobs=%d)" jobs) par t_par;
  Printf.printf
    "dedup hit-rate %.1f%% (speedup %.2fx), vcache hit-rate %.1f%% (speedup %.2fx \
     digest keys, %.2fx serialized keys), parallel speedup %.2fx, findings %s\n"
    (100.0 *. hit_rate) (t_seq_nc /. t_seq_d) (100.0 *. vcache_hit_rate) (t_seq_d /. t_seq)
    (t_seq_d /. t_seq_ser) (t_seq /. t_par)
    (if findings_equal then "identical" else "DIFFER");
  (* Digest-time breakdown (E14): seconds to key every phase of the first
     200 suite workloads under each keying scheme, oracle construction
     excluded — isolates what the incremental digests take off the
     phase-key path. *)
  let t_keys_digest, t_keys_serialized, key_workloads =
    let prepped =
      List.map
        (fun (_, calls) ->
          ( Chipmunk.Oracle.run calls,
            Array.of_list (List.map Vfs.Syscall.to_string calls) ))
        (List.of_seq (Seq.take 200 (suite ())))
    in
    let phases o =
      Chipmunk.Checker.Initial
      :: List.concat
           (List.init (Chipmunk.Oracle.n_calls o) (fun i ->
                [ Chipmunk.Checker.During i; Chipmunk.Checker.After i ]))
    in
    let time_keys f =
      let t0 = Unix.gettimeofday () in
      List.iter
        (fun (o, texts) -> List.iter (fun p -> ignore (f o texts p)) (phases o))
        prepped;
      Unix.gettimeofday () -. t0
    in
    ( time_keys (fun o texts p -> Chipmunk.Vcache.phase_digest o ~calls:texts p),
      time_keys (fun o texts p ->
          Chipmunk.Vcache.phase_digest_serialized o ~calls:texts p),
      List.length prepped )
  in
  Printf.printf
    "phase keys over %d workloads: %.4fs digest, %.4fs serialized (%.1fx)\n"
    key_workloads t_keys_digest t_keys_serialized
    (t_keys_serialized /. t_keys_digest);
  let obj fields =
    "{" ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%S:%s" k v) fields) ^ "}"
  in
  let run_obj (r : Chipmunk.Campaign.result) t =
    obj
      [
        ("seconds", Printf.sprintf "%.4f" t);
        ("workloads", string_of_int r.Chipmunk.Campaign.workloads_run);
        ("crash_points", string_of_int r.Chipmunk.Campaign.crash_points);
        ("crash_states", string_of_int r.Chipmunk.Campaign.crash_states);
        ("dedup_hits", string_of_int r.Chipmunk.Campaign.dedup_hits);
        ("vcache_hits", string_of_int r.Chipmunk.Campaign.vcache_hits);
        ("checked_states_per_sec", Printf.sprintf "%.1f" (rate r t));
        ("findings", string_of_int (List.length r.Chipmunk.Campaign.events));
      ]
  in
  let json =
    obj
      [
        ("schema", "\"chipmunk-bench-parallel/3\"");
        ("suite", "\"nova-buggy seq1 + seq2[:600]\"");
        ("jobs", string_of_int jobs);
        ("recommended_domains", string_of_int (Domain.recommended_domain_count ()));
        ("sequential_no_dedup", run_obj seq_nc t_seq_nc);
        ("sequential_dedup_only", run_obj seq_d t_seq_d);
        ("sequential_serialized_keys", run_obj seq_ser t_seq_ser);
        ("sequential", run_obj seq t_seq);
        ("parallel", run_obj par t_par);
        ("dedup_hit_rate", Printf.sprintf "%.4f" hit_rate);
        ("dedup_speedup", Printf.sprintf "%.3f" (t_seq_nc /. t_seq_d));
        ("vcache_hit_rate", Printf.sprintf "%.4f" vcache_hit_rate);
        ("vcache_speedup", Printf.sprintf "%.3f" (t_seq_d /. t_seq));
        ("vcache_speedup_serialized", Printf.sprintf "%.3f" (t_seq_d /. t_seq_ser));
        ("parallel_speedup", Printf.sprintf "%.3f" (t_seq /. t_par));
        ("phase_key_workloads", string_of_int key_workloads);
        ("phase_key_seconds_digest", Printf.sprintf "%.4f" t_keys_digest);
        ("phase_key_seconds_serialized", Printf.sprintf "%.4f" t_keys_serialized);
        ("findings_equal", string_of_bool findings_equal);
        ( "findings",
          "["
          ^ String.concat ","
              (List.map
                 (fun e -> Chipmunk.Report.to_json e.Chipmunk.Campaign.report)
                 seq.Chipmunk.Campaign.events)
          ^ "]" );
      ]
  in
  let oc = open_out "BENCH_parallel.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_parallel.json\n"

(* ------------------------------------------------------------------ *)
(* Sharded fuzzer perf tracking                                        *)

(* E12: fuzzer throughput at jobs=1/2/4 plus the determinism contract
   (same seed, any job count -> identical finding fingerprints, coverage
   and corpus). Rewrites BENCH_fuzz.json so the trajectory is comparable
   across commits. *)
let fuzz_parallel () =
  header
    (Printf.sprintf "Sharded fuzzer: execs/sec at jobs=1/2/4 (%d core(s) recommended)"
       (Domain.recommended_domain_count ()));
  let mk_driver () =
    match Catalog.buggy_driver "nova" with
    | Some mk -> mk ()
    | None -> Novafs.driver ()
  in
  let max_execs = 256 in
  let run_at jobs =
    let config =
      Fuzz.Fuzzer.config ~rng_seed:42
        ~budget:(Chipmunk.Run.budget ~max_execs ())
        ~exec:
          (Chipmunk.Run.exec
             ~opts:{ Chipmunk.Harness.default_opts with cap = Some 2 }
             ~jobs ())
        ()
    in
    let t0 = Unix.gettimeofday () in
    let r = Fuzz.Fuzzer.run ~config (mk_driver ()) in
    (r, Unix.gettimeofday () -. t0)
  in
  let job_counts = [ 1; 2; 4 ] in
  let runs = List.map (fun j -> (j, run_at j)) job_counts in
  let fps (r : Fuzz.Fuzzer.result) =
    List.map (fun (e : Fuzz.Fuzzer.event) -> e.Fuzz.Fuzzer.fingerprint) r.Fuzz.Fuzzer.events
  in
  let base, _ = List.assoc 1 runs in
  let deterministic =
    List.for_all
      (fun (_, ((r : Fuzz.Fuzzer.result), _)) ->
        fps r = fps base
        && r.Fuzz.Fuzzer.coverage = base.Fuzz.Fuzzer.coverage
        && r.Fuzz.Fuzzer.corpus_size = base.Fuzz.Fuzzer.corpus_size
        && r.Fuzz.Fuzzer.execs = base.Fuzz.Fuzzer.execs)
      runs
  in
  Printf.printf "%-8s %8s %10s %12s %10s %8s %8s\n" "jobs" "execs" "time(s)" "execs/sec"
    "states" "cov" "findings";
  List.iter
    (fun (j, ((r : Fuzz.Fuzzer.result), t)) ->
      Printf.printf "%-8d %8d %10.2f %12.1f %10d %8d %8d\n" j r.Fuzz.Fuzzer.execs t
        (float_of_int r.Fuzz.Fuzzer.execs /. Float.max 1e-9 t)
        r.Fuzz.Fuzzer.crash_states r.Fuzz.Fuzzer.coverage
        (List.length r.Fuzz.Fuzzer.events))
    runs;
  let t1 = snd (List.assoc 1 runs) and t4 = snd (List.assoc 4 runs) in
  Printf.printf "jobs=4 speedup %.2fx, cross-job determinism: %s\n" (t1 /. t4)
    (if deterministic then "identical" else "DIFFER");
  let module J = Chipmunk.Json in
  let run_obj ((r : Fuzz.Fuzzer.result), t) =
    J.obj
      [
        ("seconds", Printf.sprintf "%.4f" t);
        ("execs", string_of_int r.Fuzz.Fuzzer.execs);
        ("execs_per_sec", Printf.sprintf "%.1f" (float_of_int r.Fuzz.Fuzzer.execs /. Float.max 1e-9 t));
        ("crash_states", string_of_int r.Fuzz.Fuzzer.crash_states);
        ("coverage", string_of_int r.Fuzz.Fuzzer.coverage);
        ("corpus_size", string_of_int r.Fuzz.Fuzzer.corpus_size);
        ("findings", string_of_int (List.length r.Fuzz.Fuzzer.events));
        ("fingerprints", J.arr (List.map J.str (fps r)));
      ]
  in
  let json =
    J.obj
      [
        ("schema", J.str "chipmunk-bench-fuzz/1");
        ("fs", J.str "nova-buggy");
        ("rng_seed", "42");
        ("max_execs", string_of_int max_execs);
        ("recommended_domains", string_of_int (Domain.recommended_domain_count ()));
        ( "runs",
          J.obj (List.map (fun (j, rt) -> (Printf.sprintf "jobs%d" j, run_obj rt)) runs) );
        ( "speedup_jobs4",
          Printf.sprintf "%.3f" (snd (List.assoc 1 runs) /. snd (List.assoc 4 runs)) );
        ("deterministic_across_jobs", string_of_bool deterministic);
      ]
  in
  let oc = open_out "BENCH_fuzz.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_fuzz.json\n"

(* ------------------------------------------------------------------ *)
(* Minimizer shrink factors                                            *)

(* One row per catalogued bug: find it from its trigger, minimize the
   finding, verify the minimized reproducer, and record the shrink factors.
   Rewrites BENCH_shrink.json (sibling of BENCH_parallel.json) so the
   minimizer's effectiveness is tracked across commits. *)
let shrink_bench () =
  header "Minimizer: delta-debugging shrink factors over the 25-bug corpus";
  let results =
    Chipmunk.Pool.map
      ~jobs:(min jobs (List.length Catalog.all))
      (fun (b : Catalog.t) ->
        let driver = b.Catalog.driver () in
        let r = Chipmunk.Harness.test_workload driver b.Catalog.trigger in
        match r.Chipmunk.Harness.reports with
        | [] -> Error "trigger found nothing"
        | rep :: _ -> (
          match Shrink.Minimize.run driver rep with
          | Error e -> Error e
          | Ok o ->
            let preserved =
              Chipmunk.Report.fingerprint o.Shrink.Minimize.report
              = Chipmunk.Report.fingerprint rep
            in
            let reverifies = Chipmunk.Reproduce.verify driver o.Shrink.Minimize.report in
            Ok (o, preserved, reverifies)))
      (List.to_seq Catalog.all)
  in
  Printf.printf "%-4s %-12s %10s %10s %10s %10s %6s %6s\n" "Bug" "FS" "ops" "min ops"
    "writes" "min wr" "fp" "repro";
  let ok_rows =
    List.filter_map
      (fun (_, (b : Catalog.t), res) ->
        match res with
        | Error e ->
          Printf.printf "%-4d %-12s FAILED: %s\n" b.Catalog.bug_no b.Catalog.fs e;
          None
        | Ok ((o : Shrink.Minimize.outcome), preserved, reverifies) ->
          let s = o.Shrink.Minimize.stats in
          Printf.printf "%-4d %-12s %10d %10d %10d %10d %6s %6s\n" b.Catalog.bug_no b.Catalog.fs
            s.Shrink.Minimize.ops_before s.Shrink.Minimize.ops_after
            s.Shrink.Minimize.subset_before s.Shrink.Minimize.subset_after
            (if preserved then "yes" else "NO")
            (if reverifies then "yes" else "NO");
          Some (b, s, preserved, reverifies))
      results
  in
  let median l =
    match List.sort compare l with
    | [] -> 0.0
    | sorted ->
      let n = List.length sorted in
      let nth i = float_of_int (List.nth sorted i) in
      if n mod 2 = 1 then nth (n / 2) else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.0
  in
  let ops_before = List.map (fun (_, s, _, _) -> s.Shrink.Minimize.ops_before) ok_rows in
  let ops_after = List.map (fun (_, s, _, _) -> s.Shrink.Minimize.ops_after) ok_rows in
  let reduced =
    List.length
      (List.filter
         (fun (_, s, _, _) -> s.Shrink.Minimize.ops_after < s.Shrink.Minimize.ops_before)
         ok_rows)
  in
  let all_preserved = List.for_all (fun (_, _, p, _) -> p) ok_rows in
  let all_reverify = List.for_all (fun (_, _, _, r) -> r) ok_rows in
  let total stat = List.fold_left (fun a (_, s, _, _) -> a + stat s) 0 ok_rows in
  let recordings = total (fun s -> s.Shrink.Minimize.harness_runs) in
  let replay_hits = total (fun s -> s.Shrink.Minimize.replay_probe_hits) in
  let m_before = median ops_before and m_after = median ops_after in
  Printf.printf
    "\n%d/%d minimized; workload strictly shorter for %d; median ops %.1f -> %.1f \
     (%.2fx); fingerprints preserved: %b; reproducers re-verify: %b\n"
    (List.length ok_rows) (List.length Catalog.all) reduced m_before m_after
    (m_before /. Float.max 1.0 m_after)
    all_preserved all_reverify;
  Printf.printf
    "workload-ddmin probes: %d recordings, %d served by the trace-replay cache (%.1f%%)\n"
    recordings replay_hits
    (100.0 *. float_of_int replay_hits /. float_of_int (max 1 (recordings + replay_hits)));
  let module J = Chipmunk.Json in
  let bug_obj ((b : Catalog.t), (s : Shrink.Minimize.stats), preserved, reverifies) =
    J.obj
      [
        ("bug_no", string_of_int b.Catalog.bug_no);
        ("fs", J.str b.Catalog.fs);
        ("ops_before", string_of_int s.Shrink.Minimize.ops_before);
        ("ops_after", string_of_int s.Shrink.Minimize.ops_after);
        ("subset_before", string_of_int s.Shrink.Minimize.subset_before);
        ("subset_after", string_of_int s.Shrink.Minimize.subset_after);
        ("harness_runs", string_of_int s.Shrink.Minimize.harness_runs);
        ("check_runs", string_of_int s.Shrink.Minimize.check_runs);
        ("replay_probe_hits", string_of_int s.Shrink.Minimize.replay_probe_hits);
        ("fingerprint_preserved", string_of_bool preserved);
        ("reverifies", string_of_bool reverifies);
      ]
  in
  let json =
    J.obj
      [
        ("schema", J.str "chipmunk-bench-shrink/1");
        ("jobs", string_of_int jobs);
        ("minimized", string_of_int (List.length ok_rows));
        ("bug_instances", string_of_int (List.length Catalog.all));
        ("strictly_reduced", string_of_int reduced);
        ("median_ops_before", Printf.sprintf "%.1f" m_before);
        ("median_ops_after", Printf.sprintf "%.1f" m_after);
        ("fingerprints_preserved", string_of_bool all_preserved);
        ("reproducers_reverify", string_of_bool all_reverify);
        ("total_recordings", string_of_int recordings);
        ("total_replay_probe_hits", string_of_int replay_hits);
        ("bugs", J.arr (List.map bug_obj ok_rows));
      ]
  in
  let oc = open_out "BENCH_shrink.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_shrink.json\n"

(* ------------------------------------------------------------------ *)
(* Ablation                                                            *)

let ablation () =
  header "Ablation: interception granularity and coalescing (sections 3.2 and 6.2)";
  let w =
    [
      Vfs.Syscall.Creat { path = "/f"; fd_var = 0 };
      Vfs.Syscall.Write { fd_var = 0; data = { seed = 1; len = 1000 } };
      Vfs.Syscall.Close { fd_var = 0 };
    ]
  in
  Printf.printf "%-44s %12s %10s %12s\n" "configuration" "trace recs" "max infl" "crash states";
  List.iter
    (fun (name, granularity, coalesce, cap) ->
      let opts = { Chipmunk.Harness.default_opts with coalesce; granularity; cap } in
      let r = Chipmunk.Harness.test_workload ~opts (Novafs.driver ()) w in
      Printf.printf "%-44s %12d %10d %12d\n" name
        (Persist.Trace.length r.Chipmunk.Harness.trace)
        r.Chipmunk.Harness.stats.Chipmunk.Harness.max_in_flight
        r.Chipmunk.Harness.stats.Chipmunk.Harness.crash_states)
    [
      ("function-level + coalescing (Chipmunk)", Persist.Pm.Function_level, true, None);
      ("function-level, no coalescing", Persist.Pm.Function_level, false, None);
      ("instruction-level, cap=2 (Yat/Vinter-ish)", Persist.Pm.Instruction_level, false, Some 2);
      ("instruction-level, cap=5", Persist.Pm.Instruction_level, false, Some 5);
    ];
  Printf.printf
    "\n(A 1 KB write is one logical unit under function-level interception, but ~128\n\
     8-byte stores under instruction-level tracing: exhaustive subset replay would\n\
     need 2^128 states, the paper's argument for gray-box interception.)\n";
  (* Vinter's read-set reduction (section 6.2: a heuristic the paper says
     Chipmunk could adopt by recording PM read functions): enumerate
     subsets only over in-flight writes that a probe recovery reads. *)
  Printf.printf "\nRead-set heuristic over the 25-bug corpus (trigger workloads):\n";
  let total_off = ref 0 and total_on = ref 0 and found_off = ref 0 and found_on = ref 0 in
  List.iter
    (fun (b : Catalog.t) ->
      let run heur =
        let opts = { Chipmunk.Harness.default_opts with read_set_heuristic = heur } in
        let r = Chipmunk.Harness.test_workload ~opts (b.Catalog.driver ()) b.Catalog.trigger in
        (r.Chipmunk.Harness.reports <> [], r.Chipmunk.Harness.stats.Chipmunk.Harness.crash_states)
      in
      let f0, s0 = run false and f1, s1 = run true in
      total_off := !total_off + s0;
      total_on := !total_on + s1;
      if f0 then incr found_off;
      if f1 then incr found_on)
    Catalog.all;
  Printf.printf
    "  off: %d states, %d/25 found;  on: %d states (%.0f%%), %d/25 found\n\
     (with the cold-base fix — hot subsets checked both on the bare prefix and\n\
     with the never-read units applied — the reduction loses no bug here; the\n\
     paper discusses the same coverage-for-speed trade-off around Vinter)\n"
    !total_off !found_off !total_on
    (100.0 *. float_of_int !total_on /. float_of_int !total_off)
    !found_on;
  (* The full suites remain sound when run at the paper's fuzzing cap. *)
  let opts = { Chipmunk.Harness.default_opts with cap = Some 2 } in
  let r =
    Chipmunk.Campaign.run ~exec:(Chipmunk.Run.exec ~opts ()) (Novafs.driver ())
      (Ace.seq1 Ace.Strong)
  in
  Printf.printf "\nseq-1 on clean NOVA at cap=2: %d states, %d findings (expect 0)\n"
    r.Chipmunk.Campaign.crash_states
    (List.length r.Chipmunk.Campaign.events)

(* ------------------------------------------------------------------ *)

let all_experiments =
  [
    table1; table2; suite_stats; cap_sweep; inflight; ablation; figure3; perf; parallel_perf;
    fuzz_parallel; shrink_bench;
  ]

let () =
  match Sys.argv with
  | [| _ |] -> List.iter (fun f -> f ()) all_experiments
  | [| _; "table1" |] -> table1 ()
  | [| _; "table2" |] -> table2 ()
  | [| _; "figure3" |] -> figure3 ()
  | [| _; "suite-stats" |] -> suite_stats ()
  | [| _; "cap-sweep" |] -> cap_sweep ()
  | [| _; "inflight" |] -> inflight ()
  | [| _; "perf" |] -> perf ()
  | [| _; "parallel" |] -> parallel_perf ()
  | [| _; "fuzz-parallel" |] -> fuzz_parallel ()
  | [| _; "shrink" |] -> shrink_bench ()
  | [| _; "ablation" |] -> ablation ()
  | _ ->
    prerr_endline
      "usage: main.exe \
       [table1|table2|figure3|suite-stats|cap-sweep|inflight|perf|parallel|fuzz-parallel|shrink|ablation]";
    exit 1

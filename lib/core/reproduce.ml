module Pm = Persist.Pm
module Trace = Persist.Trace
module Image = Pmem.Image

type crash_state = {
  image : Pmem.Image.t;
  mount : unit -> (Vfs.Handle.t, string) result;
  check : unit -> Report.kind list;
}

exception Found of Image.t * Checker.phase * Coalesce.t list
exception Mismatch of string

(* Re-run the recorded workload and replay the trace up to the report's
   crash point, applying exactly the subset of in-flight writes the report
   names (by sequence number). Never raises: a report that does not match
   this driver (wrong file system, crash point past the end of the trace,
   subset naming writes that are not in flight there) is an [Error], as is
   any hardware fault the re-run provokes. *)
let rebuild (driver : Vfs.Driver.t) (report : Report.t) =
  let cp = report.Report.crash_point in
  if driver.Vfs.Driver.name <> report.Report.fs then
    Error
      (Printf.sprintf "report is for file system %S, driver is %S" report.Report.fs
         driver.Vfs.Driver.name)
  else
    try
      let img = Image.create ~size:driver.Vfs.Driver.device_size in
      let pm = Pm.create img in
      let handle = driver.Vfs.Driver.mkfs pm in
      let base = Image.snapshot img in
      let trace = Trace.create () in
      Pm.trace_to pm trace;
      let before idx call = Pm.mark_syscall_begin pm ~idx ~descr:(Vfs.Syscall.to_string call) in
      let after idx _ ret = Pm.mark_syscall_end pm ~idx ~ret in
      let _ = Vfs.Workload.run ~before ~after handle report.Report.workload in
      Pm.set_logger pm None;
      (* Walk the trace like the harness does, counting crash points the same
         way (every fence and every syscall end), until we hit [cp.fence_no]. *)
      let replay = base in
      let vec = ref [] in
      let cur_syscall = ref None in
      let fence_no = ref 0 in
      let wanted = Hashtbl.create 8 in
      List.iter (fun s -> Hashtbl.replace wanted s ()) cp.Report.subset;
      let stop_here phase =
        let units = List.rev !vec in
        let missing =
          List.filter
            (fun s -> not (List.exists (fun (u : Coalesce.t) -> u.Coalesce.seq = s) units))
            cp.Report.subset
        in
        if missing <> [] then
          raise
            (Mismatch
               (Printf.sprintf "subset names sequence number(s) %s not in flight at the crash point"
                  (String.concat ", " (List.map string_of_int missing))));
        List.iter
          (fun (u : Coalesce.t) ->
            if Hashtbl.mem wanted u.Coalesce.seq then
              List.iter (fun (addr, data) -> Image.write_string replay ~off:addr data) u.Coalesce.parts)
          units;
        raise (Found (replay, phase, units))
      in
      let apply_all () =
        List.iter
          (fun (u : Coalesce.t) ->
            List.iter (fun (addr, data) -> Image.write_string replay ~off:addr data) u.Coalesce.parts)
          (List.rev !vec);
        vec := []
      in
      Trace.iter trace (fun op ->
          match op with
          | Trace.Store s ->
            vec := Coalesce.add ~coalesce:true ~data_threshold:64 !vec s ~syscall:!cur_syscall
          | Trace.Fence ->
            incr fence_no;
            if !fence_no = cp.Report.fence_no then
              stop_here
                (match !cur_syscall with Some i -> Checker.During i | None -> Checker.Initial);
            apply_all ()
          | Trace.Syscall_begin { idx; _ } -> cur_syscall := Some idx
          | Trace.Syscall_end { idx; _ } ->
            cur_syscall := None;
            incr fence_no;
            if !fence_no = cp.Report.fence_no then stop_here (Checker.After idx));
      Error "crash point not reached: report does not match this configuration"
    with
    | Found (image, phase, units) -> Ok (image, phase, units)
    | Mismatch m -> Error m
    | e -> Error ("reproduction failed: " ^ Pmem.Fault.to_string e)

let in_flight_at driver report =
  match rebuild driver report with Ok (_, _, units) -> Ok units | Error _ as e -> e

let crash_state driver report =
  match rebuild driver report with
  | Error _ as e -> e
  | Ok (image, phase, _units) ->
    let mount () =
      let copy = Image.snapshot image in
      driver.Vfs.Driver.mount (Pm.create copy)
    in
    let check () =
      let copy = Image.snapshot image in
      match driver.Vfs.Driver.mount (Pm.create copy) with
      | exception e -> [ Report.Recovery_fault (Pmem.Fault.to_string e) ]
      | Error m -> [ Report.Unmountable m ]
      | Ok h -> (
        match
          let tree = Vfs.Walker.capture h in
          let oracle = Oracle.run report.Report.workload in
          let ks =
            Checker.check ~atomic_data:driver.Vfs.Driver.atomic_data
              ~consistency:driver.Vfs.Driver.consistency ~workload:report.Report.workload ~oracle
              ~phase ~tree
          in
          (* Mirror the harness: a state that passes the oracle checks must
             also survive the usability probe, so [Unusable] findings
             re-verify too. *)
          if ks = [] then
            match Harness.usability_probe h tree with
            | Some m -> [ Report.Unusable m ]
            | None -> []
          else ks
        with
        | ks -> ks
        | exception e -> [ Report.Recovery_fault (Pmem.Fault.to_string e) ])
    in
    Ok { image; mount; check }

let verify driver report =
  match crash_state driver report with
  | Error _ -> false
  | Ok cs -> cs.check () <> []

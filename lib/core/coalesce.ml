type t = {
  seq : int;
  parts : (int * string) list;
  kind : Persist.Trace.write_kind;
  func : string;
  syscall : int option;
}

let bytes t = List.fold_left (fun acc (_, d) -> acc + String.length d) 0 t.parts

let span t =
  List.fold_left
    (fun (lo, hi) (addr, d) -> (min lo addr, max hi (addr + String.length d)))
    (max_int, 0) t.parts

let contiguous_with unit (s : Persist.Trace.store) =
  match List.rev unit.parts with
  | [] -> false
  | (addr, d) :: _ -> addr + String.length d = s.Persist.Trace.addr

let add ~coalesce ~data_threshold vec (s : Persist.Trace.store) ~syscall =
  let fresh =
    {
      seq = s.Persist.Trace.seq;
      parts = [ (s.Persist.Trace.addr, s.Persist.Trace.data) ];
      kind = s.Persist.Trace.kind;
      func = s.Persist.Trace.func;
      syscall;
    }
  in
  match vec with
  | newest :: rest when coalesce ->
    let same_context =
      newest.kind = s.Persist.Trace.kind
      && newest.func = s.Persist.Trace.func
      && newest.syscall = syscall
    in
    let adjacent = same_context && contiguous_with newest s in
    let both_bulk =
      same_context
      && s.Persist.Trace.kind = Persist.Trace.Nt
      && String.length s.Persist.Trace.data >= data_threshold
      && List.for_all (fun (_, d) -> String.length d >= data_threshold) newest.parts
    in
    if adjacent || both_bulk then
      { newest with parts = newest.parts @ [ (s.Persist.Trace.addr, s.Persist.Trace.data) ] }
      :: rest
    else fresh :: vec
  | _ -> fresh :: vec

let overlapping units =
  let ivs =
    List.concat_map (fun u -> List.map (fun (a, d) -> (a, String.length d)) u.parts) units
  in
  let rec check = function
    | (a1, l1) :: ((a2, _) :: _ as rest) -> a1 + l1 > a2 || check rest
    | _ -> false
  in
  check (List.sort compare ivs)

(* Merge consecutive differing bytes of the byte map into (addr, run) pairs. *)
let runs_of_byte_map tbl =
  let addrs = List.sort compare (Hashtbl.fold (fun a _ acc -> a :: acc) tbl []) in
  let buf = Buffer.create 16 in
  let rec build acc start prev = function
    | a :: rest when a = prev + 1 ->
      Buffer.add_char buf (Hashtbl.find tbl a);
      build acc start a rest
    | rest ->
      let acc = (start, Buffer.contents buf) :: acc in
      Buffer.clear buf;
      (match rest with
      | [] -> List.rev acc
      | a :: rest ->
        Buffer.add_char buf (Hashtbl.find tbl a);
        build acc a a rest)
  in
  match addrs with
  | [] -> []
  | a :: rest ->
    Buffer.add_char buf (Hashtbl.find tbl a);
    build [] a a rest

let effective_delta ~read ?assume_disjoint units =
  let disjoint =
    match assume_disjoint with Some d -> d | None -> not (overlapping units)
  in
  if disjoint then
    (* No two writes touch the same byte: the final image holds exactly each
       part's bytes, so the delta is the parts that differ from the image,
       in address order. *)
    List.concat_map
      (fun u -> List.filter (fun (a, d) -> read a (String.length d) <> d) u.parts)
      units
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  else begin
    (* Overlapping writes: replay per byte, last writer wins, then keep the
       bytes that differ from the image. *)
    let tbl : (int, char) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun u ->
        List.iter
          (fun (a, d) -> String.iteri (fun i c -> Hashtbl.replace tbl (a + i) c) d)
          u.parts)
      units;
    Hashtbl.filter_map_inplace
      (fun a c -> if (read a 1).[0] = c then None else Some c)
      tbl;
    runs_of_byte_map tbl
  end

let delta_key delta =
  let b = Buffer.create 128 in
  List.iter
    (fun (a, d) ->
      Buffer.add_string b (string_of_int a);
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int (String.length d));
      Buffer.add_char b ':';
      Buffer.add_string b d)
    delta;
  Digest.string (Buffer.contents b)

let describe t =
  let lo, hi = span t in
  Printf.sprintf "#%d %s [0x%x, 0x%x) %dB in %d part(s)%s" t.seq t.func lo hi (bytes t)
    (List.length t.parts)
    (match t.syscall with None -> "" | Some i -> Printf.sprintf " (syscall %d)" i)

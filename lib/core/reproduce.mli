(** Reproduce a bug report: re-derive the exact crash state it describes.

    A {!Report.t} pins down a crash deterministically — the workload, the
    crash point (which fence or syscall boundary), and the sequence numbers
    of the in-flight writes that were replayed. Because workload execution
    and trace replay are fully deterministic, re-running the pipeline and
    stopping at the recorded point rebuilds the bit-identical crash image,
    ready for interactive post-mortem (mount it, walk the tree, hexdump
    regions). This is what the paper means by bug reports carrying "enough
    detail to reproduce the bug" (Figure 1). *)

type crash_state = {
  image : Pmem.Image.t;  (** The device as it would be after the crash. *)
  mount : unit -> (Vfs.Handle.t, string) result;
      (** Run the file system's recovery on (a copy of) the image. *)
  check : unit -> Report.kind list;
      (** Re-run the consistency checks; non-empty iff the bug reproduces. *)
}

val crash_state : Vfs.Driver.t -> Report.t -> (crash_state, string) result
(** Rebuild the crash state a report describes. Never raises; returns
    [Error] when the report does not match this driver — a different file
    system name, a crash point past the end of the re-recorded trace, a
    subset naming sequence numbers that are not in flight at the crash
    point — or when the re-run itself faults. [check] mirrors the harness
    exactly, including the post-recovery usability probe, so every report
    kind (including [Unusable]) re-verifies. *)

val in_flight_at : Vfs.Driver.t -> Report.t -> (Coalesce.t list, string) result
(** The full in-flight vector (coalesced units, oldest first) at the
    report's crash point — what the report's [subset] indexes into. The
    minimizer uses it to annotate each surviving write with its address
    span and originating persist operation. *)

val verify : Vfs.Driver.t -> Report.t -> bool
(** [true] when re-deriving the crash state reproduces a finding. *)

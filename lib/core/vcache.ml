(* Campaign-wide verdict cache.

   The checker's verdict for a crash state depends only on (a) the crash
   image bytes — which determine the mounted tree, (b) the crash phase's
   oracle slice (the rendered syscall plus the pre/post trees it is compared
   against, or the fsync target for weak systems), and (c) the file system's
   contract (atomic_data / consistency — fixed per driver). It does NOT
   depend on which workload or crash point produced the state, so verdicts
   memoized under the key (fs, oracle-slice digest, image digest) are shared
   across crash points and across workloads: ACE workload families share long
   syscall prefixes, so whole mount+check rounds repeat campaign-wide.

   Concurrency follows the PR 3 pattern (lib/cov): each domain works against
   a private view (lock-free hot path) and periodically [sync]s with a
   mutex-protected shared table. The shared side keeps a newest-first log so
   a sync pulls only entries published since the domain's last visit. Caches
   are transparent for findings — a hit replays the exact kinds the checker
   would compute — so jobs=1 vs jobs=N stay finding-for-finding identical
   even though hit *counts* depend on scheduling. *)

type entry = Report.kind list

type ckey = string * int
(* (fs ^ "|" ^ phase-digest, image digest): structural key, so the hot path
   never renders the image digest to hex or concatenates per state — the
   string half is shared across every state of a phase via {!prefix}. *)

type shared = {
  mutex : Mutex.t;
  table : (ckey, entry) Hashtbl.t;
  mutable log : (ckey * entry) list;  (* newest first *)
  mutable published : int;  (* List.length log *)
}

type local = {
  view : (ckey, entry) Hashtbl.t;
  mutable fresh : (ckey * entry) list;  (* added locally since last sync *)
  mutable pulled : int;  (* shared.published at last sync *)
}

type t = { shared : shared; dls : local Domain.DLS.key }

let create () =
  {
    shared =
      { mutex = Mutex.create (); table = Hashtbl.create 1024; log = []; published = 0 };
    dls =
      Domain.DLS.new_key (fun () ->
          { view = Hashtbl.create 1024; fresh = []; pulled = 0 });
  }

let local t = Domain.DLS.get t.dls
let find t key = Hashtbl.find_opt (local t).view key

let add t key kinds =
  let l = local t in
  if not (Hashtbl.mem l.view key) then begin
    Hashtbl.replace l.view key kinds;
    l.fresh <- (key, kinds) :: l.fresh
  end

let sync t =
  let l = local t in
  let s = t.shared in
  Mutex.lock s.mutex;
  List.iter
    (fun (k, v) ->
      if not (Hashtbl.mem s.table k) then begin
        Hashtbl.replace s.table k v;
        s.log <- (k, v) :: s.log;
        s.published <- s.published + 1
      end)
    l.fresh;
  let missing = s.published - l.pulled in
  let to_pull =
    let rec take n lst acc =
      if n <= 0 then acc
      else match lst with [] -> acc | x :: rest -> take (n - 1) rest (x :: acc)
    in
    take missing s.log []
  in
  l.pulled <- s.published;
  Mutex.unlock s.mutex;
  l.fresh <- [];
  List.iter
    (fun (k, v) -> if not (Hashtbl.mem l.view k) then Hashtbl.replace l.view k v)
    to_pull

let entries t =
  let s = t.shared in
  Mutex.lock s.mutex;
  let n = s.published in
  Mutex.unlock s.mutex;
  n

(* --- keys --- *)

type keying = Oracle_digest | Tree_serialization

let call_text calls i = if i < Array.length calls then calls.(i) else "?"

(* Everything the checker reads from the oracle/workload at this phase, and
   nothing more: notably NOT the syscall index itself, so equivalent phases
   of different workloads (shared ACE-family prefixes) share cache lines.
   The tree component is the oracle's incrementally maintained boundary
   digest — O(1) here, O(changed nodes) amortized over the oracle run —
   instead of a re-serialization of whole trees. Call texts are
   length-prefixed so a pathological syscall rendering cannot straddle a
   separator. *)
let phase_digest oracle ~calls (phase : Checker.phase) =
  let call i =
    let c = call_text calls i in
    Printf.sprintf "%d\002%s" (String.length c) c
  in
  match phase with
  | Checker.Initial -> Printf.sprintf "I\001%x" (Oracle.pre_digest oracle 0)
  | Checker.During i ->
    Printf.sprintf "D\001%s\001%x\001%x" (call i)
      (Oracle.pre_digest oracle i)
      (Oracle.post_digest oracle i)
  | Checker.After i ->
    let tgt =
      match Oracle.target oracle i with
      | None -> "-"
      | Some p -> Printf.sprintf "%d\002%s" (String.length p) p
    in
    Printf.sprintf "A\001%s\001%s\001%x" (call i) tgt (Oracle.post_digest oracle i)

(* Pre-digest serialization keying, kept as a differential baseline: digests
   are byte-identical to the historical rendering (which looked syscalls up
   with List.nth_opt per call — O(n²) over a workload; callers now pass the
   calls pre-rendered as an array). *)

let add_tree buf tree =
  List.iter (fun n -> Vfs.Walker.serialize_node buf n) tree

let add_call buf calls i =
  Buffer.add_string buf (call_text calls i);
  Buffer.add_char buf '\n'

let phase_digest_serialized oracle ~calls (phase : Checker.phase) =
  let buf = Buffer.create 512 in
  (match phase with
  | Checker.Initial ->
    Buffer.add_string buf "I\n";
    add_tree buf (Oracle.pre oracle 0)
  | Checker.During i ->
    Buffer.add_string buf "D ";
    add_call buf calls i;
    add_tree buf (Oracle.pre oracle i);
    Buffer.add_string buf "--\n";
    add_tree buf (Oracle.post oracle i)
  | Checker.After i ->
    Buffer.add_string buf "A ";
    add_call buf calls i;
    (match Oracle.target oracle i with
    | None -> ()
    | Some p ->
      Buffer.add_string buf p;
      Buffer.add_char buf '\n');
    add_tree buf (Oracle.post oracle i));
  Digest.to_hex (Digest.string (Buffer.contents buf))

let prefix ~fs ~phase_digest = fs ^ "|" ^ phase_digest
let key_of ~prefix ~image_digest : ckey = (prefix, image_digest)

let key ~fs ~image_digest ~phase_digest =
  key_of ~prefix:(prefix ~fs ~phase_digest) ~image_digest

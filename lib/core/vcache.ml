(* Campaign-wide verdict cache.

   The checker's verdict for a crash state depends only on (a) the crash
   image bytes — which determine the mounted tree, (b) the crash phase's
   oracle slice (the rendered syscall plus the pre/post trees it is compared
   against, or the fsync target for weak systems), and (c) the file system's
   contract (atomic_data / consistency — fixed per driver). It does NOT
   depend on which workload or crash point produced the state, so verdicts
   memoized under the key (fs, oracle-slice digest, image digest) are shared
   across crash points and across workloads: ACE workload families share long
   syscall prefixes, so whole mount+check rounds repeat campaign-wide.

   Concurrency follows the PR 3 pattern (lib/cov): each domain works against
   a private view (lock-free hot path) and periodically [sync]s with a
   mutex-protected shared table. The shared side keeps a newest-first log so
   a sync pulls only entries published since the domain's last visit. Caches
   are transparent for findings — a hit replays the exact kinds the checker
   would compute — so jobs=1 vs jobs=N stay finding-for-finding identical
   even though hit *counts* depend on scheduling. *)

type entry = Report.kind list

type shared = {
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  mutable log : (string * entry) list;  (* newest first *)
  mutable published : int;  (* List.length log *)
}

type local = {
  view : (string, entry) Hashtbl.t;
  mutable fresh : (string * entry) list;  (* added locally since last sync *)
  mutable pulled : int;  (* shared.published at last sync *)
}

type t = { shared : shared; dls : local Domain.DLS.key }

let create () =
  {
    shared =
      { mutex = Mutex.create (); table = Hashtbl.create 1024; log = []; published = 0 };
    dls =
      Domain.DLS.new_key (fun () ->
          { view = Hashtbl.create 1024; fresh = []; pulled = 0 });
  }

let local t = Domain.DLS.get t.dls
let find t key = Hashtbl.find_opt (local t).view key

let add t key kinds =
  let l = local t in
  if not (Hashtbl.mem l.view key) then begin
    Hashtbl.replace l.view key kinds;
    l.fresh <- (key, kinds) :: l.fresh
  end

let sync t =
  let l = local t in
  let s = t.shared in
  Mutex.lock s.mutex;
  List.iter
    (fun (k, v) ->
      if not (Hashtbl.mem s.table k) then begin
        Hashtbl.replace s.table k v;
        s.log <- (k, v) :: s.log;
        s.published <- s.published + 1
      end)
    l.fresh;
  let missing = s.published - l.pulled in
  let to_pull =
    let rec take n lst acc =
      if n <= 0 then acc
      else match lst with [] -> acc | x :: rest -> take (n - 1) rest (x :: acc)
    in
    take missing s.log []
  in
  l.pulled <- s.published;
  Mutex.unlock s.mutex;
  l.fresh <- [];
  List.iter
    (fun (k, v) -> if not (Hashtbl.mem l.view k) then Hashtbl.replace l.view k v)
    to_pull

let entries t =
  let s = t.shared in
  Mutex.lock s.mutex;
  let n = s.published in
  Mutex.unlock s.mutex;
  n

(* --- keys --- *)

let add_tree buf tree =
  List.iter
    (fun (n : Vfs.Walker.node) ->
      Buffer.add_string buf n.path;
      Buffer.add_char buf '\001';
      Buffer.add_string buf
        (match n.kind with None -> "?" | Some k -> Vfs.Types.kind_to_string k);
      Buffer.add_string buf (string_of_int n.size);
      Buffer.add_char buf '|';
      Buffer.add_string buf (string_of_int n.nlink);
      (match n.content with
      | None -> Buffer.add_char buf '\002'
      | Some c ->
        Buffer.add_char buf '=';
        Buffer.add_string buf c);
      (match n.entries with
      | None -> Buffer.add_char buf '\003'
      | Some es ->
        List.iter
          (fun e ->
            Buffer.add_char buf ';';
            Buffer.add_string buf e)
          es);
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf '\004';
          Buffer.add_string buf k;
          Buffer.add_char buf '=';
          Buffer.add_string buf v)
        n.xattrs;
      (match n.error with
      | None -> ()
      | Some e ->
        Buffer.add_char buf '!';
        Buffer.add_string buf e);
      Buffer.add_char buf '\n')
    tree

let add_call buf workload i =
  Buffer.add_string buf
    (match List.nth_opt workload i with
    | Some c -> Vfs.Syscall.to_string c
    | None -> "?");
  Buffer.add_char buf '\n'

(* Everything the checker reads from the oracle/workload at this phase, and
   nothing more: notably NOT the syscall index itself, so equivalent phases
   of different workloads (shared ACE-family prefixes) share cache lines. *)
let phase_digest oracle ~workload (phase : Checker.phase) =
  let buf = Buffer.create 512 in
  (match phase with
  | Checker.Initial ->
    Buffer.add_string buf "I\n";
    add_tree buf (Oracle.pre oracle 0)
  | Checker.During i ->
    Buffer.add_string buf "D ";
    add_call buf workload i;
    add_tree buf (Oracle.pre oracle i);
    Buffer.add_string buf "--\n";
    add_tree buf (Oracle.post oracle i)
  | Checker.After i ->
    Buffer.add_string buf "A ";
    add_call buf workload i;
    (match Oracle.target oracle i with
    | None -> ()
    | Some p ->
      Buffer.add_string buf p;
      Buffer.add_char buf '\n');
    add_tree buf (Oracle.post oracle i));
  Digest.to_hex (Digest.string (Buffer.contents buf))

let key ~fs ~image_digest ~phase_digest =
  Printf.sprintf "%s|%s|%x" fs phase_digest image_digest

type t = {
  trees : Vfs.Walker.tree array;
  digests : int array;  (* incrementally maintained, one per boundary *)
  targets : string option array;
  rets : int array;
}

let n_calls t = Array.length t.targets
let pre t i = t.trees.(i)
let post t i = t.trees.(i + 1)
let final t = t.trees.(Array.length t.trees - 1)
let target t i = t.targets.(i)
let ret t i = t.rets.(i)
let digest t i = t.digests.(i)
let pre_digest t i = t.digests.(i)
let post_digest t i = t.digests.(i + 1)
let redigest t i = Vfs.Walker.digest t.trees.(i)

let run calls =
  let h, fs = Memfs.tracked () in
  let n = List.length calls in
  let trees = Array.make (n + 1) [] in
  let digests = Array.make (n + 1) 0 in
  let targets = Array.make n None in
  let rets = Array.make n 0 in
  let var_paths : (int, string) Hashtbl.t = Hashtbl.create 8 in
  trees.(0) <- Vfs.Walker.capture h;
  (* Path-keyed node hashes, patched from Memfs's dirty set after every
     syscall so each boundary digest costs O(changed nodes), not O(tree) —
     the [Pmem.Image] rolling-digest design applied to the oracle tree.
     [redigest] is the from-scratch check (the analogue of [Image.rehash]). *)
  let node_hash : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let root = ref 0 in
  List.iter
    (fun (nd : Vfs.Walker.node) ->
      let hn = Vfs.Walker.hash_node nd in
      Hashtbl.replace node_hash nd.path hn;
      root := !root + hn)
    trees.(0);
  ignore (Memfs.Fs.drain_changes fs);
  digests.(0) <- Vfs.Walker.combine ~root:!root ~count:(Hashtbl.length node_hash);
  let patch path =
    (match Hashtbl.find_opt node_hash path with
    | None -> ()
    | Some h0 ->
      root := !root - h0;
      Hashtbl.remove node_hash path);
    match Vfs.Walker.probe h path with
    | None -> ()
    | Some nd ->
      let hn = Vfs.Walker.hash_node nd in
      Hashtbl.replace node_hash path hn;
      root := !root + hn
  in
  let before idx call =
    let target_of var = Hashtbl.find_opt var_paths var in
    targets.(idx) <-
      (match call with
      | Vfs.Syscall.Write { fd_var; _ }
      | Vfs.Syscall.Pwrite { fd_var; _ }
      | Vfs.Syscall.Fallocate { fd_var; _ }
      | Vfs.Syscall.Fsync { fd_var }
      | Vfs.Syscall.Fdatasync { fd_var } ->
        target_of fd_var
      | Vfs.Syscall.Truncate { path; _ }
      | Vfs.Syscall.Setxattr { path; _ }
      | Vfs.Syscall.Removexattr { path; _ } ->
        Some path
      | _ -> None)
  in
  let after idx call ret =
    rets.(idx) <- ret;
    (if ret >= 0 then
       match call with
       | Vfs.Syscall.Creat { path; fd_var } | Vfs.Syscall.Open { path; fd_var; _ } ->
         Hashtbl.replace var_paths fd_var path
       | Vfs.Syscall.Close { fd_var } -> Hashtbl.remove var_paths fd_var
       | Vfs.Syscall.Rename { src; dst } ->
         (* Keep descriptor paths in step with namespace changes so fsync
            targets stay resolvable. *)
         Hashtbl.iter
           (fun var p -> if p = src then Hashtbl.replace var_paths var dst)
           (Hashtbl.copy var_paths)
       | Vfs.Syscall.Unlink { path } | Vfs.Syscall.Remove { path } ->
         Hashtbl.iter
           (fun var p -> if p = path then Hashtbl.remove var_paths var)
           (Hashtbl.copy var_paths)
       | _ -> ());
    List.iter patch (Memfs.Fs.drain_changes fs);
    digests.(idx + 1) <-
      Vfs.Walker.combine ~root:!root ~count:(Hashtbl.length node_hash);
    trees.(idx + 1) <- Vfs.Walker.capture h
  in
  let _ = Vfs.Workload.run ~before ~after h calls in
  { trees; digests; targets; rets }

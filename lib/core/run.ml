type budget = {
  max_execs : int option;
  max_seconds : float option;
  stop_after_findings : int option;
  max_workloads : int option;
}

let unlimited =
  { max_execs = None; max_seconds = None; stop_after_findings = None; max_workloads = None }

let budget ?max_execs ?max_seconds ?stop_after_findings ?max_workloads () =
  { max_execs; max_seconds; stop_after_findings; max_workloads }

type exec = {
  opts : Harness.opts;
  minimize : (Report.t -> Report.t) option;
  keep_sizes : bool;
  jobs : int;
  use_vcache : bool;
}

let default_exec =
  {
    opts = Harness.default_opts;
    minimize = None;
    keep_sizes = true;
    jobs = 1;
    use_vcache = true;
  }

let exec ?(opts = Harness.default_opts) ?minimize ?(keep_sizes = true) ?(jobs = 1)
    ?(use_vcache = true) () =
  { opts; minimize; keep_sizes; jobs; use_vcache }

let effective_jobs e = if e.jobs <= 0 then Pool.default_jobs () else min e.jobs 64

let hit cap counter = match cap with None -> false | Some c -> counter >= c

let out_of_budget b ~execs ~seconds ~findings ~workloads =
  hit b.max_execs execs
  || (match b.max_seconds with None -> false | Some s -> seconds >= s)
  || hit b.stop_after_findings findings
  || hit b.max_workloads workloads

let workload ?(exec = default_exec) driver calls =
  (* The cache is created fresh per call: vcache entries are only valid for
     one driver instance (buggy and clean variants share fs names). Within a
     single workload it still pays off — equivalent states recur across
     crash points. *)
  let vcache = if exec.use_vcache then Some (Vcache.create ()) else None in
  Harness.test_workload ~opts:exec.opts ?vcache ?minimize:exec.minimize driver calls

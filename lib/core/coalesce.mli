(** Coalescing of logged stores into logical writes.

    The replayer does not treat every logged store as its own unit: the
    paper's key state-space reduction (section 3.2) is that the stores
    belonging to one file-system-level write — e.g. the per-page
    non-temporal copies of a 1 KB write — can be fused and replayed
    all-or-nothing, because intermediate states of file data are unlikely to
    expose bugs that the all-or-nothing states do not.

    A {!t} is one unit of the in-flight vector: one or more logged stores
    replayed together. *)

type t = {
  seq : int;  (** Sequence number of the first fused store. *)
  parts : (int * string) list;  (** (address, bytes), in program order. *)
  kind : Persist.Trace.write_kind;
  func : string;
  syscall : int option;  (** Index of the issuing syscall, if any. *)
}

val bytes : t -> int
val span : t -> int * int
(** Lowest address and one-past-highest address covered. *)

val add :
  coalesce:bool -> data_threshold:int -> t list -> Persist.Trace.store -> syscall:int option -> t list
(** Fold one logged store into the in-flight vector (kept newest-first).
    With [coalesce] true, the store is fused into the newest unit when
    either (a) it is address-contiguous with it, same kind and function, and
    from the same syscall, or (b) both are non-temporal stores of at least
    [data_threshold] bytes from the same syscall and function — the paper's
    "large buffers are file data" heuristic. *)

val overlapping : t list -> bool
(** Whether any two logged byte ranges in [units] touch the same address.
    When false, applying the units in any order yields the same image, and
    {!effective_delta} can take its cheap per-part path. *)

val effective_delta :
  read:(int -> int -> string) -> ?assume_disjoint:bool -> t list -> (int * string) list
(** [effective_delta ~read units] is the {e effective delta} of applying
    [units] in order to the image read through [read addr len]: the final
    (address, bytes) contents that actually differ from the image, in a
    canonical (address-sorted, run-merged when overlapping) form. Two unit
    lists with equal deltas against the same image produce byte-identical
    crash states — the invariant behind the replayer's crash-state dedup
    cache. [assume_disjoint] skips the {!overlapping} scan when the caller
    has already established it for a superset of [units]. *)

val delta_key : (int * string) list -> string
(** A compact fingerprint of an effective delta (deltas can span kilobytes
    of file data; the key is a constant-size digest). The empty delta has a
    distinguished key equal to [delta_key []]. *)

val describe : t -> string

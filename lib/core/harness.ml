module Pm = Persist.Pm
module Trace = Persist.Trace
module Image = Pmem.Image

type opts = {
  cap : int option;
  coalesce : bool;
  data_threshold : int;
  check_usability : bool;
  max_states_per_point : int;
  stop_on_first : bool;
  granularity : Pm.granularity;
  read_set_heuristic : bool;
  dedup_states : bool;
  vcache_keying : Vcache.keying;
}

let default_opts =
  {
    cap = None;
    coalesce = true;
    data_threshold = 64;
    check_usability = true;
    max_states_per_point = 512;
    stop_on_first = false;
    granularity = Pm.Function_level;
    read_set_heuristic = false;
    dedup_states = true;
    vcache_keying = Vcache.Oracle_digest;
  }

type stats = {
  mutable crash_points : int;
  mutable crash_states : int;
  mutable failed_mounts : int;
  mutable max_in_flight : int;
  mutable fences : int;
  mutable in_flight_sizes : int list;
  mutable dedup_hits : int;
  mutable vcache_hits : int;
}

type result = {
  reports : Report.t list;
  stats : stats;
  trace : Persist.Trace.t;
  outcomes : Vfs.Workload.outcome list;
}

type recording = {
  rec_calls : Vfs.Syscall.t list;
  rec_trace : Persist.Trace.t;
  rec_base : Pmem.Image.t;
  rec_outcomes : Vfs.Workload.outcome list;
}

exception Stop

(* Enumerate index subsets of {0..n-1} in increasing size order, invoking
   [yield] on each; sizes above [cap] are skipped, and enumeration stops
   after [limit] subsets. The empty subset (the fully-fenced prefix state)
   is always yielded first. *)
let enumerate_subsets ~n ~cap ~limit yield =
  let count = ref 0 in
  let budget () = !count < limit in
  let emit s =
    incr count;
    yield s
  in
  let max_size = match cap with None -> n | Some c -> min c n in
  (try
     emit [];
     for size = 1 to max_size do
       (* Combinations of [size] indices, lexicographic. *)
       let rec combo acc start remaining =
         if not (budget ()) then raise Exit
         else if remaining = 0 then emit (List.rev acc)
         else
           for i = start to n - remaining do
             combo (i :: acc) (i + 1) (remaining - 1)
           done
       in
       combo [] 0 size
     done
   with Exit -> ());
  !count

(* The post-recovery usability probe: create a file in every directory,
   write to it, remove it, then delete every file and directory. *)
let usability_probe (h : Vfs.Handle.t) tree =
  let fail = ref None in
  let note what path e =
    if !fail = None then
      fail := Some (Printf.sprintf "%s %s: %s" what path (Vfs.Errno.to_string e))
  in
  let dirs =
    List.filter_map
      (fun n ->
        if n.Vfs.Walker.kind = Some Vfs.Types.Dir && n.Vfs.Walker.error = None then
          Some n.Vfs.Walker.path
        else None)
      tree
  in
  List.iter
    (fun dir ->
      let probe = Vfs.Path.concat dir ".chkprobe" in
      match h.Vfs.Handle.creat ~path:probe with
      | Error e -> note "creat probe in" dir e
      | Ok fd -> (
        (match h.Vfs.Handle.write ~fd ~data:"probe" with
        | Error e -> note "write probe in" dir e
        | Ok _ -> ());
        (match h.Vfs.Handle.close ~fd with Error e -> note "close probe in" dir e | Ok () -> ());
        match h.Vfs.Handle.unlink ~path:probe with
        | Error e -> note "unlink probe in" dir e
        | Ok () -> ()))
    dirs;
  (* Delete everything: files first, then directories bottom-up. *)
  List.iter
    (fun n ->
      if n.Vfs.Walker.kind = Some Vfs.Types.Reg then
        match h.Vfs.Handle.unlink ~path:n.Vfs.Walker.path with
        | Ok () -> ()
        | Error Vfs.Errno.ENOENT -> () (* removed via an earlier hard link *)
        | Error e -> note "unlink" n.Vfs.Walker.path e)
    tree;
  let dirs_deep_first =
    List.sort (fun a b -> compare (String.length b) (String.length a)) dirs
  in
  List.iter
    (fun dir ->
      if dir <> "/" then
        match h.Vfs.Handle.rmdir ~path:dir with
        | Ok () -> ()
        | Error e -> note "rmdir" dir e)
    dirs_deep_first;
  !fail

(* Phase 1: execute the workload on an instrumented fresh file system,
   logging every PM write. The recording is self-contained: [rec_base] is
   the post-mkfs image and [rec_trace] the full write log, so crash states
   can be rebuilt from it any number of times without re-running the
   workload (see [replay_recorded]). *)
let record ?(opts = default_opts) (driver : Vfs.Driver.t) calls =
  let img = Image.create ~size:driver.Vfs.Driver.device_size in
  let pm = Pm.create img in
  let handle = driver.Vfs.Driver.mkfs pm in
  let base = Image.snapshot img in
  let trace = Trace.create () in
  Pm.set_granularity pm opts.granularity;
  Pm.trace_to pm trace;
  let before idx call =
    Pm.mark_syscall_begin pm ~idx ~descr:(Vfs.Syscall.to_string call)
  in
  let after idx _call ret = Pm.mark_syscall_end pm ~idx ~ret in
  let outcomes = Vfs.Workload.run ~before ~after handle calls in
  Pm.set_logger pm None;
  { rec_calls = calls; rec_trace = trace; rec_base = base; rec_outcomes = outcomes }

(* Phases 2+3: oracle, then the replay loop over the trace. [replay] is
   consumed (mutated throughout); pass a snapshot to keep the base image. *)
let replay_phases ~opts ?vcache ?minimize (driver : Vfs.Driver.t) ~calls ~trace ~outcomes
    ~replay =
  (* Phase 2: the oracle. *)
  let oracle = Oracle.run calls in
  (* Phase 3: replay. [replay] always holds the fully-fenced prefix of the
     trace. *)
  let stats =
    {
      crash_points = 0;
      crash_states = 0;
      failed_mounts = 0;
      max_in_flight = 0;
      fences = 0;
      in_flight_sizes = [];
      dedup_hits = 0;
      vcache_hits = 0;
    }
  in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let reports = ref [] in
  let vec = ref [] (* newest first *) in
  let cur_syscall = ref None in
  let last_done = ref None in
  let fence_no = ref 0 in
  let workload_arr = Array.of_list calls in
  let fsync_boundary idx =
    idx < Array.length workload_arr && Vfs.Syscall.is_fsync_family workload_arr.(idx)
  in
  let emit ~phase ~subset_seqs ~n kinds =
    List.iter
      (fun kind ->
        let crash_point =
          {
            Report.fence_no = !fence_no;
            during_syscall = (match phase with Checker.During i -> Some i | _ -> None);
            after_syscall =
              (match phase with
              | Checker.After i -> Some i
              | Checker.During _ | Checker.Initial -> !last_done);
            subset = subset_seqs;
            in_flight = n;
          }
        in
        let r = { Report.fs = driver.Vfs.Driver.name; workload = calls; crash_point; kind } in
        let fp = Report.fingerprint r in
        if not (Hashtbl.mem seen fp) then begin
          Hashtbl.replace seen fp ();
          reports := r :: !reports;
          if opts.stop_on_first then raise Stop
        end)
      kinds
  in
  (* The verdict-cache key half that covers the oracle slice: digest of
     everything the checker consults at a phase besides the image itself,
     pre-combined with the fs name into the key prefix so per-state key
     building is a tuple allocation. One prefix per phase per workload.
     Under the default [Oracle_digest] keying each is O(1) off the oracle's
     incremental boundary digests; [Tree_serialization] keeps the historical
     whole-tree rendering, so it stays memoized lazily. *)
  let call_texts = lazy (Array.map Vfs.Syscall.to_string workload_arr) in
  let phase_prefixes : (Checker.phase, string) Hashtbl.t = Hashtbl.create 8 in
  let phase_prefix phase =
    match Hashtbl.find_opt phase_prefixes phase with
    | Some p -> p
    | None ->
      let texts = Lazy.force call_texts in
      let d =
        match opts.vcache_keying with
        | Vcache.Oracle_digest -> Vcache.phase_digest oracle ~calls:texts phase
        | Vcache.Tree_serialization ->
          Vcache.phase_digest_serialized oracle ~calls:texts phase
      in
      let p = Vcache.prefix ~fs:driver.Vfs.Driver.name ~phase_digest:d in
      Hashtbl.add phase_prefixes phase p;
      p
  in
  (* Mount and check the current (mutated) replay image. [undo] is armed on
   the mount's [Pm] so recovery-time writes are also rolled back by the
   caller. *)
  let mount_and_check ~phase ~undo =
    let pm2 = Pm.create replay in
    Pm.set_undo pm2 (Some undo);
    let kinds =
      match driver.Vfs.Driver.mount pm2 with
      | exception e ->
        stats.failed_mounts <- stats.failed_mounts + 1;
        [ Report.Recovery_fault (Pmem.Fault.to_string e) ]
      | Error m ->
        stats.failed_mounts <- stats.failed_mounts + 1;
        [ Report.Unmountable m ]
      | Ok h -> (
        match
          let tree = Vfs.Walker.capture h in
          let ks =
            Checker.check ~atomic_data:driver.Vfs.Driver.atomic_data
              ~consistency:driver.Vfs.Driver.consistency ~workload:calls ~oracle ~phase ~tree
          in
          if ks = [] && opts.check_usability then
            match usability_probe h tree with
            | Some m -> [ Report.Unusable m ]
            | None -> []
          else ks
        with
        | ks -> ks
        | exception e -> [ Report.Recovery_fault (Pmem.Fault.to_string e) ])
    in
    Pm.set_undo pm2 None;
    kinds
  in
  (* One enumerated crash state: apply its writes onto the replay image
     under an undo session, digest the result (O(dirty lines) thanks to the
     image's incremental digest), then consult the two caches before paying
     for a mount+check:
     - per-point dedup ([opts.dedup_states], PR 1): subsets producing
       byte-identical images at this crash point are checked once; keyed by
       the post-apply digest, which replaced the [Coalesce.effective_delta]
       keying whose cost exceeded the mounts it saved.
     - campaign-wide verdict cache ([vcache]): equivalent states reached at
       other crash points or in other workloads replay the memoized kinds
       without mounting. Reports still go through [emit] with this
       occurrence's crash point, so finding sets are unchanged. *)
  let check_state ~phase ~point_seen ~base_units units_arr subset_idxs ~n =
    stats.crash_states <- stats.crash_states + 1;
    let subset_units = List.map (fun i -> units_arr.(i)) subset_idxs in
    let replay_units = base_units @ subset_units in
    let undo = Persist.Undo.create replay in
    List.iter
      (fun (u : Coalesce.t) ->
        List.iter (fun (addr, data) -> Persist.Undo.write_string undo ~off:addr data) u.parts)
      replay_units;
    let dg = Image.digest replay in
    let skip =
      opts.dedup_states
      &&
      if Hashtbl.mem point_seen dg then begin
        stats.dedup_hits <- stats.dedup_hits + 1;
        true
      end
      else begin
        Hashtbl.replace point_seen dg ();
        false
      end
    in
    if skip then Persist.Undo.rollback undo
    else begin
      let finish kinds =
        Persist.Undo.rollback undo;
        if kinds <> [] then
          let subset_seqs =
            List.map (fun (u : Coalesce.t) -> u.Coalesce.seq) subset_units
          in
          emit ~phase ~subset_seqs ~n kinds
      in
      match vcache with
      | None -> finish (mount_and_check ~phase ~undo)
      | Some vc -> (
        let key = Vcache.key_of ~prefix:(phase_prefix phase) ~image_digest:dg in
        match Vcache.find vc key with
        | Some kinds ->
          stats.vcache_hits <- stats.vcache_hits + 1;
          finish kinds
        | None ->
          let kinds = mount_and_check ~phase ~undo in
          Vcache.add vc key kinds;
          finish kinds)
    end
  in
  (* The Vinter-style read-set heuristic (paper section 6.2): probe-mount
     the fully-fenced prefix state with a read recorder armed, then keep
     only the in-flight writes whose target addresses recovery actually
     inspects. Writes recovery never reads cannot change its outcome, so
     subsets are enumerated over the hot units only. *)
  let recovery_read_set () =
    let undo = Persist.Undo.create replay in
    let pm2 = Pm.create replay in
    Pm.set_undo pm2 (Some undo);
    let reads = ref [] in
    Pm.set_read_hook pm2 (Some (fun off len -> reads := (off, len) :: !reads));
    (try
       match driver.Vfs.Driver.mount pm2 with
       | exception _ -> ()
       | Error _ -> ()
       | Ok _ -> ()
     with _ -> ());
    Pm.set_read_hook pm2 None;
    Pm.set_undo pm2 None;
    Persist.Undo.rollback undo;
    !reads
  in
  let overlaps_reads reads (u : Coalesce.t) =
    List.exists
      (fun (addr, data) ->
        let e = addr + String.length data in
        List.exists (fun (roff, rlen) -> addr < roff + rlen && roff < e) reads)
      u.Coalesce.parts
  in
  let check_point ~phase =
    let weak = driver.Vfs.Driver.consistency = Vfs.Driver.Weak in
    let should_check =
      if not weak then true
      else match phase with Checker.After i -> fsync_boundary i | _ -> false
    in
    if should_check then begin
      stats.crash_points <- stats.crash_points + 1;
      let all_units = List.rev !vec in
      let units_arr, cold_units =
        if opts.read_set_heuristic && all_units <> [] then begin
          let reads = recovery_read_set () in
          let hot, cold = List.partition (overlaps_reads reads) all_units in
          (Array.of_list hot, cold)
        end
        else (Array.of_list all_units, [])
      in
      (* Under the read-set heuristic, subsets are enumerated over the hot
         units only — but the cold (never-read) units still exist, and
         hot-subset states must also be constructed on the base that has
         them applied: recovery cannot observe cold writes, yet the checker
         can (file data is typically cold), so each hot subset is checked
         both without the cold units (prefix base, where un-persisted cold
         data exposes atomicity/torn-data bugs) and with all of them
         applied (the base the next crash point builds on, where persisted
         cold damage surfaces). With nothing hot this keeps the full-vector
         state checked. Without the heuristic there are no cold units and
         the single prefix base is used. *)
      let bases = if cold_units = [] then [ [] ] else [ []; cold_units ] in
      let n = Array.length units_arr in
      stats.max_in_flight <- max stats.max_in_flight n;
      stats.in_flight_sizes <- n :: stats.in_flight_sizes;
      let point_seen : (int, unit) Hashtbl.t = Hashtbl.create 32 in
      ignore
        (enumerate_subsets ~n ~cap:opts.cap ~limit:opts.max_states_per_point (fun idxs ->
             List.iter
               (fun base_units -> check_state ~phase ~point_seen ~base_units units_arr idxs ~n)
               bases))
    end
  in
  let apply_all () =
    List.iter
      (fun (u : Coalesce.t) ->
        List.iter (fun (addr, data) -> Image.write_string replay ~off:addr data) u.Coalesce.parts)
      (List.rev !vec);
    vec := []
  in
  let phase_now () =
    match !cur_syscall with
    | Some i -> Checker.During i
    | None -> ( match !last_done with Some i -> Checker.After i | None -> Checker.Initial)
  in
  (* Epoch boundary: pull verdicts other domains published before scanning
     this workload's trace, and publish ours when done (also on Stop). *)
  (match vcache with Some vc -> Vcache.sync vc | None -> ());
  (try
     Trace.iter trace (fun op ->
         match op with
         | Trace.Store s ->
           vec :=
             Coalesce.add ~coalesce:opts.coalesce ~data_threshold:opts.data_threshold !vec s
               ~syscall:!cur_syscall
         | Trace.Fence ->
           stats.fences <- stats.fences + 1;
           incr fence_no;
           check_point ~phase:(phase_now ());
           apply_all ()
         | Trace.Syscall_begin { idx; _ } -> cur_syscall := Some idx
         | Trace.Syscall_end { idx; _ } ->
           cur_syscall := None;
           incr fence_no;
           check_point ~phase:(Checker.After idx);
           last_done := Some idx)
   with Stop -> ());
  (match vcache with Some vc -> Vcache.sync vc | None -> ());
  let reports = List.rev !reports in
  let reports = match minimize with None -> reports | Some f -> List.map f reports in
  { reports; stats; trace; outcomes }

let replay_recorded ?(opts = default_opts) ?vcache ?minimize (driver : Vfs.Driver.t) r =
  replay_phases ~opts ?vcache ?minimize driver ~calls:r.rec_calls ~trace:r.rec_trace
    ~outcomes:r.rec_outcomes ~replay:(Image.snapshot r.rec_base)

let test_workload ?(opts = default_opts) ?vcache ?minimize (driver : Vfs.Driver.t) calls =
  let r = record ~opts driver calls in
  (* [rec_base] is consumed directly: one-shot runs never reuse it, and this
     avoids a full-image copy per workload in the campaign hot path. *)
  replay_phases ~opts ?vcache ?minimize driver ~calls ~trace:r.rec_trace
    ~outcomes:r.rec_outcomes ~replay:r.rec_base

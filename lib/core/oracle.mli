(** The oracle: the workload's intended effect, computed on {!Memfs}.

    Chipmunk compares every crash state against oracle file versions (paper
    section 3.3). We run the workload once on a fresh in-memory file system
    and snapshot the whole tree at every syscall boundary — small ACE/fuzzer
    trees make whole-tree snapshots cheap, and they subsume both the
    "modified files match one version" and the "unmodified files are
    untouched" checks. *)

type t

val run : Vfs.Syscall.t list -> t

val n_calls : t -> int

val pre : t -> int -> Vfs.Walker.tree
(** Tree before syscall [i] ran. *)

val post : t -> int -> Vfs.Walker.tree
(** Tree after syscall [i] completed. *)

val final : t -> Vfs.Walker.tree

val target : t -> int -> string option
(** For fd-based calls (write/pwrite/fallocate/fsync/fdatasync), the path the
    descriptor referred to when syscall [i] ran; [None] for other calls or
    unresolvable descriptors. *)

val ret : t -> int -> int
(** Oracle return value of syscall [i]. *)

val digest : t -> int -> int
(** Digest of the tree at boundary [i] (boundary 0 is the initial tree,
    boundary [i+1] follows syscall [i]) — equal to [Vfs.Walker.digest] of
    that tree, but maintained incrementally in O(changed nodes) per syscall
    from {!Memfs}'s dirty-path set. *)

val pre_digest : t -> int -> int
(** Digest of [pre t i]; [digest t i]. *)

val post_digest : t -> int -> int
(** Digest of [post t i]; [digest t (i + 1)]. *)

val redigest : t -> int -> int
(** From-scratch [Vfs.Walker.digest] of the boundary-[i] tree — the test
    oracle for {!digest}, the analogue of [Pmem.Image.rehash]. *)

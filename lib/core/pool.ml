let default_jobs () =
  let n = Domain.recommended_domain_count () in
  max 1 (min n 8)

type ('a, 'b) state = {
  mutex : Mutex.t;
  finished : Condition.t;
  mutable remaining : 'a Seq.t;
  mutable next_index : int;
  mutable results : (int * 'a * 'b) list;  (* completion order *)
  mutable stopped : bool;
  mutable failure : exn option;
  mutable live : int;  (* worker domains still running *)
}

let locked st f =
  Mutex.lock st.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.mutex) f

(* Pull the next task, or [None] to drain. Forcing the sequence happens
   here, under the lock: task generation (e.g. ACE workload expansion) is
   cheap relative to the work itself. *)
let next_task st ~stop =
  locked st (fun () ->
      if st.stopped || st.failure <> None then None
      else if stop () then begin
        st.stopped <- true;
        None
      end
      else
        match st.remaining () with
        | Seq.Nil -> None
        | Seq.Cons (x, rest) ->
          st.remaining <- rest;
          let i = st.next_index in
          st.next_index <- i + 1;
          Some (i, x))

let record st ~on_result i x y =
  locked st (fun () ->
      st.results <- (i, x, y) :: st.results;
      match on_result with
      | None -> ()
      | Some g -> (
        try g i y with e -> if st.failure = None then st.failure <- Some e))

let fail st e = locked st (fun () -> if st.failure = None then st.failure <- Some e)

let rec worker_loop st ~stop ~on_result f =
  match next_task st ~stop with
  | None -> ()
  | Some (i, x) ->
    (match f x with
    | y ->
      record st ~on_result i x y;
      worker_loop st ~stop ~on_result f
    | exception e -> fail st e)

let worker st ~stop ~on_result f () =
  Fun.protect
    ~finally:(fun () ->
      locked st (fun () ->
          st.live <- st.live - 1;
          Condition.broadcast st.finished))
    (fun () -> worker_loop st ~stop ~on_result f)

let map ?jobs ?(stop = fun () -> false) ?on_result f seq =
  let jobs = match jobs with None -> default_jobs () | Some j -> max 1 (min j 64) in
  let st =
    {
      mutex = Mutex.create ();
      finished = Condition.create ();
      remaining = seq;
      next_index = 0;
      results = [];
      stopped = false;
      failure = None;
      live = jobs;
    }
  in
  if jobs <= 1 then begin
    st.live <- 0;
    worker_loop st ~stop ~on_result f
  end
  else begin
    let domains = List.init jobs (fun _ -> Domain.spawn (worker st ~stop ~on_result f)) in
    (* Wait on the condition until every worker has signed off, then join
       to reclaim the domains (join also surfaces any escaped exception). *)
    locked st (fun () ->
        while st.live > 0 do
          Condition.wait st.finished st.mutex
        done);
    List.iter Domain.join domains
  end;
  (match st.failure with Some e -> raise e | None -> ());
  List.sort (fun (i, _, _) (j, _, _) -> compare (i : int) j) st.results

(** Campaign-wide verdict cache.

    Memoizes {!Checker.check} verdicts (the list of {!Report.kind}s, possibly
    empty) under a key that captures everything the verdict can depend on:
    the file system name, a digest of the crash phase's oracle slice (rendered
    syscall + the pre/post trees it is judged against + the fsync target for
    weak systems) and the crash image's content {!Pmem.Image.digest}. The
    syscall {e index} is deliberately absent, so equivalent crash states
    reached at different positions — or in different workloads sharing an ACE
    family prefix — hit the same cache line and skip the mount+check round
    entirely. Reports are still emitted per occurrence with their own crash
    point, so finding sets are byte-identical with the cache on or off.

    Thread-safe via the PR 3 snapshot/merge pattern: lookups and inserts run
    against a lock-free per-domain view ({!Domain.DLS}); {!sync} exchanges
    fresh entries with a mutex-protected shared table at epoch boundaries
    (the harness syncs before and after each workload's replay loop). Hit
    counts therefore depend on scheduling, but findings never do. *)

type t

val create : unit -> t
(** A fresh, empty cache. Create one per campaign/fuzz run: entries are only
    valid for a single driver instance (e.g. buggy and clean NOVA share the
    ["nova"] name but mount differently). *)

type ckey
(** A cache key: structurally the phase prefix plus the raw image digest, so
    building one per crash state allocates a tuple, not a rendered string. *)

val prefix : fs:string -> phase_digest:string -> string
(** The per-phase half of the key; memoize one per (workload, phase) and
    feed it to {!key_of} for every crash state of that phase. *)

val key_of : prefix:string -> image_digest:int -> ckey
(** Cache key for one crash state, from a memoized {!prefix}. O(1). *)

val key : fs:string -> image_digest:int -> phase_digest:string -> ckey
(** [key_of ~prefix:(prefix ~fs ~phase_digest) ~image_digest]. *)

type keying = Oracle_digest | Tree_serialization
(** How the oracle-slice component of the key is computed: from the oracle's
    incrementally maintained boundary digests (the default — O(1) per
    phase), or by re-serializing whole oracle trees (the historical scheme,
    kept as a differential baseline; byte-identical digests to PR 4). Both
    cover exactly what the checker reads, so findings are identical under
    either; only hit layout and key-building cost differ. *)

val phase_digest : Oracle.t -> calls:string array -> Checker.phase -> string
(** Digest-keying oracle slice for [phase]: the [During]/[After] syscall
    text and fsync target plus the pre/post boundary digests — no tree is
    walked or serialized. [calls] is the pre-rendered workload
    ([Vfs.Syscall.to_string] per call). *)

val phase_digest_serialized :
  Oracle.t -> calls:string array -> Checker.phase -> string
(** [Tree_serialization] oracle slice for [phase]. Memoize per (workload,
    phase) — it serializes whole oracle trees. *)

val find : t -> ckey -> Report.kind list option
(** Lookup in this domain's view only (lock-free). [Some []] means "cached as
    consistent"; [None] means not cached here yet. *)

val add : t -> ckey -> Report.kind list -> unit
(** Record a verdict in this domain's view; published to other domains at the
    next {!sync}. *)

val sync : t -> unit
(** Publish locally-added entries to the shared table and pull entries other
    domains published since this domain's last sync. *)

val entries : t -> int
(** Number of entries published to the shared table so far. *)

(** Bug reports produced by the consistency checker.

    A report carries enough context to reproduce the bug (paper Figure 1):
    the workload, the crash point (which fence / syscall boundary), and the
    subset of in-flight writes that was replayed to build the failing crash
    state. [fingerprint] gives a stable identity used to deduplicate the
    many crash states that trigger the same underlying bug. *)

type crash_point = {
  fence_no : int;  (** Index of the fence (or syscall boundary) in the trace. *)
  during_syscall : int option;  (** Syscall in progress, if the crash is mid-call. *)
  after_syscall : int option;  (** Last completed syscall. *)
  subset : int list;  (** Sequence numbers of the replayed in-flight writes. *)
  in_flight : int;  (** Size of the in-flight vector at this point. *)
}

type kind =
  | Unmountable of string  (** Recovery rejected the crash state. *)
  | Recovery_fault of string  (** Recovery crashed (OOB access, double free...). *)
  | Atomicity of { syscall : string; diffs : string list }
      (** Mid-call state matches neither the pre- nor post-state. *)
  | Synchrony of { syscall : string; diffs : string list }
      (** Post-call state does not match the completed operation. *)
  | Torn_data of { path : string; detail : string }
      (** File bytes that are neither old, new, nor zero. *)
  | Inaccessible of { path : string; error : string }
      (** A file or directory in the crash state cannot be inspected. *)
  | Unusable of string  (** The usability probe (create/write/delete) failed. *)

type t = {
  fs : string;
  workload : Vfs.Syscall.t list;
  crash_point : crash_point;
  kind : kind;
}

val fingerprint : t -> string
(** Stable identity for deduplication: the kind of failure, the syscall
    involved, and a normalized digest of the evidence — not the specific
    crash state. *)

val kind_label : kind -> string
val summary : t -> string
val pp : Format.formatter -> t -> unit
(** Full report: workload listing, crash point, evidence. *)

val to_json : t -> string
(** The report as a self-contained JSON object (fs, kind, crash point,
    workload listing, evidence, fingerprint) — the machine-readable form
    used by [BENCH_parallel.json], reproducer artifacts and other tooling
    that tracks findings across runs. The workload array uses the
    {!Vfs.Workload_io} per-line codec, so the JSON carries everything
    needed to re-derive the crash state. *)

val of_json : string -> (t, string) result
(** Inverse of {!to_json} ([of_json (to_json t) = Ok t] for every report):
    the loader behind [chipmunk-cli minimize]/[reproduce]. Derived fields
    ([fingerprint], [summary]) are ignored and recomputed; unknown extra
    fields (e.g. a reproducer artifact's shrink metadata) are tolerated. *)

val of_json_value : Json.t -> (t, string) result
(** {!of_json} on an already-parsed document, for callers that wrap report
    JSON inside a larger object. *)

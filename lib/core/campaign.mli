(** Campaign runner: drive the harness over a suite of workloads and record
    when each unique bug surfaced — the measurement behind the paper's
    Figure 3 (cumulative time to find bugs) and the section 4.3 suite
    statistics.

    One entry point, {!run}, configured by the shared {!Run.exec} /
    {!Run.budget} records: [exec.jobs = 1] tests workloads sequentially in
    suite order in the calling domain; [jobs > 1] shards the suite across
    OCaml 5 domains (see {!Pool}) and merges results in workload-index
    order, so every job count produces the same finding fingerprints
    attributed to the same workload indices. *)

type event = {
  fingerprint : string;
  report : Report.t;
  workload_name : string;
  workload_index : int;  (** Position of the workload in the suite. *)
  elapsed : float;
      (** Wall-clock completion time (seconds since campaign start) of the
          workload that found it — the same contract at every job count. *)
  states_so_far : int;  (** Crash states checked before the discovery. *)
}

type result = {
  events : event list;  (** Unique findings, in discovery order. *)
  workloads_run : int;
  crash_states : int;
  crash_points : int;
  dedup_hits : int;
      (** Crash states skipped by the harness dedup cache (see
          {!Harness.stats.dedup_hits}), summed over the campaign. *)
  vcache_hits : int;
      (** Crash states whose verdict came from the campaign-wide {!Vcache}
          (summed {!Harness.stats.vcache_hits}); [0] when the campaign ran
          with [exec.use_vcache = false]. Hit counts vary with scheduling
          at [jobs > 1]; findings do not. *)
  elapsed : float;
  in_flight_sizes : int list;
      (** One sample per crash point, unordered; empty when the campaign
          was run with [exec.keep_sizes = false]. *)
  max_in_flight : int;
}

val run :
  ?exec:Run.exec ->
  ?budget:Run.budget ->
  Vfs.Driver.t ->
  (string * Vfs.Syscall.t list) Seq.t ->
  result
(** Run the suite under [exec] (how: harness opts, minimizer, worker
    domains) within [budget] (when to stop), deduplicating findings by
    fingerprint across the whole campaign. Defaults: {!Run.default_exec}
    and {!Run.unlimited}.

    Each worker runs {!Harness.test_workload} on its own device image, so
    no harness state is shared. Findings, their fingerprints and their
    [workload_index] attributions are deterministic across job counts
    because results are merged in workload-index order with ties broken by
    lowest index. [exec.minimize] is applied in that merge phase, after
    campaign-wide dedup — its cost is paid once per unique bug.

    Budget caps: [max_workloads] (and its campaign synonym [max_execs])
    truncate the suite up front; [max_seconds] and [stop_after_findings]
    stop the campaign from dispatching further workloads once satisfied —
    in-flight workloads still complete (and are merged), so with [jobs >
    1] and one of these set, [workloads_run] may exceed what a sequential
    run would have executed. The [events] list is truncated to
    [stop_after_findings] entries.

    When [exec.use_vcache] is set (the default), the campaign creates one
    {!Vcache} and threads it through every harness call; worker domains
    exchange verdicts at workload boundaries. Finding sets are identical
    with the cache on or off, at any job count. *)

(** Campaign runner: drive the harness over a suite of workloads and record
    when each unique bug surfaced — the measurement behind the paper's
    Figure 3 (cumulative time to find bugs) and the section 4.3 suite
    statistics.

    Two drivers share one deterministic merge: {!run} tests workloads
    sequentially in suite order; {!run_parallel} shards the suite across
    OCaml 5 domains (see {!Pool}) and merges results in workload-index
    order, so both produce the same finding fingerprints attributed to the
    same workload indices. *)

type event = {
  fingerprint : string;
  report : Report.t;
  workload_name : string;
  workload_index : int;  (** Position of the workload in the suite. *)
  elapsed : float;  (** Seconds of wall time since campaign start. *)
  states_so_far : int;  (** Crash states checked before the discovery. *)
}

type result = {
  events : event list;  (** Unique findings, in discovery order. *)
  workloads_run : int;
  crash_states : int;
  crash_points : int;
  dedup_hits : int;
      (** Crash states skipped by the harness dedup cache (see
          {!Harness.stats.dedup_hits}), summed over the campaign. *)
  elapsed : float;
  in_flight_sizes : int list;
      (** One sample per crash point, unordered; empty when the campaign
          was run with [~keep_sizes:false]. *)
  max_in_flight : int;
}

val run :
  ?opts:Harness.opts ->
  ?minimize:(Report.t -> Report.t) ->
  ?stop_after_findings:int ->
  ?max_workloads:int ->
  ?max_seconds:float ->
  ?keep_sizes:bool ->
  Vfs.Driver.t ->
  (string * Vfs.Syscall.t list) Seq.t ->
  result
(** Run workloads in suite order, deduplicating findings by fingerprint
    across the whole campaign. [keep_sizes] (default [true]) controls
    whether the per-crash-point in-flight size samples are retained; long
    campaigns that do not consume them should pass [false] so the
    accumulator stays O(1) per crash point.

    [minimize] (typically [Shrink.Minimize.rewrite]) is applied to each
    finding {e after} campaign-wide fingerprint dedup, so its cost is paid
    once per unique bug rather than once per duplicate report. It must
    preserve the fingerprint. *)

val run_parallel :
  ?opts:Harness.opts ->
  ?minimize:(Report.t -> Report.t) ->
  ?stop_after_findings:int ->
  ?max_workloads:int ->
  ?max_seconds:float ->
  ?keep_sizes:bool ->
  ?jobs:int ->
  Vfs.Driver.t ->
  (string * Vfs.Syscall.t list) Seq.t ->
  result
(** Like {!run}, but shards the suite across [jobs] worker domains
    (default {!Pool.default_jobs}; [jobs <= 1] degenerates to a sequential
    run). Each worker runs {!Harness.test_workload} on its own device
    image, so no harness state is shared. Findings, their fingerprints and
    their [workload_index] attributions are deterministic — identical to
    {!run} on the same suite — because results are merged in workload-index
    order with ties broken by lowest index.

    [stop_after_findings] and [max_seconds] stop the campaign from
    dispatching further workloads once satisfied; in-flight workloads still
    complete (and are merged), so with these set, [workloads_run] may
    exceed what the sequential runner would have executed. The [events]
    list is truncated to [stop_after_findings] entries. [elapsed] on each
    event is the wall-clock completion time of the workload that found it. *)

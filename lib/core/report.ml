type crash_point = {
  fence_no : int;
  during_syscall : int option;
  after_syscall : int option;
  subset : int list;
  in_flight : int;
}

type kind =
  | Unmountable of string
  | Recovery_fault of string
  | Atomicity of { syscall : string; diffs : string list }
  | Synchrony of { syscall : string; diffs : string list }
  | Torn_data of { path : string; detail : string }
  | Inaccessible of { path : string; error : string }
  | Unusable of string

type t = {
  fs : string;
  workload : Vfs.Syscall.t list;
  crash_point : crash_point;
  kind : kind;
}

let kind_label = function
  | Unmountable _ -> "unmountable"
  | Recovery_fault _ -> "recovery-fault"
  | Atomicity _ -> "atomicity"
  | Synchrony _ -> "synchrony"
  | Torn_data _ -> "torn-data"
  | Inaccessible _ -> "inaccessible"
  | Unusable _ -> "unusable"

(* Strip volatile detail (numbers that vary per crash state) so that the
   same root cause folds to the same fingerprint. *)
let normalize s =
  String.map (fun c -> if c >= '0' && c <= '9' then '#' else c) s

let syscall_name = function
  | None -> "-"
  | Some s -> (
    match String.index_opt s ' ' with None -> s | Some i -> String.sub s 0 i)

let first_word_of_call workload idx =
  match List.nth_opt workload idx with
  | None -> "-"
  | Some c -> syscall_name (Some (Vfs.Syscall.to_string c))

let fingerprint t =
  let ctx =
    match (t.crash_point.during_syscall, t.crash_point.after_syscall) with
    | Some i, _ -> "during:" ^ first_word_of_call t.workload i
    | None, Some i -> "after:" ^ first_word_of_call t.workload i
    | None, None -> "init"
  in
  let evidence =
    match t.kind with
    | Unmountable m | Recovery_fault m | Unusable m -> normalize m
    | Atomicity { diffs; _ } | Synchrony { diffs; _ } ->
      normalize (String.concat "|" (List.filteri (fun i _ -> i < 2) diffs))
    | Torn_data { detail; _ } -> normalize detail
    | Inaccessible { error; _ } -> normalize error
  in
  Printf.sprintf "%s/%s/%s/%s" t.fs (kind_label t.kind) ctx evidence

let summary t =
  let where =
    match (t.crash_point.during_syscall, t.crash_point.after_syscall) with
    | Some i, _ -> Printf.sprintf "during syscall %d (%s)" i (first_word_of_call t.workload i)
    | None, Some i -> Printf.sprintf "after syscall %d (%s)" i (first_word_of_call t.workload i)
    | None, None -> "before any syscall"
  in
  let what =
    match t.kind with
    | Unmountable m -> "file system unmountable: " ^ m
    | Recovery_fault m -> "recovery crashed: " ^ m
    | Atomicity { syscall; _ } -> "atomicity of " ^ syscall_name (Some syscall) ^ " broken"
    | Synchrony { syscall; _ } -> syscall_name (Some syscall) ^ " not synchronous"
    | Torn_data { path; _ } -> "torn/garbage data in " ^ path
    | Inaccessible { path; error } -> path ^ " inaccessible (" ^ error ^ ")"
    | Unusable m -> "file system unusable after recovery: " ^ m
  in
  Printf.sprintf "[%s] %s, crash %s" t.fs what where

(* Minimal JSON encoding (strings, ints, lists, objects) — enough for the
   machine-readable bench/CI outputs without an external dependency. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = "\"" ^ json_escape s ^ "\""
let json_int_opt = function None -> "null" | Some i -> string_of_int i
let json_list items = "[" ^ String.concat "," items ^ "]"
let json_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_str k ^ ":" ^ v) fields) ^ "}"

let evidence_fields = function
  | Unmountable m | Recovery_fault m | Unusable m -> [ ("evidence", json_str m) ]
  | Atomicity { syscall; diffs } | Synchrony { syscall; diffs } ->
    [ ("syscall", json_str syscall); ("diffs", json_list (List.map json_str diffs)) ]
  | Torn_data { path; detail } -> [ ("path", json_str path); ("detail", json_str detail) ]
  | Inaccessible { path; error } -> [ ("path", json_str path); ("error", json_str error) ]

let to_json t =
  json_obj
    ([
       ("fs", json_str t.fs);
       ("kind", json_str (kind_label t.kind));
       ("fingerprint", json_str (fingerprint t));
       ("summary", json_str (summary t));
       ( "crash_point",
         json_obj
           [
             ("fence_no", string_of_int t.crash_point.fence_no);
             ("during_syscall", json_int_opt t.crash_point.during_syscall);
             ("after_syscall", json_int_opt t.crash_point.after_syscall);
             ("subset", json_list (List.map string_of_int t.crash_point.subset));
             ("in_flight", string_of_int t.crash_point.in_flight);
           ] );
       ( "workload",
         json_list (List.map (fun c -> json_str (Vfs.Syscall.to_string c)) t.workload) );
     ]
    @ evidence_fields t.kind)

let pp ppf t =
  Format.fprintf ppf "=== BUG REPORT (%s) ===@." t.fs;
  Format.fprintf ppf "%s@." (summary t);
  Format.fprintf ppf "crash point: fence %d, in-flight %d, replayed subset [%s]@."
    t.crash_point.fence_no t.crash_point.in_flight
    (String.concat "; " (List.map string_of_int t.crash_point.subset));
  Format.fprintf ppf "workload:@.";
  List.iteri (fun i c -> Format.fprintf ppf "  %2d: %s@." i (Vfs.Syscall.to_string c)) t.workload;
  (match t.kind with
  | Atomicity { diffs; _ } | Synchrony { diffs; _ } ->
    Format.fprintf ppf "evidence:@.";
    List.iter (fun d -> Format.fprintf ppf "  %s@." d) diffs
  | Unmountable m | Recovery_fault m | Unusable m -> Format.fprintf ppf "evidence: %s@." m
  | Torn_data { path; detail } -> Format.fprintf ppf "evidence: %s: %s@." path detail
  | Inaccessible { path; error } -> Format.fprintf ppf "evidence: %s: %s@." path error);
  Format.fprintf ppf "fingerprint: %s@." (fingerprint t)

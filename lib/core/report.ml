type crash_point = {
  fence_no : int;
  during_syscall : int option;
  after_syscall : int option;
  subset : int list;
  in_flight : int;
}

type kind =
  | Unmountable of string
  | Recovery_fault of string
  | Atomicity of { syscall : string; diffs : string list }
  | Synchrony of { syscall : string; diffs : string list }
  | Torn_data of { path : string; detail : string }
  | Inaccessible of { path : string; error : string }
  | Unusable of string

type t = {
  fs : string;
  workload : Vfs.Syscall.t list;
  crash_point : crash_point;
  kind : kind;
}

let kind_label = function
  | Unmountable _ -> "unmountable"
  | Recovery_fault _ -> "recovery-fault"
  | Atomicity _ -> "atomicity"
  | Synchrony _ -> "synchrony"
  | Torn_data _ -> "torn-data"
  | Inaccessible _ -> "inaccessible"
  | Unusable _ -> "unusable"

(* Strip volatile detail (numbers that vary per crash state) so that the
   same root cause folds to the same fingerprint. *)
let normalize s =
  String.map (fun c -> if c >= '0' && c <= '9' then '#' else c) s

let syscall_name = function
  | None -> "-"
  | Some s -> (
    match String.index_opt s ' ' with None -> s | Some i -> String.sub s 0 i)

let first_word_of_call workload idx =
  match List.nth_opt workload idx with
  | None -> "-"
  | Some c -> syscall_name (Some (Vfs.Syscall.to_string c))

let fingerprint t =
  let ctx =
    match (t.crash_point.during_syscall, t.crash_point.after_syscall) with
    | Some i, _ -> "during:" ^ first_word_of_call t.workload i
    | None, Some i -> "after:" ^ first_word_of_call t.workload i
    | None, None -> "init"
  in
  let evidence =
    match t.kind with
    | Unmountable m | Recovery_fault m | Unusable m -> normalize m
    | Atomicity { diffs; _ } | Synchrony { diffs; _ } ->
      normalize (String.concat "|" (List.filteri (fun i _ -> i < 2) diffs))
    | Torn_data { detail; _ } -> normalize detail
    | Inaccessible { error; _ } -> normalize error
  in
  Printf.sprintf "%s/%s/%s/%s" t.fs (kind_label t.kind) ctx evidence

let summary t =
  let where =
    match (t.crash_point.during_syscall, t.crash_point.after_syscall) with
    | Some i, _ -> Printf.sprintf "during syscall %d (%s)" i (first_word_of_call t.workload i)
    | None, Some i -> Printf.sprintf "after syscall %d (%s)" i (first_word_of_call t.workload i)
    | None, None -> "before any syscall"
  in
  let what =
    match t.kind with
    | Unmountable m -> "file system unmountable: " ^ m
    | Recovery_fault m -> "recovery crashed: " ^ m
    | Atomicity { syscall; _ } -> "atomicity of " ^ syscall_name (Some syscall) ^ " broken"
    | Synchrony { syscall; _ } -> syscall_name (Some syscall) ^ " not synchronous"
    | Torn_data { path; _ } -> "torn/garbage data in " ^ path
    | Inaccessible { path; error } -> path ^ " inaccessible (" ^ error ^ ")"
    | Unusable m -> "file system unusable after recovery: " ^ m
  in
  Printf.sprintf "[%s] %s, crash %s" t.fs what where

let evidence_fields = function
  | Unmountable m | Recovery_fault m | Unusable m -> [ ("evidence", Json.str m) ]
  | Atomicity { syscall; diffs } | Synchrony { syscall; diffs } ->
    [ ("syscall", Json.str syscall); ("diffs", Json.arr (List.map Json.str diffs)) ]
  | Torn_data { path; detail } -> [ ("path", Json.str path); ("detail", Json.str detail) ]
  | Inaccessible { path; error } -> [ ("path", Json.str path); ("error", Json.str error) ]

(* The workload array uses the Workload_io per-line codec (not the display
   form of [Syscall.to_string]) so that [of_json] can parse it back and a
   saved report is a complete, replayable reproducer. *)
let to_json t =
  Json.obj
    ([
       ("fs", Json.str t.fs);
       ("kind", Json.str (kind_label t.kind));
       ("fingerprint", Json.str (fingerprint t));
       ("summary", Json.str (summary t));
       ( "crash_point",
         Json.obj
           [
             ("fence_no", string_of_int t.crash_point.fence_no);
             ("during_syscall", Json.int_opt t.crash_point.during_syscall);
             ("after_syscall", Json.int_opt t.crash_point.after_syscall);
             ("subset", Json.arr (List.map string_of_int t.crash_point.subset));
             ("in_flight", string_of_int t.crash_point.in_flight);
           ] );
       ( "workload",
         Json.arr (List.map (fun c -> Json.str (Vfs.Workload_io.line_of_call c)) t.workload) );
     ]
    @ evidence_fields t.kind)

let ( let* ) = Result.bind

let jfield name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let jstr name j =
  let* v = jfield name j in
  match Json.to_string_opt v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S: expected a string" name)

let jint name j =
  let* v = jfield name j in
  match Json.to_int_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %S: expected an integer" name)

let jint_opt name j =
  let* v = jfield name j in
  match v with
  | Json.Null -> Ok None
  | Json.Int i -> Ok (Some i)
  | _ -> Error (Printf.sprintf "field %S: expected an integer or null" name)

let jlist name j =
  let* v = jfield name j in
  match Json.to_list_opt v with
  | Some l -> Ok l
  | None -> Error (Printf.sprintf "field %S: expected an array" name)

let jstr_list name j =
  let* l = jlist name j in
  List.fold_left
    (fun acc v ->
      let* acc = acc in
      match Json.to_string_opt v with
      | Some s -> Ok (s :: acc)
      | None -> Error (Printf.sprintf "field %S: expected an array of strings" name))
    (Ok []) l
  |> Result.map List.rev

let kind_of_json j =
  let* label = jstr "kind" j in
  match label with
  | "unmountable" ->
    let* m = jstr "evidence" j in
    Ok (Unmountable m)
  | "recovery-fault" ->
    let* m = jstr "evidence" j in
    Ok (Recovery_fault m)
  | "unusable" ->
    let* m = jstr "evidence" j in
    Ok (Unusable m)
  | "atomicity" ->
    let* syscall = jstr "syscall" j in
    let* diffs = jstr_list "diffs" j in
    Ok (Atomicity { syscall; diffs })
  | "synchrony" ->
    let* syscall = jstr "syscall" j in
    let* diffs = jstr_list "diffs" j in
    Ok (Synchrony { syscall; diffs })
  | "torn-data" ->
    let* path = jstr "path" j in
    let* detail = jstr "detail" j in
    Ok (Torn_data { path; detail })
  | "inaccessible" ->
    let* path = jstr "path" j in
    let* error = jstr "error" j in
    Ok (Inaccessible { path; error })
  | other -> Error (Printf.sprintf "unknown report kind %S" other)

let of_json_value j =
  let* fs = jstr "fs" j in
  let* kind = kind_of_json j in
  let* lines = jstr_list "workload" j in
  let* workload =
    List.fold_left
      (fun acc line ->
        let* acc = acc in
        let* call = Vfs.Workload_io.parse_line line in
        Ok (call :: acc))
      (Ok []) lines
    |> Result.map List.rev
  in
  let* cp = jfield "crash_point" j in
  let* fence_no = jint "fence_no" cp in
  let* during_syscall = jint_opt "during_syscall" cp in
  let* after_syscall = jint_opt "after_syscall" cp in
  let* in_flight = jint "in_flight" cp in
  let* subset =
    let* l = jlist "subset" cp in
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        match Json.to_int_opt v with
        | Some i -> Ok (i :: acc)
        | None -> Error "field \"subset\": expected an array of integers")
      (Ok []) l
    |> Result.map List.rev
  in
  Ok
    {
      fs;
      workload;
      crash_point = { fence_no; during_syscall; after_syscall; subset; in_flight };
      kind;
    }

let of_json text =
  let* j = Json.parse text in
  of_json_value j

let pp ppf t =
  Format.fprintf ppf "=== BUG REPORT (%s) ===@." t.fs;
  Format.fprintf ppf "%s@." (summary t);
  Format.fprintf ppf "crash point: fence %d, in-flight %d, replayed subset [%s]@."
    t.crash_point.fence_no t.crash_point.in_flight
    (String.concat "; " (List.map string_of_int t.crash_point.subset));
  Format.fprintf ppf "workload:@.";
  List.iteri (fun i c -> Format.fprintf ppf "  %2d: %s@." i (Vfs.Syscall.to_string c)) t.workload;
  (match t.kind with
  | Atomicity { diffs; _ } | Synchrony { diffs; _ } ->
    Format.fprintf ppf "evidence:@.";
    List.iter (fun d -> Format.fprintf ppf "  %s@." d) diffs
  | Unmountable m | Recovery_fault m | Unusable m -> Format.fprintf ppf "evidence: %s@." m
  | Torn_data { path; detail } -> Format.fprintf ppf "evidence: %s: %s@." path detail
  | Inaccessible { path; error } -> Format.fprintf ppf "evidence: %s: %s@." path error);
  Format.fprintf ppf "fingerprint: %s@." (fingerprint t)

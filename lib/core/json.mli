(** Minimal JSON support with no external dependency.

    The encoder half is a set of string combinators shared by the
    machine-readable outputs ({!Report.to_json}, the bench JSON files, the
    reproducer artifacts); the decoder is a small recursive-descent parser
    used to load those outputs back ({!Report.of_json},
    [Shrink.Artifact.load]). It covers exactly the JSON this repository
    emits: objects, arrays, strings, integers, floats, booleans and null,
    with the usual escapes. *)

(** {1 Encoding} *)

val escape : string -> string
(** Body of a JSON string literal (no surrounding quotes). *)

val str : string -> string
(** A quoted, escaped string literal. *)

val int_opt : int option -> string
(** An integer, or [null]. *)

val arr : string list -> string
(** An array of pre-rendered fragments. *)

val obj : (string * string) list -> string
(** An object of pre-rendered fragments, keys escaped. *)

(** {1 Decoding} *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** Fields in document order. *)

val parse : string -> (t, string) result
(** Parse a complete document; trailing garbage is an error. Errors name
    the offending byte offset. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on missing field or non-object. *)

val to_string_opt : t -> string option
val to_int_opt : t -> int option
val to_list_opt : t -> t list option

(* Encoding: string combinators over pre-rendered fragments. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = "\"" ^ escape s ^ "\""
let int_opt = function None -> "null" | Some i -> string_of_int i
let arr items = "[" ^ String.concat "," items ^ "]"
let obj fields = "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"

(* Decoding: recursive descent over the byte string. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub text !pos 4) in
    pos := !pos + 4;
    match v with Some v -> v | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance ()
        | Some '\\' -> Buffer.add_char b '\\'; advance ()
        | Some '/' -> Buffer.add_char b '/'; advance ()
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 'r' -> Buffer.add_char b '\r'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | Some 'b' -> Buffer.add_char b '\b'; advance ()
        | Some 'f' -> Buffer.add_char b '\012'; advance ()
        | Some 'u' ->
          advance ();
          let cp = hex4 () in
          (* Our encoder only emits \u00xx (control bytes); decode any BMP
             code point to UTF-8 for robustness. *)
          if cp < 0x80 then Buffer.add_char b (Char.chr cp)
          else if cp < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
          end
        | _ -> fail "bad escape");
        go ()
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None ->
        pos := start;
        fail (Printf.sprintf "bad number %S" s))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [ parse_value () ] in
        let rec go () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items := parse_value () :: !items;
            go ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        go ();
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        let rec go () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields := field () :: !fields;
            go ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        go ();
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None
let to_list_opt = function Arr l -> Some l | _ -> None

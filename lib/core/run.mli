(** The unified execution API: one pair of config records shared by every
    entry point that drives the harness — {!workload} (one workload),
    {!Campaign.run} (a workload suite) and [Fuzz.Fuzzer.run] (the gray-box
    fuzzer).

    Before this module each runner grew its own argument soup
    ([?opts ?minimize ?stop_after_findings ?max_workloads ?max_seconds
    ?keep_sizes ?jobs] …) and the three entry points diverged. A {!budget}
    says {e when to stop}; an {!exec} says {e how to run}. Runners ignore
    the caps that do not apply to them and document which ones do. *)

type budget = {
  max_execs : int option;
      (** Cap on harness executions. The fuzzer counts one per generated
          workload; campaigns treat it as a synonym for [max_workloads]. *)
  max_seconds : float option;
      (** Wall-clock cap. Runners stop {e dispatching} new work once
          exceeded; work already in flight still completes and is merged. *)
  stop_after_findings : int option;
      (** Stop once this many unique fingerprints have been found. The
          returned event list is truncated to exactly this many entries. *)
  max_workloads : int option;
      (** Campaign-only: cap on workloads taken from the suite. The fuzzer
          ignores it ([max_execs] is the equivalent knob there). *)
}

val unlimited : budget
(** No caps: every field [None]. *)

val budget :
  ?max_execs:int ->
  ?max_seconds:float ->
  ?stop_after_findings:int ->
  ?max_workloads:int ->
  unit ->
  budget
(** Constructor; omitted caps default to [None] (unlimited). *)

type exec = {
  opts : Harness.opts;  (** Per-workload replay/check options. *)
  minimize : (Report.t -> Report.t) option;
      (** Applied to each unique finding {e after} fingerprint dedup (and,
          in parallel runs, in the deterministic merge phase on the
          caller's domain) — typically [Shrink.Minimize.rewrite]. Must
          preserve the fingerprint. *)
  keep_sizes : bool;
      (** Campaigns: retain the per-crash-point in-flight size samples
          (default [true]). Long campaigns that do not consume them should
          pass [false] so the accumulator stays O(1) per crash point. The
          fuzzer does not surface the samples and ignores this. *)
  jobs : int;
      (** Worker domains. [1] (the default) runs in the calling domain;
          [0] or negative means one per core ({!Pool.default_jobs}). *)
  use_vcache : bool;
      (** Campaign-wide verdict cache (see {!Vcache}): runners create one
          fresh cache per run and thread it through every harness call, so
          equivalent crash states across workloads skip their mount+check.
          Findings are identical on or off; only [vcache_hits] counters
          (and wall-clock) change. On by default. *)
}

val default_exec : exec
(** [{ opts = Harness.default_opts; minimize = None; keep_sizes = true;
    jobs = 1; use_vcache = true }] *)

val exec :
  ?opts:Harness.opts ->
  ?minimize:(Report.t -> Report.t) ->
  ?keep_sizes:bool ->
  ?jobs:int ->
  ?use_vcache:bool ->
  unit ->
  exec
(** Constructor; omitted fields default to {!default_exec}'s values. *)

val effective_jobs : exec -> int
(** [exec.jobs], with [0] and negative resolved to {!Pool.default_jobs}
    and large values clamped to the {!Pool.map} limit. *)

val out_of_budget :
  budget -> execs:int -> seconds:float -> findings:int -> workloads:int -> bool
(** [true] once {e any} cap is reached ([counter >= cap]); [None] caps
    never trigger. This single predicate is the stop rule every runner
    polls, so cap interactions (e.g. a findings cap hitting before an exec
    cap) behave identically across entry points. *)

val workload : ?exec:exec -> Vfs.Driver.t -> Vfs.Syscall.t list -> Harness.result
(** The single-workload entry point on the shared config record:
    {!Harness.test_workload} with [exec.opts], [exec.minimize] and (when
    [exec.use_vcache]) a fresh per-call verdict cache. [exec.jobs] is
    ignored (one workload is one unit of work); budgets do not apply. *)

(** A work-queue scheduler over OCaml 5 domains.

    Campaigns spend nearly all of their time in [Harness.test_workload],
    which is share-nothing: every invocation builds its own device image,
    persistence tracker and oracle. That makes workload-level parallelism
    safe with no changes to the harness — this module shards a lazy
    sequence of tasks across [jobs] worker domains pulling from a common
    cursor (stdlib [Domain]/[Mutex]/[Condition] only; no external
    dependency).

    Results carry the index of the task that produced them, so callers can
    merge deterministically regardless of scheduling order. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] clamped to [\[1, 8\]]. *)

val map :
  ?jobs:int ->
  ?stop:(unit -> bool) ->
  ?on_result:(int -> 'b -> unit) ->
  ('a -> 'b) ->
  'a Seq.t ->
  (int * 'a * 'b) list
(** [map f seq] applies [f] to every element of [seq] on a pool of worker
    domains and returns [(index, input, output)] triples sorted by index
    (the position of the input in [seq]).

    - [jobs] is the number of worker domains (default {!default_jobs};
      [jobs <= 1] runs in the calling domain with identical semantics).
    - [stop] is polled before each task is dispatched; once it returns
      [true] no further tasks start, but tasks already running complete,
      so the returned indices always form a contiguous prefix [0..k].
    - [on_result] is invoked under the pool lock as each task completes
      (in completion order, not index order) — campaigns use it to update
      shared early-stop state such as a finding counter.
    - The sequence is forced lazily, one element per dispatch, under the
      pool lock: it is never evaluated concurrently and never materialized.

    If [f] or [on_result] raises, the pool drains (no new tasks start) and
    the first exception observed is re-raised in the caller. *)

type event = {
  fingerprint : string;
  report : Report.t;
  workload_name : string;
  workload_index : int;
  elapsed : float;
  states_so_far : int;
}

type result = {
  events : event list;
  workloads_run : int;
  crash_states : int;
  crash_points : int;
  dedup_hits : int;
  vcache_hits : int;
  elapsed : float;
  in_flight_sizes : int list;
  max_in_flight : int;
}

(* Per-campaign accumulator: one workload's harness result is merged the
   same way whatever the worker count — the pool feeds results in
   workload-index order, so the first-workload-wins dedup below is
   deterministic under any schedule. *)
type acc = {
  seen : (string, unit) Hashtbl.t;
  mutable events : event list;  (* newest first *)
  mutable workloads : int;
  mutable states : int;
  mutable points : int;
  mutable dedups : int;
  mutable vhits : int;
  mutable sizes : int list;
  mutable max_if : int;
  keep_sizes : bool;
}

let acc_create ~keep_sizes =
  {
    seen = Hashtbl.create 32;
    events = [];
    workloads = 0;
    states = 0;
    points = 0;
    dedups = 0;
    vhits = 0;
    sizes = [];
    max_if = 0;
    keep_sizes;
  }

(* Fold one workload's result in. [minimize] runs only on first
   occurrences — after dedup — so a campaign pays minimization cost once
   per unique fingerprint, not once per duplicate report. *)
let acc_add acc ~name ~index ~elapsed ~minimize (r : Harness.result) =
  acc.workloads <- acc.workloads + 1;
  acc.states <- acc.states + r.Harness.stats.Harness.crash_states;
  acc.points <- acc.points + r.Harness.stats.Harness.crash_points;
  acc.dedups <- acc.dedups + r.Harness.stats.Harness.dedup_hits;
  acc.vhits <- acc.vhits + r.Harness.stats.Harness.vcache_hits;
  if acc.keep_sizes then
    acc.sizes <- List.rev_append r.Harness.stats.Harness.in_flight_sizes acc.sizes;
  acc.max_if <- max acc.max_if r.Harness.stats.Harness.max_in_flight;
  List.iter
    (fun report ->
      let fp = Report.fingerprint report in
      if not (Hashtbl.mem acc.seen fp) then begin
        Hashtbl.replace acc.seen fp ();
        let report = match minimize with None -> report | Some f -> f report in
        acc.events <-
          {
            fingerprint = fp;
            report;
            workload_name = name;
            workload_index = index;
            elapsed;
            states_so_far = acc.states;
          }
          :: acc.events
      end)
    r.Harness.reports

let acc_result acc ~elapsed =
  {
    events = List.rev acc.events;
    workloads_run = acc.workloads;
    crash_states = acc.states;
    crash_points = acc.points;
    dedup_hits = acc.dedups;
    vcache_hits = acc.vhits;
    elapsed;
    in_flight_sizes = acc.sizes;
    max_in_flight = acc.max_if;
  }

let take n l = List.filteri (fun i _ -> i < n) l

let run ?(exec = Run.default_exec) ?(budget = Run.unlimited) driver suite =
  let t0 = Unix.gettimeofday () in
  (* A campaign's unit of execution is one workload, so [max_execs] and
     [max_workloads] bound the same counter; both are enforced up front by
     truncating the suite. *)
  let wl_cap =
    match (budget.Run.max_workloads, budget.Run.max_execs) with
    | None, None -> None
    | Some m, None | None, Some m -> Some m
    | Some a, Some b -> Some (min a b)
  in
  let suite = match wl_cap with None -> suite | Some m -> Seq.take m suite in
  (* Live early-stop state, updated under the pool lock as workloads finish
     (in completion order). It only decides when to stop dispatching; the
     returned result is merged deterministically below. *)
  let live_seen : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let found = Atomic.make 0 in
  let stop () =
    Run.out_of_budget budget ~execs:0 ~workloads:0
      ~seconds:(Unix.gettimeofday () -. t0)
      ~findings:(Atomic.get found)
  in
  let on_result _index ((r : Harness.result), _done_at) =
    List.iter
      (fun report ->
        let fp = Report.fingerprint report in
        if not (Hashtbl.mem live_seen fp) then begin
          Hashtbl.replace live_seen fp ();
          Atomic.incr found
        end)
      r.Harness.reports
  in
  (* One verdict cache for the whole campaign (when enabled): the harness
     syncs it at workload boundaries, so worker domains share verdicts via
     the PR 3 snapshot/merge pattern. Never reused across campaigns — the
     entries are only valid for this [driver] instance. *)
  let vcache = if exec.Run.use_vcache then Some (Vcache.create ()) else None in
  let work (_name, workload) =
    let r = Harness.test_workload ~opts:exec.Run.opts ?vcache driver workload in
    (r, Unix.gettimeofday () -. t0)
  in
  let completed =
    Pool.map ~jobs:(Run.effective_jobs exec) ~stop ~on_result work suite
  in
  (* Deterministic merge: completed workloads arrive sorted by workload
     index, so fingerprint dedup ties always resolve to the lowest index,
     independent of domain scheduling. Minimization also happens here, on
     the caller's domain, so it too only runs on the deterministic set of
     first occurrences. *)
  let acc = acc_create ~keep_sizes:exec.Run.keep_sizes in
  List.iter
    (fun (i, (name, _workload), (r, done_at)) ->
      acc_add acc ~name ~index:i ~elapsed:done_at ~minimize:exec.Run.minimize r)
    completed;
  let result = acc_result acc ~elapsed:(Unix.gettimeofday () -. t0) in
  (* Workloads past the n-th finding may already have been dispatched;
     truncate so the findings cap is exact under any worker count. *)
  match budget.Run.stop_after_findings with
  | Some n when List.length result.events > n -> { result with events = take n result.events }
  | _ -> result

(** The record-and-replay pipeline (paper Figure 2): run a workload on an
    instrumented file system, log its PM writes, construct crash states by
    replaying subsets of in-flight writes at every crash point, mount the
    file system on each crash state and check it for consistency.

    Crash points are placed at every store fence ({e during} system calls —
    the paper's key departure from disk-era tools) and at every system-call
    boundary (checking synchrony). For weak (fsync-based) file systems,
    checks run only at fsync/fdatasync/sync boundaries. *)

type opts = {
  cap : int option;
      (** Maximum number of in-flight writes replayed per crash state
          ([None] = exhaustive). The paper finds a cap of 2 exposes every
          bug in its corpus (Observation 7). *)
  coalesce : bool;  (** Fuse logically-related stores (section 3.2). *)
  data_threshold : int;  (** Minimum bytes for the bulk-data heuristic. *)
  check_usability : bool;
      (** After the oracle checks, probe the recovered file system: create a
          file in every directory, then delete everything. *)
  max_states_per_point : int;  (** Safety valve on subset explosion. *)
  stop_on_first : bool;  (** Stop at the first unique report (campaigns). *)
  granularity : Persist.Pm.granularity;
      (** Function-level (Chipmunk, the default) or instruction-level
          (Yat/Vinter-style) write interception — the ablation behind the
          paper's tractability argument in section 3.2. *)
  read_set_heuristic : bool;
      (** Vinter's state-space reduction, which the paper notes Chipmunk
          could adopt by recording PM read functions (section 6.2): at each
          crash point, probe-mount the prefix state while recording PM
          loads, and enumerate subsets only over the in-flight writes that
          recovery actually reads. Each hot subset is checked on two bases:
          the bare prefix, and the prefix with every cold (never-read) unit
          applied — cold writes are invisible to recovery but not to the
          checker, so hot-subset states must also be constructed on the
          base the next crash point builds on. Off by default. *)
  dedup_states : bool;
      (** Crash-state dedup cache (Vinter deduplicates crash images by
          content before tracing them): per crash point, key each enumerated
          state by its post-apply {!Pmem.Image.digest} — O(dirty lines) via
          the image's incremental digest — and mount/walk/check only the
          first state with a given key. Byte-identical images must check
          identically, so detected reports are unchanged; skips are counted
          in [stats.dedup_hits]. On by default. *)
  vcache_keying : Vcache.keying;
      (** How verdict-cache keys digest the oracle slice:
          [Vcache.Oracle_digest] (default) reads the oracle's incrementally
          maintained boundary digests in O(1) per phase;
          [Vcache.Tree_serialization] re-serializes whole oracle trees (the
          pre-digest scheme, kept as a differential baseline — findings are
          identical under either). Ignored when no [vcache] is passed. *)
}

val default_opts : opts

type stats = {
  mutable crash_points : int;
  mutable crash_states : int;
  mutable failed_mounts : int;
      (** Failed {e actual} mount attempts: states served from a cache do
          not re-mount, so a cached [Unmountable] verdict is not re-counted
          here. *)
  mutable max_in_flight : int;  (** Largest coalesced in-flight vector seen. *)
  mutable fences : int;
  mutable in_flight_sizes : int list;  (** One sample per crash point. *)
  mutable dedup_hits : int;
      (** Crash states skipped by the dedup cache: enumerated subsets whose
          post-apply image digest matched an already-checked state at the
          same crash point. [crash_states] still counts every enumerated
          state, so the mount+check work actually done is
          [crash_states - dedup_hits - vcache_hits]. *)
  mutable vcache_hits : int;
      (** Crash states whose verdict was served by the campaign-wide
          {!Vcache} instead of a mount+check. Unlike [dedup_hits] (per
          crash point, deterministic per workload), vcache hit counts
          depend on what other workloads — possibly on other domains —
          populated the cache first; findings are unaffected either way. *)
}

type result = {
  reports : Report.t list;  (** Deduplicated by fingerprint, oldest first. *)
  stats : stats;
  trace : Persist.Trace.t;
  outcomes : Vfs.Workload.outcome list;
}

type recording = {
  rec_calls : Vfs.Syscall.t list;
  rec_trace : Persist.Trace.t;  (** Full PM write log of the run. *)
  rec_base : Pmem.Image.t;  (** Post-mkfs device image. *)
  rec_outcomes : Vfs.Workload.outcome list;
}
(** A completed phase-1 run (instrumented workload execution), self-contained:
    crash states can be rebuilt from [rec_base] + [rec_trace] any number of
    times without re-running the workload. *)

val record : ?opts:opts -> Vfs.Driver.t -> Vfs.Syscall.t list -> recording
(** Phase 1 only: run [calls] on a fresh instrumented file system and log
    its PM writes. [opts] matters only for [granularity]. *)

val replay_recorded :
  ?opts:opts ->
  ?vcache:Vcache.t ->
  ?minimize:(Report.t -> Report.t) ->
  Vfs.Driver.t ->
  recording ->
  result
(** Phases 2–3 on an existing recording: oracle + crash-state replay, on a
    snapshot of [rec_base] (the recording stays reusable). Equivalent to
    {!test_workload} on the recording's calls, minus the re-recording —
    the probe primitive behind [Shrink.Minimize]'s trace-replay cache. *)

val test_workload :
  ?opts:opts ->
  ?vcache:Vcache.t ->
  ?minimize:(Report.t -> Report.t) ->
  Vfs.Driver.t ->
  Vfs.Syscall.t list ->
  result
(** Run the full pipeline ({!record} then replay) for one workload on one
    file system.

    [vcache], when given, memoizes checker verdicts campaign-wide (see
    {!Vcache}); the harness syncs it at the start and end of the replay
    loop. Findings are identical with or without it.

    [minimize] is applied to each report after per-workload fingerprint
    dedup (so it runs once per unique finding, not once per crash state) —
    the hook behind [Shrink.Minimize.rewrite]. It must preserve the
    report's fingerprint; the harness does not re-dedup its output. *)

val usability_probe : Vfs.Handle.t -> Vfs.Walker.tree -> string option
(** The post-recovery usability probe (create a file in every directory,
    write to it, remove it, then delete every file and directory bottom-up);
    [Some msg] describes the first operation that failed. Exposed so
    {!Reproduce} re-checks crash states exactly as the harness did. *)

(** Turn a fuzzer-sized finding into a minimal, replayable reproducer.

    A {!Chipmunk.Report.t} already pins a bug down deterministically, but
    the workload that found it usually carries calls that have nothing to
    do with the failure, and the crash state may replay more in-flight
    writes than the bug needs. CrashMonkey/B³ (Mohan et al., OSDI '18)
    made the case that {e small} workloads are what make crash-consistency
    bugs diagnosable; this module compresses a finding on both axes with
    delta debugging ({!Ddmin}), accepting a candidate only when the
    harness re-run still produces a report with the {e same fingerprint}:

    - {b workload minimization}: ddmin over the report's syscalls, each
      probe a harness run of the candidate. Candidates are first closed
      over fd-vars ({!repair_fds}) so dropping an [open] or [creat] does
      not leave later calls referencing a descriptor that no longer
      exists. Probes are served by a trace-replay cache when possible:
      a candidate that is a syscall prefix of a memoized recording (the
      full workload's recording seeds the memo) skips re-recording and
      rebuilds crash states from the cached trace, truncated at the
      candidate's last [Syscall_end]; a per-minimization
      {!Chipmunk.Vcache} additionally memoizes checker verdicts across
      probes.
    - {b crash-subset minimization}: ddmin over the crash point's replayed
      in-flight writes, each probe a {!Chipmunk.Reproduce.crash_state}
      rebuild + check — yielding the smallest set of writes that still
      fails, with a per-write {!culprit} annotation naming the address
      span and the persist operation that issued it. *)

type culprit = {
  seq : int;  (** Sequence number in the in-flight vector. *)
  addr : int;  (** Lowest device offset the unit writes. *)
  len : int;  (** Bytes of the covered span. *)
  kind : string;  (** ["nt"] or ["clwb"] (see {!Persist.Trace.write_kind}). *)
  func : string;  (** Intercepted persistence function that issued it. *)
  syscall : int option;  (** Workload index of the issuing syscall. *)
  syscall_name : string option;  (** That syscall, rendered. *)
}

type stats = {
  ops_before : int;
  ops_after : int;
  subset_before : int;
  subset_after : int;
  harness_runs : int;
      (** Workload recordings performed during workload ddmin (including
          the seed recording of the full workload); probes answered by the
          trace-replay cache do not re-record and are counted in
          [replay_probe_hits] instead. *)
  check_runs : int;  (** Crash-state rebuilds spent on subset ddmin. *)
  replay_probe_hits : int;
      (** Workload-ddmin probes whose crash states were rebuilt from a
          memoized recording's truncated trace instead of a fresh
          phase-1 run (also surfaced as
          {!Ddmin.stats.probe_cache_hits}). *)
}

type outcome = {
  report : Chipmunk.Report.t;
      (** The minimized report: same fingerprint, shortest workload found,
          smallest in-flight subset found, crash point re-derived so
          {!Chipmunk.Reproduce} replays it bit-identically. *)
  stats : stats;
  culprits : culprit list;  (** One per write in the final subset. *)
}

val repair_fds : Vfs.Syscall.t list -> Vfs.Syscall.t list
(** Drop every call that uses an fd-var no surviving earlier [creat]/[open]
    binds. Calls that never bind or use descriptors pass through; a
    workload that was fd-closed already comes back unchanged. *)

val run :
  ?opts:Chipmunk.Harness.opts ->
  Vfs.Driver.t ->
  Chipmunk.Report.t ->
  (outcome, string) result
(** Minimize [report] against [driver]. [opts] must be the harness options
    the report was found under (fingerprints can depend on the replay cap
    and granularity); they default to {!Chipmunk.Harness.default_opts}.
    Errors when the report does not reproduce on [driver] at all. The
    outcome's fingerprint is guaranteed equal to the input's. *)

val rewrite : ?opts:Chipmunk.Harness.opts -> Vfs.Driver.t -> Chipmunk.Report.t -> Chipmunk.Report.t
(** Total version of {!run} for use as a [~minimize] callback
    ({!Chipmunk.Harness.test_workload}, {!Chipmunk.Campaign.run}): the
    minimized report, or the input unchanged when minimization fails. *)

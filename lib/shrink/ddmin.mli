(** Generic delta debugging (Zeller & Hildebrandt's ddmin) over lists.

    Given a list for which [test] holds, find a 1-minimal sublist for which
    it still holds: removing any single remaining element makes [test]
    fail. Elements keep their relative order; candidates are always
    sublists of the input, never reorderings.

    The minimizers in this library instantiate [test] with a full harness
    re-run (workload minimization) or a crash-state rebuild (in-flight
    subset minimization), so every probe is expensive — results of probes
    are memoized, and the stats expose how many real probes were spent. *)

type stats = {
  probes : int;  (** Distinct candidates actually passed to [test]. *)
  cache_hits : int;  (** Candidates answered from the memo table. *)
  probe_cache_hits : int;
      (** Probes that [test] itself answered cheaply from a caller-side
          cache (e.g. {!Minimize}'s trace-replay probe, which skips
          re-recording when the candidate is a prefix of a memoized
          recording). [0] unless the caller passed [?probe_cache_hits]. *)
}

val run : ?probe_cache_hits:int ref -> test:('a list -> bool) -> 'a list -> 'a list * stats
(** [run ~test items] assumes [test items = true] (if it is not, no
    reduction is found and the input comes back unchanged). The empty
    candidate is probed first, so a vacuously reproducible predicate
    minimizes to []. [test] must be deterministic: probe results are
    memoized by candidate.

    [?probe_cache_hits] is a counter owned and incremented by [test]; its
    final value is reported back in [stats.probe_cache_hits] so callers
    that layer their own probe cache under [test] get one coherent stats
    record. *)

type stats = { probes : int; cache_hits : int; probe_cache_hits : int }

(* Split [l] into [n] contiguous chunks whose sizes differ by at most one
   (the first [len mod n] chunks get the extra element). *)
let split l n =
  let len = List.length l in
  let base = len / n and extra = len mod n in
  let rec go l i =
    if i >= n then []
    else
      let size = base + if i < extra then 1 else 0 in
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | x :: rest -> take (k - 1) (x :: acc) rest
        | [] -> (List.rev acc, [])
      in
      let chunk, rest = take size [] l in
      chunk :: go rest (i + 1)
  in
  go l 0

let run ?probe_cache_hits ~test items =
  let arr = Array.of_list items in
  let len0 = Array.length arr in
  (* ddmin works on index lists so memoization keys are compact and the
     caller's elements are never compared. *)
  let cache : (string, bool) Hashtbl.t = Hashtbl.create 64 in
  let probes = ref 0 and hits = ref 0 in
  let key idxs = String.concat "," (List.map string_of_int idxs) in
  let check idxs =
    let k = key idxs in
    match Hashtbl.find_opt cache k with
    | Some v ->
      incr hits;
      v
    | None ->
      incr probes;
      let v = test (List.map (fun i -> arr.(i)) idxs) in
      Hashtbl.replace cache k v;
      v
  in
  let rec go current n =
    let len = List.length current in
    if len <= 1 then current
    else
      let chunks = split current n in
      (* Reduce to a subset: some chunk alone still fails. *)
      match List.find_opt check chunks with
      | Some c -> go c 2
      | None -> (
        (* Reduce to a complement (skip at n = 2, where complements are the
           chunks just probed). *)
        let complement i = List.concat (List.filteri (fun j _ -> j <> i) chunks) in
        let comp =
          if n <= 2 then None
          else
            let rec find i = if i >= n then None else
              let c = complement i in
              if check c then Some c else find (i + 1)
            in
            find 0
        in
        match comp with
        | Some c -> go c (max (n - 1) 2)
        | None ->
          (* Increase granularity until chunks are single elements; at
             n = len every complement probe is a single-element removal, so
             termination here is 1-minimality. *)
          if n < len then go current (min len (2 * n)) else current)
  in
  let result =
    if len0 = 0 || check [] then []
    else go (List.init len0 Fun.id) (min 2 len0)
  in
  ( List.map (fun i -> arr.(i)) result,
    {
      probes = !probes;
      cache_hits = !hits;
      probe_cache_hits =
        (match probe_cache_hits with None -> 0 | Some r -> !r);
    } )

(** Self-contained reproducer artifacts.

    The serialized form of a (minimized) finding: one JSON document
    carrying the full report — workload in the {!Vfs.Workload_io} line
    format, crash point and replayed subset — plus the shrink statistics
    and per-write culprit annotations the minimizer derived. Loading it
    back and handing the report to {!Chipmunk.Reproduce.crash_state}
    rebuilds the bit-identical crash image; [chipmunk-cli reproduce] is a
    thin wrapper around exactly that. A plain {!Chipmunk.Report.to_json}
    document (no shrink metadata) also loads. *)

type t = {
  report : Chipmunk.Report.t;
  stats : Minimize.stats option;  (** [None] for a plain, unminimized report. *)
  culprits : Minimize.culprit list;
}

val of_outcome : Minimize.outcome -> t
val of_report : Chipmunk.Report.t -> t

val to_json : t -> string
val of_json : string -> (t, string) result

val save : path:string -> t -> unit
val load : path:string -> (t, string) result

val pp : Format.formatter -> t -> unit
(** The full report, followed by shrink stats and culprit annotations. *)

module R = Chipmunk.Report
module S = Vfs.Syscall

type culprit = {
  seq : int;
  addr : int;
  len : int;
  kind : string;
  func : string;
  syscall : int option;
  syscall_name : string option;
}

type stats = {
  ops_before : int;
  ops_after : int;
  subset_before : int;
  subset_after : int;
  harness_runs : int;
  check_runs : int;
  replay_probe_hits : int;
}

type outcome = { report : R.t; stats : stats; culprits : culprit list }

(* fd-var closure: walk the candidate in order, keeping track of which
   fd-vars a surviving creat/open has bound, and drop any call that uses an
   unbound one. A close does not unbind — the original program may legally
   probe a closed descriptor (the executor answers EBADF), and a repair
   must never be stricter than the program it repairs. *)
let repair_fds calls =
  let bound : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  List.filter
    (fun call ->
      match call with
      | S.Creat { fd_var; _ } | S.Open { fd_var; _ } ->
        Hashtbl.replace bound fd_var ();
        true
      | S.Close { fd_var }
      | S.Write { fd_var; _ }
      | S.Pwrite { fd_var; _ }
      | S.Read { fd_var; _ }
      | S.Lseek { fd_var; _ }
      | S.Fallocate { fd_var; _ }
      | S.Fsync { fd_var }
      | S.Fdatasync { fd_var } ->
        Hashtbl.mem bound fd_var
      | S.Mkdir _ | S.Link _ | S.Unlink _ | S.Remove _ | S.Rename _ | S.Truncate _
      | S.Rmdir _ | S.Sync | S.Setxattr _ | S.Removexattr _ ->
        true)
    calls

let with_subset (report : R.t) subset =
  { report with R.crash_point = { report.R.crash_point with R.subset } }

let calls_key calls = String.concat "\n" (List.map S.to_string calls)
let subset_key subset = String.concat "," (List.map string_of_int subset)

let rec is_prefix pre l =
  match (pre, l) with
  | [], _ -> true
  | x :: pre', y :: l' -> x = y && is_prefix pre' l'
  | _ :: _, [] -> false

(* The file systems under test are deterministic, so the PM trace of a
   prefix workload is exactly the prefix of the full recording's trace up
   to the [calls_kept]-th Syscall_end marker. *)
let truncate_trace trace ~calls_kept =
  let t = Persist.Trace.create () in
  (try
     Persist.Trace.iter trace (fun op ->
         Persist.Trace.record t op;
         match op with
         | Persist.Trace.Syscall_end { idx; _ } when idx >= calls_kept - 1 -> raise Exit
         | _ -> ())
   with Exit -> ());
  t

(* Recordings kept for prefix matching; a dropped one just means the next
   matching probe re-records. Each recording holds a full device image, so
   the memo is deliberately small. *)
let max_memo_recordings = 8

(* Phase 1: ddmin over the workload. Each probe repairs the candidate,
   rebuilds its crash states and asks whether any report still carries the
   target fingerprint. The report for the winning candidate is re-derived
   from its own run, so its crash point (fence numbering, syscall indices,
   subset) is consistent with the shorter trace.

   Probes lean on two caches. The trace-replay cache: when the candidate is
   a syscall prefix of a memoized recording (ddmin probes contiguous
   chunks, so first-chunk and drop-a-tail-chunk candidates are prefixes —
   of the seeded full-workload recording to begin with), phase 1 is skipped
   and crash states are rebuilt from the truncated cached trace. And a
   per-minimization {!Chipmunk.Vcache}: candidates share most of their
   crash states, so verdicts memoized on one probe answer the next. *)
let minimize_workload ~opts driver (report : R.t) =
  let target = R.fingerprint report in
  let runs = ref 0 in
  let replay_hits = ref 0 in
  let vcache = Chipmunk.Vcache.create () in
  let matched : (string, R.t) Hashtbl.t = Hashtbl.create 16 in
  let recordings = ref [] (* newest first, capped *) in
  let record calls =
    incr runs;
    let r = Chipmunk.Harness.record ~opts driver calls in
    recordings := r :: List.filteri (fun i _ -> i < max_memo_recordings - 1) !recordings;
    r
  in
  ignore (record report.R.workload);
  let recording_for calls =
    match
      List.find_opt
        (fun (r : Chipmunk.Harness.recording) ->
          is_prefix calls r.Chipmunk.Harness.rec_calls)
        !recordings
    with
    | Some r ->
      incr replay_hits;
      if List.length calls = List.length r.Chipmunk.Harness.rec_calls then r
      else
        {
          r with
          Chipmunk.Harness.rec_calls = calls;
          rec_trace =
            truncate_trace r.Chipmunk.Harness.rec_trace ~calls_kept:(List.length calls);
          rec_outcomes = [];
        }
    | None -> record calls
  in
  let probe calls =
    let r = Chipmunk.Harness.replay_recorded ~opts ~vcache driver (recording_for calls) in
    match List.find_opt (fun r' -> R.fingerprint r' = target) r.Chipmunk.Harness.reports with
    | Some r' ->
      Hashtbl.replace matched (calls_key calls) r';
      true
    | None -> false
  in
  let test candidate =
    match repair_fds candidate with [] -> false | calls -> probe calls
  in
  let minimized, _ = Ddmin.run ~probe_cache_hits:replay_hits ~test report.R.workload in
  let calls = repair_fds minimized in
  let final =
    match Hashtbl.find_opt matched (calls_key calls) with
    | Some r' -> Some r'
    | None ->
      (* ddmin made no progress (every probe failed, e.g. mismatched opts):
         fall back to the input report rather than probing again. *)
      if calls = report.R.workload then Some report else None
  in
  (final, !runs, !replay_hits)

(* Phase 2: ddmin over the replayed in-flight subset, using the
   deterministic crash-state rebuild as the probe. A candidate passes when
   the rebuilt state still checks to a kind with the target fingerprint. *)
let minimize_subset driver (report : R.t) =
  let target = R.fingerprint report in
  let runs = ref 0 in
  let matched : (string, R.kind) Hashtbl.t = Hashtbl.create 16 in
  let test subset =
    incr runs;
    let candidate = with_subset report subset in
    match Chipmunk.Reproduce.crash_state driver candidate with
    | Error _ -> false
    | Ok cs -> (
      let kinds = cs.Chipmunk.Reproduce.check () in
      match
        List.find_opt (fun k -> R.fingerprint { candidate with R.kind = k } = target) kinds
      with
      | Some k ->
        Hashtbl.replace matched (subset_key subset) k;
        true
      | None -> false)
  in
  let minimized, _ = Ddmin.run ~test report.R.crash_point.R.subset in
  let kind =
    Option.value (Hashtbl.find_opt matched (subset_key minimized)) ~default:report.R.kind
  in
  ({ (with_subset report minimized) with R.kind }, !runs)

let syscall_name workload = function
  | None -> None
  | Some i -> Option.map S.to_string (List.nth_opt workload i)

(* Per-write culprit annotations for the surviving subset: address span,
   byte count and the persist operation (function + issuing syscall) each
   unit came from. *)
let culprits_of driver (report : R.t) =
  match Chipmunk.Reproduce.in_flight_at driver report with
  | Error _ -> []
  | Ok units ->
    List.filter_map
      (fun (u : Chipmunk.Coalesce.t) ->
        if List.mem u.Chipmunk.Coalesce.seq report.R.crash_point.R.subset then begin
          let lo, hi = Chipmunk.Coalesce.span u in
          Some
            {
              seq = u.Chipmunk.Coalesce.seq;
              addr = lo;
              len = hi - lo;
              kind =
                (match u.Chipmunk.Coalesce.kind with
                | Persist.Trace.Nt -> "nt"
                | Persist.Trace.Flushed_line -> "clwb");
              func = u.Chipmunk.Coalesce.func;
              syscall = u.Chipmunk.Coalesce.syscall;
              syscall_name = syscall_name report.R.workload u.Chipmunk.Coalesce.syscall;
            }
        end
        else None)
      units

let run ?(opts = Chipmunk.Harness.default_opts) driver (report : R.t) =
  let target = R.fingerprint report in
  let ops_before = List.length report.R.workload in
  let subset_before = List.length report.R.crash_point.R.subset in
  match minimize_workload ~opts driver report with
  | None, _, _ -> Error "the report does not reproduce under this driver and these options"
  | Some wl_min, harness_runs, replay_probe_hits ->
    let final, check_runs = minimize_subset driver wl_min in
    if R.fingerprint final <> target then
      Error "minimization changed the fingerprint (ddmin accepted a bad candidate)"
    else
      Ok
        {
          report = final;
          stats =
            {
              ops_before;
              ops_after = List.length final.R.workload;
              subset_before;
              subset_after = List.length final.R.crash_point.R.subset;
              harness_runs;
              check_runs;
              replay_probe_hits;
            };
          culprits = culprits_of driver final;
        }

let rewrite ?opts driver report =
  match run ?opts driver report with Ok o -> o.report | Error _ -> report

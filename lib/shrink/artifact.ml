module Json = Chipmunk.Json
module R = Chipmunk.Report

type t = {
  report : R.t;
  stats : Minimize.stats option;
  culprits : Minimize.culprit list;
}

let of_outcome (o : Minimize.outcome) =
  { report = o.Minimize.report; stats = Some o.Minimize.stats; culprits = o.Minimize.culprits }

let of_report report = { report; stats = None; culprits = [] }

let schema = "chipmunk-reproducer/1"

let culprit_json (c : Minimize.culprit) =
  Json.obj
    [
      ("seq", string_of_int c.Minimize.seq);
      ("addr", string_of_int c.Minimize.addr);
      ("len", string_of_int c.Minimize.len);
      ("kind", Json.str c.Minimize.kind);
      ("func", Json.str c.Minimize.func);
      ("syscall", Json.int_opt c.Minimize.syscall);
      ( "syscall_name",
        match c.Minimize.syscall_name with None -> "null" | Some s -> Json.str s );
    ]

let stats_json (s : Minimize.stats) =
  Json.obj
    [
      ("ops_before", string_of_int s.Minimize.ops_before);
      ("ops_after", string_of_int s.Minimize.ops_after);
      ("subset_before", string_of_int s.Minimize.subset_before);
      ("subset_after", string_of_int s.Minimize.subset_after);
      ("harness_runs", string_of_int s.Minimize.harness_runs);
      ("check_runs", string_of_int s.Minimize.check_runs);
      ("replay_probe_hits", string_of_int s.Minimize.replay_probe_hits);
    ]

let to_json t =
  Json.obj
    ([ ("schema", Json.str schema); ("report", R.to_json t.report) ]
    @ (match t.stats with None -> [] | Some s -> [ ("minimize", stats_json s) ])
    @
    match t.culprits with
    | [] -> []
    | cs -> [ ("culprits", Json.arr (List.map culprit_json cs)) ])

let ( let* ) = Result.bind

let int_member name j =
  match Json.member name j with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "culprit/stats field %S: expected an integer" name)

let stats_of_json j =
  let* ops_before = int_member "ops_before" j in
  let* ops_after = int_member "ops_after" j in
  let* subset_before = int_member "subset_before" j in
  let* subset_after = int_member "subset_after" j in
  let* harness_runs = int_member "harness_runs" j in
  let* check_runs = int_member "check_runs" j in
  (* Absent in pre-trace-replay artifacts; default rather than reject. *)
  let replay_probe_hits =
    match Json.member "replay_probe_hits" j with Some (Json.Int i) -> i | _ -> 0
  in
  Ok
    {
      Minimize.ops_before;
      ops_after;
      subset_before;
      subset_after;
      harness_runs;
      check_runs;
      replay_probe_hits;
    }

let culprit_of_json j =
  let* seq = int_member "seq" j in
  let* addr = int_member "addr" j in
  let* len = int_member "len" j in
  let str name =
    match Json.member name j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "culprit field %S: expected a string" name)
  in
  let* kind = str "kind" in
  let* func = str "func" in
  let syscall =
    match Json.member "syscall" j with Some (Json.Int i) -> Some i | _ -> None
  in
  let syscall_name =
    match Json.member "syscall_name" j with Some (Json.Str s) -> Some s | _ -> None
  in
  Ok { Minimize.seq; addr; len; kind; func; syscall; syscall_name }

let of_json text =
  let* j = Json.parse text in
  match Json.member "report" j with
  | None ->
    (* A bare Report.to_json document. *)
    let* report = R.of_json_value j in
    Ok (of_report report)
  | Some rj ->
    let* report = R.of_json_value rj in
    let* stats =
      match Json.member "minimize" j with
      | None -> Ok None
      | Some sj -> Result.map Option.some (stats_of_json sj)
    in
    let* culprits =
      match Json.member "culprits" j with
      | None -> Ok []
      | Some (Json.Arr l) ->
        List.fold_left
          (fun acc cj ->
            let* acc = acc in
            let* c = culprit_of_json cj in
            Ok (c :: acc))
          (Ok []) l
        |> Result.map List.rev
      | Some _ -> Error "field \"culprits\": expected an array"
    in
    Ok { report; stats; culprits }

let save ~path t =
  let oc = open_out path in
  output_string oc (to_json t);
  output_char oc '\n';
  close_out oc

let load ~path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    of_json text

let pp ppf t =
  R.pp ppf t.report;
  (match t.stats with
  | None -> ()
  | Some s ->
    Format.fprintf ppf
      "minimized: %d -> %d ops, %d -> %d replayed writes (%d recordings, %d replay-cache hits, %d rebuilds)@."
      s.Minimize.ops_before s.Minimize.ops_after s.Minimize.subset_before
      s.Minimize.subset_after s.Minimize.harness_runs s.Minimize.replay_probe_hits
      s.Minimize.check_runs);
  match t.culprits with
  | [] -> ()
  | cs ->
    Format.fprintf ppf "culprit writes:@.";
    List.iter
      (fun (c : Minimize.culprit) ->
        Format.fprintf ppf "  seq %d: %s %s [%d, %d) %d bytes%s@." c.Minimize.seq
          c.Minimize.kind c.Minimize.func c.Minimize.addr
          (c.Minimize.addr + c.Minimize.len) c.Minimize.len
          (match c.Minimize.syscall_name with
          | Some s -> " during " ^ s
          | None -> ""))
      cs

module Types = Vfs.Types
module Errno = Vfs.Errno
module Path = Vfs.Path

type inode = {
  ino : int;
  kind : Types.file_kind;
  mutable nlink : int;
  mutable data : string;  (* Reg only *)
  entries : (string, int) Hashtbl.t;  (* Dir only *)
  xattrs : (string, string) Hashtbl.t;
  mutable opens : int;
  mutable links : (int * string) list;
      (* Back-links: (parent dir ino, entry name) for every directory entry
         naming this inode; [] for the root and for orphans kept alive by
         open fds. Lets change tracking resolve an inode to every visible
         path — an fd write after a rename, or to one name of a hard-linked
         file, dirties all of them. *)
}

type fs = {
  inodes : (int, inode) Hashtbl.t;
  mutable next_ino : int;
  mutable dirty : (string, unit) Hashtbl.t option;
      (* When tracking is on, the set of paths whose [Walker] node may have
         changed since the last drain. [None] (the default) keeps every
         mutation's bookkeeping at a single match. *)
}

module Fs = struct
  type t = fs

  let name = "memfs"
  let name_max = 255
  let root_ino = 1

  let get t ino = Hashtbl.find_opt t.inodes ino

  let get_exn t ino =
    match get t ino with
    | Some i -> i
    | None -> invalid_arg "memfs: dangling inode"

  let alloc t kind =
    let ino = t.next_ino in
    t.next_ino <- ino + 1;
    let node =
      {
        ino;
        kind;
        nlink = (match kind with Types.Reg -> 1 | Types.Dir -> 2);
        data = "";
        entries = Hashtbl.create 8;
        xattrs = Hashtbl.create 4;
        opens = 0;
        links = [];
      }
    in
    Hashtbl.replace t.inodes ino node;
    node

  (* --- change tracking --- *)

  let track_changes t =
    match t.dirty with
    | Some _ -> ()
    | None -> t.dirty <- Some (Hashtbl.create 64)

  let drain_changes t =
    match t.dirty with
    | None -> []
    | Some d ->
      let paths = Hashtbl.fold (fun p () acc -> p :: acc) d [] in
      Hashtbl.reset d;
      paths

  let rec paths_of t ino =
    if ino = root_ino then [ "/" ]
    else
      match get t ino with
      | None -> []
      | Some i ->
        List.concat_map
          (fun (dir, name) ->
            List.map (fun d -> Path.concat d name) (paths_of t dir))
          i.links

  let mark t path =
    match t.dirty with None -> () | Some d -> Hashtbl.replace d path ()

  let mark_ino t ino = List.iter (mark t) (paths_of t ino)

  (* Directories have exactly one back-link, so this enumerates each
     descendant path once; hard-linked files fan out to every alias. *)
  let rec mark_subtree t ino =
    mark_ino t ino;
    match get t ino with
    | None -> ()
    | Some i ->
      if i.kind = Types.Dir then
        Hashtbl.iter (fun _ cino -> mark_subtree t cino) i.entries

  let remove_link i ~dir ~name =
    i.links <- List.filter (fun (d, n) -> not (d = dir && n = name)) i.links

  let lookup t ~dir ~name =
    match get t dir with
    | None -> Error Errno.ENOENT
    | Some d when d.kind <> Types.Dir -> Error Errno.ENOTDIR
    | Some d -> (
      match Hashtbl.find_opt d.entries name with
      | Some ino -> Ok ino
      | None -> Error Errno.ENOENT)

  let getattr t ~ino =
    match get t ino with
    | None -> Error Errno.ENOENT
    | Some i ->
      Ok
        {
          Types.st_ino = i.ino;
          st_kind = i.kind;
          st_size =
            (match i.kind with
            | Types.Reg -> String.length i.data
            | Types.Dir -> Hashtbl.length i.entries);
          st_nlink = i.nlink;
        }

  let mkdir t ~dir ~name =
    let d = get_exn t dir in
    let node = alloc t Types.Dir in
    node.links <- [ (dir, name) ];
    Hashtbl.replace d.entries name node.ino;
    d.nlink <- d.nlink + 1;
    mark_ino t node.ino;
    mark_ino t dir;
    Ok node.ino

  let create t ~dir ~name =
    let d = get_exn t dir in
    let node = alloc t Types.Reg in
    node.links <- [ (dir, name) ];
    Hashtbl.replace d.entries name node.ino;
    mark_ino t node.ino;
    mark_ino t dir;
    Ok node.ino

  let link t ~ino ~dir ~name =
    let d = get_exn t dir in
    let f = get_exn t ino in
    Hashtbl.replace d.entries name ino;
    f.nlink <- f.nlink + 1;
    f.links <- (dir, name) :: f.links;
    (* The new path plus every existing alias: their nlink changed. *)
    mark_ino t ino;
    mark_ino t dir;
    Ok ()

  let maybe_reclaim t node =
    if node.nlink = 0 && node.opens = 0 then Hashtbl.remove t.inodes node.ino

  let drop_link t node =
    node.nlink <- node.nlink - 1;
    maybe_reclaim t node

  let unlink t ~dir ~name =
    let d = get_exn t dir in
    let ino = Hashtbl.find d.entries name in
    let f = get_exn t ino in
    (* Pre-removal: the dying path and every hard-link alias (nlink drops). *)
    mark_ino t ino;
    Hashtbl.remove d.entries name;
    remove_link f ~dir ~name;
    drop_link t f;
    mark_ino t dir;
    Ok ()

  let rmdir t ~dir ~name =
    let d = get_exn t dir in
    let ino = Hashtbl.find d.entries name in
    let victim = get_exn t ino in
    mark_ino t ino;
    Hashtbl.remove d.entries name;
    d.nlink <- d.nlink - 1;
    victim.nlink <- 0;
    maybe_reclaim t victim;
    mark_ino t dir;
    Ok ()

  let rename t ~odir ~oname ~ndir ~nname =
    let od = get_exn t odir and nd = get_exn t ndir in
    let ino = Hashtbl.find od.entries oname in
    let moved = get_exn t ino in
    (* Pre-mutation: old paths of the moved subtree and of any overwritten
       target (including hard-link aliases, whose nlink is about to drop). *)
    mark_subtree t ino;
    let tino = Hashtbl.find_opt nd.entries nname in
    (match tino with None -> () | Some ti -> mark_subtree t ti);
    (* Remove an overwritten target first (Posix validated compatibility). *)
    (match tino with
    | None -> ()
    | Some ti ->
      let target = get_exn t ti in
      remove_link target ~dir:ndir ~name:nname;
      (match target.kind with
      | Types.Reg -> drop_link t target
      | Types.Dir ->
        nd.nlink <- nd.nlink - 1;
        target.nlink <- 0;
        maybe_reclaim t target));
    Hashtbl.remove od.entries oname;
    Hashtbl.replace nd.entries nname ino;
    remove_link moved ~dir:odir ~name:oname;
    moved.links <- (ndir, nname) :: moved.links;
    if moved.kind = Types.Dir && odir <> ndir then begin
      od.nlink <- od.nlink - 1;
      nd.nlink <- nd.nlink + 1
    end;
    (* Post-mutation: new paths of the moved subtree, surviving aliases of a
       replaced target, and both parents (entry lists / link counts). *)
    mark_subtree t ino;
    (match tino with None -> () | Some ti -> mark_ino t ti);
    mark_ino t odir;
    mark_ino t ndir;
    Ok ()

  let readdir t ~dir =
    let d = get_exn t dir in
    Ok (Hashtbl.fold (fun name ino acc -> { Types.d_ino = ino; d_name = name } :: acc) d.entries [])

  let read t ~ino ~off ~len =
    let f = get_exn t ino in
    let size = String.length f.data in
    if off >= size then Ok ""
    else Ok (String.sub f.data off (min len (size - off)))

  let splice old ~off data =
    let dlen = String.length data in
    let old_len = String.length old in
    let new_len = max old_len (off + dlen) in
    let b = Bytes.make new_len '\000' in
    Bytes.blit_string old 0 b 0 old_len;
    Bytes.blit_string data 0 b off dlen;
    Bytes.unsafe_to_string b

  let write t ~ino ~off ~data =
    let f = get_exn t ino in
    f.data <- splice f.data ~off data;
    (* All aliases of the inode see the new content; an orphan written
       through a surviving fd has no paths and dirties nothing. *)
    mark_ino t ino;
    Ok (String.length data)

  let truncate t ~ino ~size =
    let f = get_exn t ino in
    let old_len = String.length f.data in
    if size <= old_len then f.data <- String.sub f.data 0 size
    else f.data <- f.data ^ String.make (size - old_len) '\000';
    mark_ino t ino;
    Ok ()

  let fallocate t ~ino ~off ~len ~keep_size =
    let f = get_exn t ino in
    if not keep_size && off + len > String.length f.data then
      f.data <- f.data ^ String.make (off + len - String.length f.data) '\000';
    mark_ino t ino;
    Ok ()

  let setxattr t ~ino ~name ~value =
    let i = get_exn t ino in
    Hashtbl.replace i.xattrs name value;
    mark_ino t ino;
    Ok ()

  let getxattr t ~ino ~name =
    let i = get_exn t ino in
    match Hashtbl.find_opt i.xattrs name with
    | Some v -> Ok v
    | None -> Error Errno.ENOENT

  let listxattr t ~ino =
    let i = get_exn t ino in
    Ok (Hashtbl.fold (fun k _ acc -> k :: acc) i.xattrs [])

  let removexattr t ~ino ~name =
    let i = get_exn t ino in
    if Hashtbl.mem i.xattrs name then begin
      Hashtbl.remove i.xattrs name;
      mark_ino t ino;
      Ok ()
    end
    else Error Errno.ENOENT

  let fsync _ ~ino:_ = Ok ()
  let sync _ = ()

  let iget t ~ino =
    match get t ino with None -> () | Some i -> i.opens <- i.opens + 1

  let iput t ~ino =
    match get t ino with
    | None -> ()
    | Some i ->
      i.opens <- max 0 (i.opens - 1);
      maybe_reclaim t i
end

module P = Vfs.Posix.Make (Fs)

let create () =
  let t = { inodes = Hashtbl.create 64; next_ino = 2; dirty = None } in
  Hashtbl.replace t.inodes Fs.root_ino
    {
      ino = Fs.root_ino;
      kind = Types.Dir;
      nlink = 2;
      data = "";
      entries = Hashtbl.create 8;
      xattrs = Hashtbl.create 4;
      opens = 0;
      links = [];
    };
  t

let handle () = P.handle (P.init (create ()))

let tracked () =
  let t = create () in
  Fs.track_changes t;
  (P.handle (P.init t), t)

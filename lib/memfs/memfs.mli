(** The oracle file system: a purely in-DRAM reference implementation of the
    POSIX surface, with no crash-consistency machinery at all.

    The Chipmunk checker runs each workload on a fresh Memfs instance in
    parallel with trace replay and compares crash states of the system under
    test against the oracle's pre- and post-syscall trees (paper section
    3.3). Because Memfs has no persistence, it is trivially "correct" —
    there is nothing to tear or lose — which is exactly what an oracle
    needs. *)

module Fs : sig
  include Vfs.Fs_intf.INODE_OPS

  val track_changes : t -> unit
  (** Turn on dirty-path tracking (off by default, zero cost when off).
      Every mutating op then records each path whose [Vfs.Walker] node may
      have changed — resolved through per-inode back-links, so fd-based
      writes after renames and hard-link nlink changes dirty every visible
      alias, and writes to unlinked-but-open orphans dirty nothing. *)

  val drain_changes : t -> string list
  (** The dirty paths accumulated since the last drain (deduplicated, in no
      particular order), clearing the set. Empty when tracking is off. *)
end

val create : unit -> Fs.t
(** A fresh, empty file system containing only the root directory. *)

val handle : unit -> Vfs.Handle.t
(** [create] + POSIX layer in one step. *)

val tracked : unit -> Vfs.Handle.t * Fs.t
(** Like [handle], but with change tracking on and the underlying store
    exposed so callers can [Fs.drain_changes] at syscall boundaries — the
    oracle's incremental tree digest is built on this. *)

let enabled = Atomic.make false

(* Global cumulative hit set: fixed buckets of immutable lists behind
   Atomics. Adding is a CAS loop (retry on contention), membership is a
   list scan — bucket chains stay short because the point universe is a
   few hundred literals. *)
let n_buckets = 512
let global : string list Atomic.t array = Array.init n_buckets (fun _ -> Atomic.make [])
let bucket p = Hashtbl.hash p land (n_buckets - 1)

let rec global_add b p =
  let cur = Atomic.get b in
  if (not (List.mem p cur)) && not (Atomic.compare_and_set b cur (p :: cur)) then global_add b p

(* Per-domain local table: which points this domain hit since its last
   [local_reset]. Also serves as a fast path — a point already in the
   local table needs no global CAS. *)
let local_key : (string, unit) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false

let reset () =
  Array.iter (fun b -> Atomic.set b []) global;
  Hashtbl.reset (Domain.DLS.get local_key)

let mark p =
  if Atomic.get enabled then begin
    let local = Domain.DLS.get local_key in
    if not (Hashtbl.mem local p) then begin
      Hashtbl.replace local p ();
      global_add global.(bucket p) p
    end
  end

let hits () =
  Array.fold_left (fun acc b -> List.rev_append (Atomic.get b) acc) [] global
  |> List.sort String.compare

let count () = Array.fold_left (fun acc b -> acc + List.length (Atomic.get b)) 0 global
let local_reset () = Hashtbl.reset (Domain.DLS.get local_key)

let local_hits () =
  Hashtbl.fold (fun k () acc -> k :: acc) (Domain.DLS.get local_key) []
  |> List.sort String.compare

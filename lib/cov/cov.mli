(** Coverage points for gray-box fuzzing.

    The original Chipmunk collects kernel coverage through Syzkaller's KCOV
    integration and user-space coverage through GCC's sanitizer-coverage
    instrumentation (paper section 3.4.2). In this reproduction, file systems
    mark interesting code paths explicitly with {!mark}; the fuzzer records
    the hit set around each execution to decide whether a workload
    exercised new behaviour.

    Marking is safe from any OCaml 5 domain. The cumulative hit set is a
    fixed array of buckets each holding an immutable list behind an
    [Atomic] (lock-free CAS append), so cross-domain counting is race-free;
    in addition every domain keeps a private table of the points it has
    hit since its last {!local_reset}, which is how the sharded fuzzer
    attributes coverage to a single execution without racing its siblings.

    Marking is a no-op unless collection is {!enable}d, so the marks cost
    nothing outside fuzzing runs. *)

val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Forget all recorded hits — the global set and the calling domain's
    local table (other domains' local tables are untouched; worker domains
    are short-lived and start empty). Not safe concurrently with {!mark};
    callers reset between campaigns, not during them. The enabled/disabled
    state is unchanged. *)

val mark : string -> unit
(** Record that the named coverage point was reached, in the global set
    and in the calling domain's local table. *)

val hits : unit -> string list
(** All points recorded globally since the last [reset], sorted. *)

val count : unit -> int
(** [List.length (hits ())], without building the list. *)

val local_reset : unit -> unit
(** Clear the calling domain's local hit table (the global set is
    unchanged). The fuzzer calls this before each execution. *)

val local_hits : unit -> string list
(** The points the calling domain has hit since its last {!local_reset},
    sorted — the per-execution coverage attribution. *)

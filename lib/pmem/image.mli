(** A simulated persistent-memory device image.

    The image holds the byte contents of one PM device. During workload
    execution it represents the CPU's view of memory (all stores are visible,
    regardless of persistence); persistence is tracked separately by the
    {!Persist} trace and reconstructed by the Chipmunk replayer, which applies
    logged writes onto a snapshot of this image.

    All accesses are bounds-checked and raise {!Fault.Out_of_bounds} on
    violation, mirroring how a stray kernel access would fault on real
    hardware.

    The image also maintains an incremental content {!digest}: a per-cache-line
    hash folded into a rolling root, updated on every mutation. Each write
    rehashes only the lines it touches, so the digest of a crash state costs
    O(dirty lines), not O(device size). The digest is a pure function of the
    byte contents, so restoring bytes (e.g. {!Persist.Undo.rollback} writing
    pre-images back through {!write_string}) restores the digest exactly. *)

type t

val create : size:int -> t
(** A zero-filled device of [size] bytes. *)

val size : t -> int

val digest : t -> int
(** The rolling content digest, maintained incrementally. Equal bytes imply
    equal digests; distinct digests imply distinct bytes. Collisions between
    distinct contents are possible but need ~2^31 states by birthday bound. *)

val rehash : t -> int
(** Recompute {!digest} from scratch over the whole image (O(size)). Test
    oracle for the incremental maintenance; does not mutate [t]. *)

val read : t -> off:int -> len:int -> string
(** [read t ~off ~len] copies [len] bytes starting at [off]. *)

val read_u8 : t -> off:int -> int
val read_u16 : t -> off:int -> int
val read_u32 : t -> off:int -> int
val read_u64 : t -> off:int -> int
(** Little-endian fixed-width loads. [read_u64] returns an OCaml [int]
    (images are far smaller than 2^62 bytes, so no precision is lost). *)

val write_string : t -> off:int -> string -> unit
(** Raw store, bypassing persistence tracking. Used by the persistence layer
    and by the replayer; file systems must go through {!Persist.Pm}. *)

val fill : t -> off:int -> len:int -> char -> unit

val write_u8 : t -> off:int -> int -> unit
val write_u16 : t -> off:int -> int -> unit
val write_u32 : t -> off:int -> int -> unit
val write_u64 : t -> off:int -> int -> unit

val snapshot : t -> t
(** An independent copy of the image. *)

val restore : t -> from:t -> unit
(** Overwrite [t]'s contents with those of [from]. Sizes must match. *)

val equal : t -> t -> bool

val hexdump : ?off:int -> ?len:int -> t -> string
(** Human-readable dump of a region, used in bug reports. *)

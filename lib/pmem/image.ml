(* The image maintains an incremental content digest alongside the bytes: a
   64-bit-ish (63-bit native int) FNV-style hash per cache line, folded into a
   rolling root by commutative addition. Every mutation rehashes only the
   touched lines and patches the root (subtract old line hash, add new), so
   digesting a crash state costs O(lines dirtied by the in-flight writes)
   rather than O(device size). The digest is a pure function of the byte
   contents — restoring bytes (e.g. Persist.Undo.rollback writing back
   pre-images through [write_string]) restores the digest by construction. *)

type t = {
  data : Bytes.t;
  size : int;
  line_hash : int array;
  mutable root : int;
}

(* FNV-1a offset basis / prime, basis truncated to fit OCaml's 63-bit int;
   the per-line seed mixes the line index in so identical lines at different
   offsets hash differently (the rolling root is a plain sum, so without the
   index mix swapping two equal-length regions would collide). *)
let fnv_basis = 0x1bf29ce484222325
let fnv_prime = 0x100000001b3
let index_mix = 0x2545F4914F6CDD1D

let n_lines size = (size + Const.cache_line - 1) / Const.cache_line

let hash_line data size idx =
  let off = idx * Const.cache_line in
  let stop = min size (off + Const.cache_line) in
  let h = ref (fnv_basis + (idx * index_mix)) in
  for i = off to stop - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get data i)) * fnv_prime
  done;
  !h

let create ~size =
  let data = Bytes.make size '\000' in
  let line_hash = Array.init (n_lines size) (hash_line data size) in
  let root = Array.fold_left ( + ) 0 line_hash in
  { data; size; line_hash; root }

let size t = t.size

let check t ~off ~len =
  if off < 0 || len < 0 || off + len > t.size then
    Fault.out_of_bounds ~off ~len ~size:t.size

(* Rehash the lines intersecting [off, off+len) and patch the root. Call
   after the bytes have been mutated; bounds are already checked. *)
let touch t ~off ~len =
  if len > 0 then begin
    let l0 = off / Const.cache_line and l1 = (off + len - 1) / Const.cache_line in
    for l = l0 to l1 do
      let h = hash_line t.data t.size l in
      t.root <- t.root - Array.unsafe_get t.line_hash l + h;
      Array.unsafe_set t.line_hash l h
    done
  end

let digest t = t.root lxor (t.size * fnv_prime)

let rehash t =
  let root = ref 0 in
  for l = 0 to n_lines t.size - 1 do
    root := !root + hash_line t.data t.size l
  done;
  !root lxor (t.size * fnv_prime)

let read t ~off ~len =
  check t ~off ~len;
  Bytes.sub_string t.data off len

let read_u8 t ~off =
  check t ~off ~len:1;
  Char.code (Bytes.get t.data off)

let read_u16 t ~off =
  check t ~off ~len:2;
  Bytes.get_uint16_le t.data off

let read_u32 t ~off =
  check t ~off ~len:4;
  Int32.to_int (Bytes.get_int32_le t.data off) land 0xFFFFFFFF

let read_u64 t ~off =
  check t ~off ~len:8;
  Int64.to_int (Bytes.get_int64_le t.data off)

let write_string t ~off s =
  check t ~off ~len:(String.length s);
  Bytes.blit_string s 0 t.data off (String.length s);
  touch t ~off ~len:(String.length s)

let fill t ~off ~len c =
  check t ~off ~len;
  Bytes.fill t.data off len c;
  touch t ~off ~len

let write_u8 t ~off v =
  check t ~off ~len:1;
  Bytes.set t.data off (Char.chr (v land 0xFF));
  touch t ~off ~len:1

let write_u16 t ~off v =
  check t ~off ~len:2;
  Bytes.set_uint16_le t.data off (v land 0xFFFF);
  touch t ~off ~len:2

let write_u32 t ~off v =
  check t ~off ~len:4;
  Bytes.set_int32_le t.data off (Int32.of_int (v land 0xFFFFFFFF));
  touch t ~off ~len:4

let write_u64 t ~off v =
  check t ~off ~len:8;
  Bytes.set_int64_le t.data off (Int64.of_int v);
  touch t ~off ~len:8

let snapshot t =
  {
    data = Bytes.copy t.data;
    size = t.size;
    line_hash = Array.copy t.line_hash;
    root = t.root;
  }

let restore t ~from =
  if t.size <> from.size then Fault.fail "restore: size mismatch (%d vs %d)" t.size from.size;
  Bytes.blit from.data 0 t.data 0 t.size;
  Array.blit from.line_hash 0 t.line_hash 0 (Array.length t.line_hash);
  t.root <- from.root

let equal a b = a.size = b.size && a.root = b.root && Bytes.equal a.data b.data

let hexdump ?(off = 0) ?len t =
  let len = match len with Some l -> l | None -> t.size - off in
  check t ~off ~len;
  let buf = Buffer.create (len * 4) in
  let rec go pos =
    if pos < off + len then begin
      let n = min 16 (off + len - pos) in
      Buffer.add_string buf (Printf.sprintf "%08x  " pos);
      for i = 0 to n - 1 do
        Buffer.add_string buf (Printf.sprintf "%02x " (Char.code (Bytes.get t.data (pos + i))))
      done;
      Buffer.add_char buf ' ';
      for i = 0 to n - 1 do
        let c = Bytes.get t.data (pos + i) in
        Buffer.add_char buf (if c >= ' ' && c <= '~' then c else '.')
      done;
      Buffer.add_char buf '\n';
      go (pos + 16)
    end
  in
  go off;
  Buffer.contents buf

(** Whole-tree capture and comparison.

    The oracle tracker snapshots the reference tree around every system call;
    the consistency checker captures the recovered tree of each crash state
    and diffs it against oracle versions. A node that cannot be statted or
    read records the error instead of content — the checker treats such
    nodes as findings (e.g. NOVA-Fortis checksum failures surface as [EIO]
    here). *)

type node = {
  path : string;
  kind : Types.file_kind option;  (** [None] when stat failed. *)
  size : int;
  nlink : int;
  content : string option;  (** File bytes, when readable. *)
  entries : string list option;  (** Directory entry names, when readable. *)
  xattrs : (string * string) list;
      (** Extended attributes, sorted by name; empty where unsupported. *)
  error : string option;  (** First error hit while inspecting this node. *)
}

type tree = node list
(** Sorted by path; always contains at least the root node. *)

val capture : Handle.t -> tree

val probe : Handle.t -> string -> node option
(** Inspect the single node at [path] — [None] when it does not stat. Used by
    the oracle's incremental digest maintainer to re-hash just the changed
    paths; unlike crash-state mounts, the oracle's reference file system never
    errors on a live path, so [None] simply means "absent". *)

val find : tree -> string -> node option

val serialize_node : Buffer.t -> node -> unit
(** Stable byte rendering of one node covering every field [equal_node]
    compares (plus [nlink] unconditionally). This is the canonical node
    identity used by both tree digests here and the verdict cache's
    serialization-mode keys. *)

val hash_node : node -> int
(** FNV-1a over [serialize_node]'s bytes. *)

val combine : root:int -> count:int -> int
(** Fold a commutative sum of per-node hashes plus the node count into a tree
    digest; exposed so incremental maintainers produce digests byte-identical
    to {!digest}. *)

val digest : tree -> int
(** From-scratch tree digest: [combine] over the sum of [hash_node]. Equal
    trees (per [equal] modulo the nlink-for-directories caveat) digest
    equally; the test battery guards that differing xattrs / nlink / errors
    change it. *)

val equal_node : node -> node -> bool
(** Compare kind, size, content and directory entries; compare [nlink] for
    regular files only (directory link-count conventions are checked by the
    conformance suite, not the crash checker); ignore inode numbers. *)

val equal : tree -> tree -> bool

val diff : expected:tree -> actual:tree -> string list
(** Human-readable differences, empty when [equal]. *)

val describe : node -> string
(** One-line rendering of a node, used in diffs and reports. *)

val has_errors : tree -> (string * string) list
(** (path, error) for every node that could not be inspected. *)

val pp : Format.formatter -> tree -> unit

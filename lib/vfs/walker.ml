type node = {
  path : string;
  kind : Types.file_kind option;
  size : int;
  nlink : int;
  content : string option;
  entries : string list option;
  xattrs : (string * string) list;  (* sorted; empty when unsupported *)
  error : string option;
}

type tree = node list

let xattrs_of (h : Handle.t) path =
  match h.Handle.listxattr ~path with
  | Error _ -> []
  | Ok names ->
    List.filter_map
      (fun name ->
        match h.Handle.getxattr ~path ~name with
        | Ok v -> Some (name, v)
        | Error _ -> None)
      names

(* The node at [path], from an already-successful stat. For directories the
   entry names come back inside the node ([entries]); [capture] recurses
   over them. *)
let node_of (h : Handle.t) path (st : Types.stat) =
  match st.Types.st_kind with
  | Types.Reg ->
    let content, error =
      match h.Handle.read_file ~path with
      | Ok c -> (Some c, None)
      | Error e -> (None, Some ("read: " ^ Errno.to_string e))
    in
    {
      path;
      kind = Some Types.Reg;
      size = st.Types.st_size;
      nlink = st.Types.st_nlink;
      content;
      entries = None;
      xattrs = xattrs_of h path;
      error;
    }
  | Types.Dir -> (
    match h.Handle.readdir ~path with
    | Error e ->
      {
        path;
        kind = Some Types.Dir;
        size = st.Types.st_size;
        nlink = st.Types.st_nlink;
        content = None;
        entries = None;
        xattrs = [];
        error = Some ("readdir: " ^ Errno.to_string e);
      }
    | Ok dirents ->
      let names = List.map (fun d -> d.Types.d_name) dirents in
      (* Directory sizes are a per-file-system convention; normalize to
         the entry count so trees from different systems compare. *)
      {
        path;
        kind = Some Types.Dir;
        size = List.length names;
        nlink = st.Types.st_nlink;
        content = None;
        entries = Some names;
        xattrs = xattrs_of h path;
        error = None;
      })

let probe (h : Handle.t) path =
  match h.Handle.stat ~path with Error _ -> None | Ok st -> Some (node_of h path st)

let capture (h : Handle.t) =
  let nodes = ref [] in
  let rec visit path =
    match h.Handle.stat ~path with
    | Error e ->
      nodes :=
        {
          path;
          kind = None;
          size = 0;
          nlink = 0;
          content = None;
          entries = None;
          xattrs = [];
          error = Some ("stat: " ^ Errno.to_string e);
        }
        :: !nodes
    | Ok st ->
      let n = node_of h path st in
      nodes := n :: !nodes;
      (match n.entries with
      | Some names -> List.iter (fun name -> visit (Path.concat path name)) names
      | None -> ())
  in
  visit "/";
  List.sort (fun a b -> String.compare a.path b.path) !nodes

let find tree path = List.find_opt (fun n -> n.path = path) tree

(* --- digests ---

   One stable serialization per node, covering exactly the fields
   [equal_node] reads (plus [nlink] unconditionally, matching the verdict
   cache's historical key format — the worst that extra byte can cost is a
   cache miss, never a collision). The separators are unambiguous because
   paths and entry names cannot contain control characters. *)

let serialize_node buf n =
  Buffer.add_string buf n.path;
  Buffer.add_char buf '\001';
  Buffer.add_string buf
    (match n.kind with None -> "?" | Some k -> Types.kind_to_string k);
  Buffer.add_string buf (string_of_int n.size);
  Buffer.add_char buf '|';
  Buffer.add_string buf (string_of_int n.nlink);
  (match n.content with
  | None -> Buffer.add_char buf '\002'
  | Some c ->
    Buffer.add_char buf '=';
    Buffer.add_string buf c);
  (match n.entries with
  | None -> Buffer.add_char buf '\003'
  | Some es ->
    List.iter
      (fun e ->
        Buffer.add_char buf ';';
        Buffer.add_string buf e)
      es);
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf '\004';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf v)
    n.xattrs;
  (match n.error with
  | None -> ()
  | Some e ->
    Buffer.add_char buf '!';
    Buffer.add_string buf e);
  Buffer.add_char buf '\n'

(* FNV-1a, same constants as [Pmem.Image]'s per-line hashes. Per-node hashes
   are folded into a root by plain addition — commutative, so an incremental
   maintainer can subtract a stale hash and add the fresh one in any order.
   The serialization starts with the path, so the sum still distinguishes
   "same bytes at a different path". *)

let fnv_basis = 0x1bf29ce484222325
let fnv_prime = 0x100000001b3

let hash_node n =
  let buf = Buffer.create 128 in
  serialize_node buf n;
  let s = Buffer.contents buf in
  let h = ref fnv_basis in
  String.iter (fun c -> h := (!h lxor Char.code c) * fnv_prime) s;
  !h

let combine ~root ~count = root lxor (count * fnv_prime)

let digest tree =
  let root = List.fold_left (fun acc n -> acc + hash_node n) 0 tree in
  combine ~root ~count:(List.length tree)

let equal_node a b =
  a.path = b.path && a.kind = b.kind && a.size = b.size && a.content = b.content
  && a.entries = b.entries && a.xattrs = b.xattrs && a.error = b.error
  && (a.kind <> Some Types.Reg || a.nlink = b.nlink)

let equal a b = List.length a = List.length b && List.for_all2 equal_node a b

let describe n =
  let kind = match n.kind with None -> "?" | Some k -> Types.kind_to_string k in
  let detail =
    match (n.error, n.content, n.entries) with
    | Some e, _, _ -> Printf.sprintf "error=%s" e
    | None, Some c, _ ->
      let preview = if String.length c > 32 then String.sub c 0 32 ^ "..." else c in
      Printf.sprintf "content=%S" preview
    | None, None, Some es -> Printf.sprintf "entries=[%s]" (String.concat "; " es)
    | None, None, None -> ""
  in
  let xa =
    if n.xattrs = [] then ""
    else
      Printf.sprintf " xattrs={%s}"
        (String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) n.xattrs))
  in
  Printf.sprintf "%s %s size=%d nlink=%d %s%s" kind n.path n.size n.nlink detail xa

let diff ~expected ~actual =
  let out = ref [] in
  let add fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  let rec go e a =
    match (e, a) with
    | [], [] -> ()
    | en :: e', [] ->
      add "missing: %s" (describe en);
      go e' []
    | [], an :: a' ->
      add "unexpected: %s" (describe an);
      go [] a'
    | en :: e', an :: a' ->
      let c = String.compare en.path an.path in
      if c < 0 then begin
        add "missing: %s" (describe en);
        go e' a
      end
      else if c > 0 then begin
        add "unexpected: %s" (describe an);
        go e a'
      end
      else begin
        if not (equal_node en an) then
          add "mismatch at %s: expected %s, got %s" en.path (describe en)
            (describe an);
        go e' a'
      end
  in
  go expected actual;
  List.rev !out

let has_errors tree =
  List.filter_map (fun n -> Option.map (fun e -> (n.path, e)) n.error) tree

let pp ppf tree =
  List.iter (fun n -> Format.fprintf ppf "%s@." (describe n)) tree

(** Plain-text serialization of workloads.

    A testing framework lives and dies by reproducibility: the fuzzer saves
    the workload behind every finding, and the CLI replays saved workloads
    against any file system. The format is line-based, one syscall per
    line, stable across versions:

    {v
    # chipmunk workload
    mkdir /d
    creat /d/f 0
    write 0 seed=42 len=420
    close 0
    rename /d/f /d/g
    v}

    Paths must not contain whitespace (none of the generators produce any);
    [to_string]/[of_string] round-trip for every representable workload. *)

val to_string : Syscall.t list -> string
val of_string : string -> (Syscall.t list, string) result
(** Parse errors name the offending line. Blank lines and [#] comments are
    ignored. *)

val line_of_call : Syscall.t -> string
(** One syscall as one line of the format above (no newline). This is also
    the per-call encoding used inside {!Chipmunk.Report.to_json}'s workload
    array, so saved reports round-trip through the same codec. *)

val parse_line : string -> (Syscall.t, string) result
(** Inverse of {!line_of_call}; the input must be a single non-comment,
    non-blank line. *)

val save : path:string -> Syscall.t list -> unit
val load : path:string -> (Syscall.t list, string) result

(** Report triage: fuzzers drown in duplicates, so reports are clustered by
    lexical similarity (the paper extends Syzkaller with the same simple
    scheme, section 3.4.2). *)

type cluster = {
  representative : Chipmunk.Report.t;
  members : Chipmunk.Report.t list;  (** Including the representative. *)
}

val tokens : Chipmunk.Report.t -> string list
(** Normalized lexical tokens of a report's summary and fingerprint. *)

val similarity : Chipmunk.Report.t -> Chipmunk.Report.t -> float
(** Jaccard similarity of token sets, in [0, 1]. *)

val cluster : ?threshold:float -> Chipmunk.Report.t list -> cluster list
(** Greedy clustering: each report joins the first cluster whose
    representative is at least [threshold] (default 0.6) similar, else
    starts a new one. Clusters are returned largest first. *)

val minimize :
  ?opts:Chipmunk.Harness.opts ->
  Vfs.Driver.t ->
  cluster list ->
  (cluster * Shrink.Minimize.outcome option) list
(** Run {!Shrink.Minimize.run} on each cluster's representative — one
    minimization per cluster, never per member. The representative is
    replaced by its minimized form when minimization succeeds; [None]
    means the representative did not reproduce and was left untouched. *)

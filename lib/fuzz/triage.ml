type cluster = {
  representative : Chipmunk.Report.t;
  members : Chipmunk.Report.t list;
}

let tokens r =
  let text = Chipmunk.Report.summary r ^ " " ^ Chipmunk.Report.fingerprint r in
  let normalized =
    String.map
      (fun c ->
        if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') then Char.lowercase_ascii c
        else if c >= '0' && c <= '9' then '#'
        else ' ')
      text
  in
  String.split_on_char ' ' normalized
  |> List.filter (fun s -> String.length s > 1)
  |> List.sort_uniq String.compare

let similarity a b =
  let ta = tokens a and tb = tokens b in
  let inter = List.length (List.filter (fun t -> List.mem t tb) ta) in
  let union = List.length (List.sort_uniq String.compare (ta @ tb)) in
  if union = 0 then 1.0 else float_of_int inter /. float_of_int union

let cluster ?(threshold = 0.6) reports =
  let clusters = ref [] in
  List.iter
    (fun r ->
      let rec place = function
        | [] -> clusters := !clusters @ [ ref (r, [ r ]) ]
        | c :: rest ->
          let rep, members = !c in
          if similarity rep r >= threshold then c := (rep, r :: members) else place rest
      in
      place !clusters)
    reports;
  List.map (fun c -> let rep, members = !c in { representative = rep; members = List.rev members })
    !clusters
  |> List.sort (fun a b -> compare (List.length b.members) (List.length a.members))

let minimize ?opts driver clusters =
  List.map
    (fun c ->
      match Shrink.Minimize.run ?opts driver c.representative with
      | Ok o -> ({ c with representative = o.Shrink.Minimize.report }, Some o)
      | Error _ -> (c, None))
    clusters

(** The gray-box fuzzing front end (the Syzkaller analogue, paper section
    3.4.2): generate workloads by genetic mutation of a seed corpus, guided
    by coverage points in the file systems under test, and run each
    candidate through the Chipmunk harness.

    Coverage comes from {!Cov} marks placed in file-system code — the
    stand-in for compiler-inserted coverage instrumentation. Workloads that
    reach new points are kept as seeds. Reports are deduplicated by
    fingerprint and clustered for triage.

    {2 Sharding and determinism}

    The campaign proceeds in {e epochs} of {!epoch_len} executions. Every
    execution slot derives its own RNG stream from
    [(rng_seed, epoch, slot)] and mutates seeds drawn from the corpus
    snapshot taken at the epoch boundary; the slots of one epoch are
    therefore independent and are sharded across [jobs] worker domains via
    {!Chipmunk.Pool}, each execution building its own device image inside
    {!Chipmunk.Harness.test_workload}. Workers record per-execution
    coverage in their domain-local {!Cov} table (the global set is
    [Atomic]-backed, so cross-domain counting is race-free) and publish
    new-coverage seeds and findings at the epoch barrier, where results
    are merged in execution-index order with fingerprint ties resolved to
    the lowest index.

    Because nothing in that pipeline depends on the worker count, a run
    with [~jobs:4] reports the {e identical} finding fingerprints, corpus
    and coverage counts, and [at_exec] attributions as [~jobs:1] for the
    same [rng_seed] — unless the [max_seconds] cap fires, which is the one
    inherently wall-clock-dependent stop. The run-wide verdict cache
    ({!Chipmunk.Vcache}, on by default via [exec.use_vcache]) preserves
    this: a cache hit replays the exact kinds the checker would compute,
    so only the hit {e counts} vary with scheduling. *)

val epoch_len : int
(** Executions per epoch (the corpus-sync granularity): 32. *)

type config = {
  rng_seed : int;
  max_len : int;  (** Maximum generated program length. *)
  budget : Chipmunk.Run.budget;
      (** [max_execs], [max_seconds] and [stop_after_findings] apply
          (checked at epoch granularity — a cap firing mid-epoch stops the
          campaign at that epoch's boundary, except [max_seconds], which
          also stops dispatching within the epoch); [max_workloads] is the
          campaign-side synonym and is ignored here. *)
  exec : Chipmunk.Run.exec;
      (** [opts] is applied to every execution (the default caps replayed
          writes at 2 per crash state, as the paper runs the fuzzer so
          outlier tests cannot stall the campaign); [minimize] runs on each
          unique finding after dedup, in the merge phase; [jobs] is the
          worker-domain count; [keep_sizes] is ignored (the fuzzer does not
          surface in-flight size samples). *)
}

val default_config : config
(** Seed 1, programs up to 14 calls, budget of 2000 execs / 60 s, harness
    cap 2, one worker domain. *)

val config :
  ?rng_seed:int ->
  ?max_len:int ->
  ?budget:Chipmunk.Run.budget ->
  ?exec:Chipmunk.Run.exec ->
  unit ->
  config
(** Constructor; omitted fields default to {!default_config}'s values. *)

type event = {
  fingerprint : string;
  report : Chipmunk.Report.t;
  at_exec : int;
      (** 1-based index of the execution that found it, in deterministic
          merge order — identical across job counts. *)
  elapsed : float;
      (** Wall-clock completion time (seconds since campaign start) of the
          execution that found it — the same contract as
          {!Chipmunk.Campaign.event.elapsed}. Deterministic in {e which}
          execution it names, not in its value. *)
  workload : Vfs.Syscall.t list;
}

type result = {
  execs : int;
  crash_states : int;
  coverage : int;
      (** Distinct coverage points reached across all executions (the
          union of per-execution hit sets — deterministic across job
          counts). *)
  corpus_size : int;
  dedup_hits : int;
      (** Summed per-execution {!Chipmunk.Harness.stats.dedup_hits}
          (deterministic — the dedup cache is per crash point, inside one
          execution). *)
  vcache_hits : int;
      (** Crash states answered from the run-wide verdict cache (summed
          {!Chipmunk.Harness.stats.vcache_hits}); [0] with
          [exec.use_vcache = false]. Unlike everything else in this
          record, the count depends on domain scheduling — findings,
          corpus and coverage do not. *)
  events : event list;  (** Unique findings in discovery order. *)
  clusters : Triage.cluster list;
  elapsed : float;
}

val run : ?config:config -> ?jobs:int -> Vfs.Driver.t -> result
(** Run the campaign. [?jobs] overrides [config.exec.jobs] ([0] = one
    worker per core). *)

module Run = Chipmunk.Run

let epoch_len = 32

type config = {
  rng_seed : int;
  max_len : int;
  budget : Run.budget;
  exec : Run.exec;
}

let default_config =
  {
    rng_seed = 1;
    max_len = 14;
    budget = Run.budget ~max_execs:2000 ~max_seconds:60.0 ();
    exec = Run.exec ~opts:{ Chipmunk.Harness.default_opts with cap = Some 2 } ();
  }

let config ?(rng_seed = default_config.rng_seed) ?(max_len = default_config.max_len)
    ?(budget = default_config.budget) ?(exec = default_config.exec) () =
  { rng_seed; max_len; budget; exec }

type event = {
  fingerprint : string;
  report : Chipmunk.Report.t;
  at_exec : int;
  elapsed : float;
  workload : Vfs.Syscall.t list;
}

type result = {
  execs : int;
  crash_states : int;
  coverage : int;
  corpus_size : int;
  dedup_hits : int;
  vcache_hits : int;
  events : event list;
  clusters : Triage.cluster list;
  elapsed : float;
}

(* What one execution slot sends back to the merge: everything the
   deterministic accumulator needs, nothing shared while running. *)
type slot_out = {
  s_workload : Vfs.Syscall.t list;
  s_hits : string list;  (* this execution's coverage points *)
  s_reports : Chipmunk.Report.t list;
  s_states : int;
  s_dedup_hits : int;
  s_vcache_hits : int;
  s_done_at : float;  (* wall-clock completion, seconds since t0 *)
}

let run ?(config = default_config) ?jobs driver =
  let jobs = Run.effective_jobs { config.exec with jobs = Option.value jobs ~default:config.exec.Run.jobs } in
  let budget = config.budget in
  let t0 = Unix.gettimeofday () in
  Cov.enable ();
  Cov.reset ();
  (* One verdict cache for the whole fuzzing run; slots share it through
     the harness's per-workload syncs. Mutated workloads keep long common
     prefixes with their seeds, so cross-execution hits are frequent. *)
  let vcache = if config.exec.Run.use_vcache then Some (Chipmunk.Vcache.create ()) else None in
  let vhits = ref 0 in
  let dhits = ref 0 in
  (* Corpus as an array so epoch snapshots are O(1) to capture and index;
     it only ever grows, at epoch boundaries, in execution order. *)
  let corpus = ref [||] in
  let seen_cov : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let seen_fp : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let events = ref [] in
  let all_reports = ref [] in
  let execs = ref 0 in
  let states = ref 0 in
  let stopped = ref false in
  let epoch = ref 0 in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let out () =
    Run.out_of_budget budget ~execs:!execs ~seconds:(elapsed ())
      ~findings:(Hashtbl.length seen_fp) ~workloads:0
  in
  while (not !stopped) && not (out ()) do
    let n_slots =
      match budget.Run.max_execs with
      | None -> epoch_len
      | Some m -> min epoch_len (m - !execs)
    in
    let snapshot = !corpus in
    let e = !epoch in
    (* One slot = one execution. The RNG stream is a pure function of
       (seed, epoch, slot) and the corpus snapshot is fixed for the epoch,
       so the slot's workload — and, the harness being deterministic per
       workload on a fresh image, its whole outcome — does not depend on
       which domain runs it or on how many there are. *)
    let slot s =
      let rng = Random.State.make [| config.rng_seed; e; s |] in
      let workload =
        (* As in Syzkaller: usually mutate a seed, sometimes generate fresh. *)
        if Array.length snapshot = 0 || Random.State.int rng 4 = 0 then
          Prog.generate rng ~max_len:config.max_len
        else Prog.mutate rng snapshot.(Random.State.int rng (Array.length snapshot))
      in
      Cov.local_reset ();
      let r = Chipmunk.Harness.test_workload ~opts:config.exec.Run.opts ?vcache driver workload in
      {
        s_workload = workload;
        s_hits = Cov.local_hits ();
        s_reports = r.Chipmunk.Harness.reports;
        s_states = r.Chipmunk.Harness.stats.Chipmunk.Harness.crash_states;
        s_dedup_hits = r.Chipmunk.Harness.stats.Chipmunk.Harness.dedup_hits;
        s_vcache_hits = r.Chipmunk.Harness.stats.Chipmunk.Harness.vcache_hits;
        s_done_at = elapsed ();
      }
    in
    let time_up () =
      match budget.Run.max_seconds with None -> false | Some s -> elapsed () >= s
    in
    let completed = Chipmunk.Pool.map ~jobs ~stop:time_up slot (Seq.init n_slots Fun.id) in
    if List.length completed < n_slots then stopped := true;
    (* Epoch barrier: merge in slot order (Pool.map returns index-sorted
       results), so corpus admission, fingerprint dedup and at_exec
       attribution are identical at every job count. *)
    let fresh_seeds = ref [] in
    List.iter
      (fun (_, _, o) ->
        incr execs;
        states := !states + o.s_states;
        dhits := !dhits + o.s_dedup_hits;
        vhits := !vhits + o.s_vcache_hits;
        let novel = List.exists (fun p -> not (Hashtbl.mem seen_cov p)) o.s_hits in
        List.iter (fun p -> Hashtbl.replace seen_cov p ()) o.s_hits;
        if novel then fresh_seeds := o.s_workload :: !fresh_seeds;
        List.iter
          (fun report ->
            all_reports := report :: !all_reports;
            let fp = Chipmunk.Report.fingerprint report in
            if not (Hashtbl.mem seen_fp fp) then begin
              Hashtbl.replace seen_fp fp ();
              let report =
                match config.exec.Run.minimize with None -> report | Some f -> f report
              in
              events :=
                {
                  fingerprint = fp;
                  report;
                  at_exec = !execs;
                  elapsed = o.s_done_at;
                  workload = o.s_workload;
                }
                :: !events
            end)
          o.s_reports)
      completed;
    corpus := Array.append !corpus (Array.of_list (List.rev !fresh_seeds));
    incr epoch
  done;
  let events = List.rev !events in
  (* Executions past the n-th finding may have run within the same epoch;
     truncate so the findings cap is exact at every job count. *)
  let events =
    match budget.Run.stop_after_findings with
    | Some n when List.length events > n -> List.filteri (fun i _ -> i < n) events
    | _ -> events
  in
  {
    execs = !execs;
    crash_states = !states;
    coverage = Hashtbl.length seen_cov;
    corpus_size = Array.length !corpus;
    dedup_hits = !dhits;
    vcache_hits = !vhits;
    events;
    clusters = Triage.cluster (List.rev !all_reports);
    elapsed = elapsed ();
  }

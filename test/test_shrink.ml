(* Tests for the delta-debugging minimizer: the ddmin core, fd-var repair,
   end-to-end minimization of catalogued bugs (fingerprint preserved,
   reproducer re-verifies), the JSON round trips behind reproducer
   artifacts, and the error paths Reproduce must report instead of
   raising. *)

module R = Chipmunk.Report
module S = Vfs.Syscall

(* --- Ddmin --- *)

let test_ddmin_pair () =
  let items = List.init 10 Fun.id in
  let test l = List.mem 3 l && List.mem 7 l in
  let result, stats = Shrink.Ddmin.run ~test items in
  Alcotest.(check (list int)) "exactly the failure-inducing pair" [ 3; 7 ] result;
  Alcotest.(check bool) "probes counted" true (stats.Shrink.Ddmin.probes > 0)

let test_ddmin_singleton () =
  let result, _ = Shrink.Ddmin.run ~test:(List.mem 5) (List.init 20 Fun.id) in
  Alcotest.(check (list int)) "single culprit isolated" [ 5 ] result

let test_ddmin_empty_passes () =
  let result, stats = Shrink.Ddmin.run ~test:(fun _ -> true) (List.init 8 Fun.id) in
  Alcotest.(check (list int)) "empty input passes -> empty result" [] result;
  Alcotest.(check int) "one probe suffices" 1 stats.Shrink.Ddmin.probes

let test_ddmin_memoized () =
  let calls = ref 0 in
  let test l =
    incr calls;
    List.mem 2 l && List.mem 11 l
  in
  let _, stats = Shrink.Ddmin.run ~test (List.init 16 Fun.id) in
  Alcotest.(check int) "test called once per distinct candidate" stats.Shrink.Ddmin.probes !calls

let test_ddmin_one_minimal () =
  (* Result must be 1-minimal: removing any single element breaks the test. *)
  let test l = List.mem 1 l && List.mem 6 l && List.mem 13 l in
  let result, _ = Shrink.Ddmin.run ~test (List.init 15 Fun.id) in
  Alcotest.(check bool) "result still fails" true (test result);
  List.iteri
    (fun i _ ->
      let without = List.filteri (fun j _ -> j <> i) result in
      Alcotest.(check bool) "dropping any element passes" false (test without))
    result

(* --- fd-var repair --- *)

let test_repair_drops_orphans () =
  let calls =
    [
      S.Write { fd_var = 0; data = { seed = 1; len = 10 } };
      S.Mkdir { path = "/d" };
      S.Close { fd_var = 0 };
    ]
  in
  Alcotest.(check (list string))
    "calls on an unbound fd-var dropped, path calls kept" [ "mkdir /d" ]
    (List.map S.to_string (Shrink.Minimize.repair_fds calls))

let test_repair_keeps_closed_workloads () =
  let calls =
    [
      S.Creat { path = "/f"; fd_var = 0 };
      S.Write { fd_var = 0; data = { seed = 1; len = 10 } };
      S.Close { fd_var = 0 };
      (* A use after close is legal fuzzer output (EBADF at run time) and
         must survive repair. *)
      S.Fsync { fd_var = 0 };
    ]
  in
  Alcotest.(check int) "fd-closed workload unchanged" (List.length calls)
    (List.length (Shrink.Minimize.repair_fds calls))

(* --- End-to-end minimization over the catalog --- *)

let bug no =
  match List.find_opt (fun (b : Catalog.t) -> b.Catalog.bug_no = no) Catalog.all with
  | Some b -> b
  | None -> Alcotest.fail (Printf.sprintf "no catalogued bug %d" no)

let find_report (b : Catalog.t) driver =
  let r = Chipmunk.Harness.test_workload driver b.Catalog.trigger in
  match r.Chipmunk.Harness.reports with
  | rep :: _ -> rep
  | [] -> Alcotest.fail (Printf.sprintf "bug %d trigger found nothing" b.Catalog.bug_no)

let test_minimize_bug4 () =
  let b = bug 4 in
  let driver = b.Catalog.driver () in
  let rep = find_report b driver in
  match Shrink.Minimize.run driver rep with
  | Error e -> Alcotest.fail e
  | Ok o ->
    let s = o.Shrink.Minimize.stats in
    Alcotest.(check string) "fingerprint preserved" (R.fingerprint rep)
      (R.fingerprint o.Shrink.Minimize.report);
    Alcotest.(check bool) "workload strictly shorter" true
      (s.Shrink.Minimize.ops_after < s.Shrink.Minimize.ops_before);
    Alcotest.(check bool) "harness re-runs spent" true (s.Shrink.Minimize.harness_runs > 0);
    Alcotest.(check bool) "minimized reproducer re-verifies" true
      (Chipmunk.Reproduce.verify driver o.Shrink.Minimize.report);
    Alcotest.(check int) "one culprit annotation per surviving write"
      (List.length o.Shrink.Minimize.report.R.crash_point.R.subset)
      (List.length o.Shrink.Minimize.culprits)

let test_minimize_rewrite_total () =
  (* rewrite on a report that cannot reproduce (clean driver) is identity. *)
  let b = bug 1 in
  let rep = find_report b (b.Catalog.driver ()) in
  let clean =
    match List.assoc_opt "nova" Catalog.clean_drivers with
    | Some mk -> mk ()
    | None -> Alcotest.fail "no clean nova driver"
  in
  let out = Shrink.Minimize.rewrite clean rep in
  Alcotest.(check string) "input returned unchanged" (R.fingerprint rep) (R.fingerprint out);
  Alcotest.(check int) "workload untouched" (List.length rep.R.workload)
    (List.length out.R.workload)

(* --- Report JSON round trip (satellite 1) --- *)

let test_report_roundtrip_catalog () =
  List.iter
    (fun (b : Catalog.t) ->
      let r = Chipmunk.Harness.test_workload (b.Catalog.driver ()) b.Catalog.trigger in
      List.iter
        (fun rep ->
          match R.of_json (R.to_json rep) with
          | Error e ->
            Alcotest.fail (Printf.sprintf "bug %d report does not parse back: %s" b.Catalog.bug_no e)
          | Ok rep' ->
            Alcotest.(check bool)
              (Printf.sprintf "bug %d (%s): of_json (to_json r) = r" b.Catalog.bug_no b.Catalog.fs)
              true (rep = rep'))
        r.Chipmunk.Harness.reports)
    Catalog.all

let test_report_of_json_errors () =
  let expect_error label text =
    match R.of_json text with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (label ^ ": expected an error")
  in
  expect_error "not JSON" "nonsense";
  expect_error "wrong shape" "[1,2,3]";
  expect_error "missing fields" "{}";
  expect_error "bad workload line"
    {|{"fs":"nova","kind":"unmountable","crash_point":{"fence_no":1,"during_syscall":0,"after_syscall":null,"subset":[0],"in_flight":1},"workload":["frobnicate /x"],"evidence":"e"}|}

(* --- Reproduce error paths (satellite 3) --- *)

let test_reproduce_error_paths () =
  let b = bug 1 in
  let driver = b.Catalog.driver () in
  let rep = find_report b driver in
  let expect_error label result =
    match result with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (label ^ ": expected Error")
  in
  let other_fs =
    match List.assoc_opt "pmfs" Catalog.clean_drivers with
    | Some mk -> mk ()
    | None -> Alcotest.fail "no pmfs driver"
  in
  expect_error "report from a different file system"
    (Chipmunk.Reproduce.crash_state other_fs rep);
  expect_error "crash point past the end of the trace"
    (Chipmunk.Reproduce.crash_state driver
       { rep with R.crash_point = { rep.R.crash_point with R.fence_no = 10_000_000 } });
  expect_error "subset naming unknown sequence numbers"
    (Chipmunk.Reproduce.crash_state driver
       { rep with R.crash_point = { rep.R.crash_point with R.subset = [ 999_999 ] } });
  expect_error "in_flight_at on a foreign report"
    (Chipmunk.Reproduce.in_flight_at other_fs rep)

(* --- Campaign ~minimize (post-dedup wiring) --- *)

let catalog_suite () =
  Catalog.all
  |> List.map (fun (b : Catalog.t) ->
         (Printf.sprintf "bug-%02d-%s" b.Catalog.bug_no b.Catalog.fs, b.Catalog.trigger))
  |> List.to_seq

let test_campaign_minimize () =
  let mk_driver () =
    match Catalog.buggy_driver "nova" with
    | Some mk -> mk ()
    | None -> Alcotest.fail "no buggy nova driver"
  in
  let suite () = Seq.take 5 (catalog_suite ()) in
  let plain = Chipmunk.Campaign.run (mk_driver ()) (suite ()) in
  let driver = mk_driver () in
  let minimized =
    Chipmunk.Campaign.run
      ~exec:(Chipmunk.Run.exec ~minimize:(Shrink.Minimize.rewrite driver) ())
      driver (suite ())
  in
  Alcotest.(check bool) "found something" true (plain.Chipmunk.Campaign.events <> []);
  Alcotest.(check (list string))
    "same unique findings, in order"
    (List.map (fun (e : Chipmunk.Campaign.event) -> e.Chipmunk.Campaign.fingerprint)
       plain.Chipmunk.Campaign.events)
    (List.map (fun (e : Chipmunk.Campaign.event) -> e.Chipmunk.Campaign.fingerprint)
       minimized.Chipmunk.Campaign.events);
  List.iter2
    (fun (p : Chipmunk.Campaign.event) (m : Chipmunk.Campaign.event) ->
      Alcotest.(check string) "minimized report keeps its fingerprint"
        (R.fingerprint p.Chipmunk.Campaign.report)
        (R.fingerprint m.Chipmunk.Campaign.report);
      Alcotest.(check bool) "minimized workload no longer" true
        (List.length m.Chipmunk.Campaign.report.R.workload
        <= List.length p.Chipmunk.Campaign.report.R.workload))
    plain.Chipmunk.Campaign.events minimized.Chipmunk.Campaign.events

(* --- Artifacts --- *)

let test_artifact_roundtrip () =
  let b = bug 4 in
  let driver = b.Catalog.driver () in
  let rep = find_report b driver in
  match Shrink.Minimize.run driver rep with
  | Error e -> Alcotest.fail e
  | Ok o -> (
    let a = Shrink.Artifact.of_outcome o in
    match Shrink.Artifact.of_json (Shrink.Artifact.to_json a) with
    | Error e -> Alcotest.fail ("artifact does not parse back: " ^ e)
    | Ok a' ->
      Alcotest.(check bool) "report round-trips" true
        (a.Shrink.Artifact.report = a'.Shrink.Artifact.report);
      Alcotest.(check bool) "stats round-trip" true
        (a.Shrink.Artifact.stats = a'.Shrink.Artifact.stats);
      Alcotest.(check bool) "culprits round-trip" true
        (a.Shrink.Artifact.culprits = a'.Shrink.Artifact.culprits))

let test_artifact_bare_report () =
  let b = bug 1 in
  let rep = find_report b (b.Catalog.driver ()) in
  match Shrink.Artifact.of_json (R.to_json rep) with
  | Error e -> Alcotest.fail ("bare report rejected: " ^ e)
  | Ok a ->
    Alcotest.(check bool) "report loaded" true (a.Shrink.Artifact.report = rep);
    Alcotest.(check bool) "no shrink metadata" true (a.Shrink.Artifact.stats = None)

(* --- Triage.minimize --- *)

let test_triage_minimize () =
  let b = bug 4 in
  let driver = b.Catalog.driver () in
  let r = Chipmunk.Harness.test_workload driver b.Catalog.trigger in
  let clusters = Fuzz.Triage.cluster r.Chipmunk.Harness.reports in
  Alcotest.(check bool) "clusters formed" true (clusters <> []);
  let minimized = Fuzz.Triage.minimize driver clusters in
  Alcotest.(check int) "one result per cluster" (List.length clusters) (List.length minimized);
  List.iter
    (fun ((c : Fuzz.Triage.cluster), o) ->
      match o with
      | None -> Alcotest.fail "cluster representative did not reproduce"
      | Some (o : Shrink.Minimize.outcome) ->
        Alcotest.(check string) "representative replaced by the minimized report"
          (R.fingerprint o.Shrink.Minimize.report)
          (R.fingerprint c.Fuzz.Triage.representative);
        Alcotest.(check bool) "members retained" true (c.Fuzz.Triage.members <> []))
    minimized

let suite =
  [
    Alcotest.test_case "ddmin: isolates a pair" `Quick test_ddmin_pair;
    Alcotest.test_case "ddmin: isolates a singleton" `Quick test_ddmin_singleton;
    Alcotest.test_case "ddmin: empty result when everything passes" `Quick test_ddmin_empty_passes;
    Alcotest.test_case "ddmin: candidates memoized" `Quick test_ddmin_memoized;
    Alcotest.test_case "ddmin: result is 1-minimal" `Quick test_ddmin_one_minimal;
    Alcotest.test_case "repair: orphaned fd uses dropped" `Quick test_repair_drops_orphans;
    Alcotest.test_case "repair: fd-closed workloads unchanged" `Quick
      test_repair_keeps_closed_workloads;
    Alcotest.test_case "minimize: bug 4 shrinks and re-verifies" `Quick test_minimize_bug4;
    Alcotest.test_case "minimize: rewrite is total" `Quick test_minimize_rewrite_total;
    Alcotest.test_case "report json: catalog round trip" `Quick test_report_roundtrip_catalog;
    Alcotest.test_case "report json: malformed input is an error" `Quick
      test_report_of_json_errors;
    Alcotest.test_case "reproduce: error paths never raise" `Quick test_reproduce_error_paths;
    Alcotest.test_case "campaign: ~minimize preserves findings" `Quick test_campaign_minimize;
    Alcotest.test_case "artifact: outcome round trip" `Quick test_artifact_roundtrip;
    Alcotest.test_case "artifact: bare report loads" `Quick test_artifact_bare_report;
    Alcotest.test_case "triage: representatives minimized" `Quick test_triage_minimize;
  ]

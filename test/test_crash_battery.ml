(* Cross-FS crash-consistency battery: a fixed set of workloads exercising
   every tested operation, run through the full Chipmunk pipeline against
   every file system with all bugs fixed. Any report is a false positive —
   either a real bug in the file system model or an unsound check. This is
   the repository-sized version of the multi-hour soundness sweeps. *)

module S = Vfs.Syscall

let battery =
  [
    ( "create-write-read",
      [
        S.Mkdir { path = "/d" };
        S.Creat { path = "/d/f"; fd_var = 0 };
        S.Write { fd_var = 0; data = { seed = 1; len = 350 } };
        S.Close { fd_var = 0 };
      ] );
    ( "rename-chain",
      [
        S.Creat { path = "/a"; fd_var = 0 };
        S.Write { fd_var = 0; data = { seed = 2; len = 120 } };
        S.Close { fd_var = 0 };
        S.Rename { src = "/a"; dst = "/b" };
        S.Mkdir { path = "/d" };
        S.Rename { src = "/b"; dst = "/d/c" };
      ] );
    ( "rename-overwrite",
      [
        S.Creat { path = "/x"; fd_var = 0 };
        S.Write { fd_var = 0; data = { seed = 3; len = 90 } };
        S.Close { fd_var = 0 };
        S.Creat { path = "/y"; fd_var = 1 };
        S.Write { fd_var = 1; data = { seed = 4; len = 77 } };
        S.Close { fd_var = 1 };
        S.Rename { src = "/x"; dst = "/y" };
      ] );
    ( "hardlink-churn",
      [
        S.Creat { path = "/f"; fd_var = 0 };
        S.Write { fd_var = 0; data = { seed = 5; len = 200 } };
        S.Close { fd_var = 0 };
        S.Link { src = "/f"; dst = "/g" };
        S.Link { src = "/g"; dst = "/h" };
        S.Unlink { path = "/f" };
        S.Unlink { path = "/g" };
      ] );
    ( "truncate-cycle",
      [
        S.Creat { path = "/f"; fd_var = 0 };
        S.Write { fd_var = 0; data = { seed = 6; len = 400 } };
        S.Truncate { path = "/f"; size = 111 };
        S.Truncate { path = "/f"; size = 350 };
        S.Truncate { path = "/f"; size = 0 };
        S.Close { fd_var = 0 };
      ] );
    ( "fallocate-modes",
      [
        S.Creat { path = "/f"; fd_var = 0 };
        S.Write { fd_var = 0; data = { seed = 7; len = 100 } };
        S.Fallocate { fd_var = 0; off = 50; len = 200; keep_size = true };
        S.Fallocate { fd_var = 0; off = 200; len = 150; keep_size = false };
        S.Close { fd_var = 0 };
      ] );
    ( "deep-tree",
      [
        S.Mkdir { path = "/a" };
        S.Mkdir { path = "/a/b" };
        S.Mkdir { path = "/a/b/c" };
        S.Creat { path = "/a/b/c/leaf"; fd_var = 0 };
        S.Write { fd_var = 0; data = { seed = 8; len = 64 } };
        S.Close { fd_var = 0 };
        S.Rmdir { path = "/a/b/c" } (* fails: not empty -- benign *);
        S.Unlink { path = "/a/b/c/leaf" };
        S.Rmdir { path = "/a/b/c" };
      ] );
    ( "unlink-while-open",
      [
        S.Creat { path = "/doomed"; fd_var = 0 };
        S.Write { fd_var = 0; data = { seed = 9; len = 150 } };
        S.Unlink { path = "/doomed" };
        S.Write { fd_var = 0; data = { seed = 10; len = 50 } };
        S.Close { fd_var = 0 };
      ] );
    ( "sparse-write",
      [
        S.Creat { path = "/s"; fd_var = 0 };
        S.Pwrite { fd_var = 0; off = 500; data = { seed = 11; len = 40 } };
        S.Pwrite { fd_var = 0; off = 13; data = { seed = 12; len = 99 } };
        S.Close { fd_var = 0 };
      ] );
    ( "unaligned-overwrites",
      [
        S.Creat { path = "/u"; fd_var = 0 };
        S.Write { fd_var = 0; data = { seed = 13; len = 300 } };
        S.Pwrite { fd_var = 0; off = 3; data = { seed = 14; len = 7 } };
        S.Pwrite { fd_var = 0; off = 131; data = { seed = 15; len = 61 } };
        S.Pwrite { fd_var = 0; off = 255; data = { seed = 16; len = 2 } };
        S.Close { fd_var = 0 };
      ] );
    ( "fsync-mixed",
      [
        S.Creat { path = "/f"; fd_var = 0 };
        S.Write { fd_var = 0; data = { seed = 17; len = 180 } };
        S.Fsync { fd_var = 0 };
        S.Write { fd_var = 0; data = { seed = 18; len = 90 } };
        S.Fdatasync { fd_var = 0 };
        S.Close { fd_var = 0 };
        S.Sync;
      ] );
    ( "remove-everything",
      [
        S.Mkdir { path = "/d" };
        S.Creat { path = "/d/f"; fd_var = 0 };
        S.Close { fd_var = 0 };
        S.Remove { path = "/d/f" };
        S.Remove { path = "/d" };
      ] );
  ]

let run_battery (name, mk) =
  Alcotest.test_case name `Quick (fun () ->
      let driver = mk () in
      List.iter
        (fun (wname, workload) ->
          let r = Chipmunk.Harness.test_workload driver workload in
          match r.Chipmunk.Harness.reports with
          | [] -> ()
          | rep :: _ ->
            Alcotest.failf "%s/%s false positive:\n%s" name wname
              (Format.asprintf "%a" Chipmunk.Report.pp rep))
        battery)

(* --- digest transparency: verdict-cache keying must not affect findings ---

   For every driver (the buggy catalog variant when one exists, so the
   comparison also covers non-empty finding sets), run a battery slice under
   three configurations — vcache with incremental oracle-digest keys, vcache
   with the historical tree-serialization keys, and no vcache — at jobs=1
   and jobs=4, and require byte-identical finding fingerprints. *)

module Campaign = Chipmunk.Campaign

let digest_transparency (name, mk_clean) =
  Alcotest.test_case (name ^ " digest transparency") `Quick (fun () ->
      let mk =
        match Catalog.buggy_driver name with Some mk -> mk | None -> mk_clean
      in
      let slice () = List.to_seq (List.filteri (fun i _ -> i < 6) battery) in
      let run ~jobs cfg =
        let exec =
          match cfg with
          | `Digest -> Chipmunk.Run.exec ~jobs ~use_vcache:true ()
          | `Serialized ->
            Chipmunk.Run.exec ~jobs ~use_vcache:true
              ~opts:
                {
                  Chipmunk.Harness.default_opts with
                  vcache_keying = Chipmunk.Vcache.Tree_serialization;
                }
              ()
          | `Off -> Chipmunk.Run.exec ~jobs ~use_vcache:false ()
        in
        let c = Campaign.run ~exec (mk ()) (slice ()) in
        List.map
          (fun (e : Campaign.event) ->
            (e.Campaign.fingerprint, e.Campaign.workload_index))
          c.Campaign.events
      in
      List.iter
        (fun jobs ->
          let dig = run ~jobs `Digest in
          let ser = run ~jobs `Serialized in
          let off = run ~jobs `Off in
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "digest vs serialized keys (jobs=%d)" jobs)
            ser dig;
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "digest keys vs no vcache (jobs=%d)" jobs)
            off dig)
        [ 1; 4 ])

let suite =
  List.map (fun (name, mk) -> run_battery (name ^ " battery", mk)) Catalog.clean_drivers
  @ List.map digest_transparency Catalog.clean_drivers

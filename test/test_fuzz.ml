(* Tests for the fuzzing front end: program generation/mutation, coverage
   plumbing, triage clustering, and end-to-end bug finding. *)

let test_generate_bounded () =
  let rng = Random.State.make [| 1 |] in
  for _ = 1 to 50 do
    let p = Fuzz.Prog.generate rng ~max_len:10 in
    Alcotest.(check bool) "nonempty" true (p <> []);
    Alcotest.(check bool) "bounded" true (List.length p <= 10)
  done

let test_generate_runs_on_oracle () =
  let rng = Random.State.make [| 2 |] in
  for _ = 1 to 50 do
    let p = Fuzz.Prog.generate rng ~max_len:15 in
    let h = Memfs.handle () in
    (* Generated programs may fail syscalls but must never raise. *)
    ignore (Vfs.Workload.run h p)
  done

let test_mutate_never_empty () =
  let rng = Random.State.make [| 3 |] in
  let p = ref (Fuzz.Prog.generate rng ~max_len:5) in
  for _ = 1 to 200 do
    p := Fuzz.Prog.mutate rng !p;
    Alcotest.(check bool) "nonempty" true (!p <> [])
  done

let test_cov_plumbing () =
  Cov.disable ();
  Cov.reset ();
  Cov.mark "ignored-when-disabled";
  Alcotest.(check int) "disabled marks ignored" 0 (Cov.count ());
  Cov.enable ();
  Cov.mark "a";
  Cov.mark "b";
  Cov.mark "a";
  Alcotest.(check int) "distinct points" 2 (Cov.count ());
  Alcotest.(check (list string)) "sorted hits" [ "a"; "b" ] (Cov.hits ());
  Cov.reset ();
  Alcotest.(check int) "reset clears" 0 (Cov.count ());
  Cov.disable ()

let mk_report summary_kind =
  {
    Chipmunk.Report.fs = "nova";
    workload = [ Vfs.Syscall.Mkdir { path = "/d" } ];
    crash_point =
      {
        Chipmunk.Report.fence_no = 1;
        during_syscall = Some 0;
        after_syscall = None;
        subset = [];
        in_flight = 1;
      };
    kind = summary_kind;
  }

let test_triage_groups_similar () =
  let a = mk_report (Chipmunk.Report.Unmountable "dentry foo references free inode 3") in
  let b = mk_report (Chipmunk.Report.Unmountable "dentry foo references free inode 7") in
  let c = mk_report (Chipmunk.Report.Unusable "creat probe in /d: ENOSPC") in
  let clusters = Fuzz.Triage.cluster [ a; b; c ] in
  Alcotest.(check int) "two clusters" 2 (List.length clusters);
  Alcotest.(check int) "similar pair grouped" 2
    (List.length (List.hd clusters).Fuzz.Triage.members)

let test_triage_similarity_bounds () =
  let a = mk_report (Chipmunk.Report.Unmountable "xyz") in
  Alcotest.(check bool) "self similarity 1" true (Fuzz.Triage.similarity a a >= 0.999);
  let b = mk_report (Chipmunk.Report.Unusable "completely different words entirely") in
  Alcotest.(check bool) "different below 1" true (Fuzz.Triage.similarity a b < 1.0)

let test_fuzzer_finds_injected_bug () =
  let bugs = { Novafs.Bugs.none with bug4_inplace_dentry_invalidate = true } in
  let driver = Novafs.driver ~config:(Novafs.config ~bugs ()) () in
  let config =
    Fuzz.Fuzzer.config ~rng_seed:11
      ~budget:
        (Chipmunk.Run.budget ~max_execs:2000 ~max_seconds:30.0 ~stop_after_findings:1 ())
      ()
  in
  let r = Fuzz.Fuzzer.run ~config driver in
  Alcotest.(check bool) "found" true (r.Fuzz.Fuzzer.events <> []);
  Alcotest.(check bool) "collected coverage" true (r.Fuzz.Fuzzer.coverage > 0)

let test_fuzzer_clean_is_silent () =
  let config =
    Fuzz.Fuzzer.config ~rng_seed:12
      ~budget:(Chipmunk.Run.budget ~max_execs:150 ~max_seconds:20.0 ())
      ()
  in
  let r = Fuzz.Fuzzer.run ~config (Novafs.driver ()) in
  (match r.Fuzz.Fuzzer.events with
  | [] -> ()
  | e :: _ ->
    Alcotest.failf "false positive: %s\nworkload: %s"
      (Chipmunk.Report.summary e.Fuzz.Fuzzer.report)
      (Fuzz.Prog.to_string e.Fuzz.Fuzzer.workload));
  Alcotest.(check bool) "built a corpus" true (r.Fuzz.Fuzzer.corpus_size > 0)

let test_fuzzer_deterministic_given_seed () =
  let run () =
    let config =
      Fuzz.Fuzzer.config ~rng_seed:5
        ~budget:(Chipmunk.Run.budget ~max_execs:60 ~max_seconds:60.0 ())
        ()
    in
    let r = Fuzz.Fuzzer.run ~config (Novafs.driver ()) in
    (r.Fuzz.Fuzzer.execs, r.Fuzz.Fuzzer.crash_states)
  in
  Alcotest.(check (pair int int)) "reproducible" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "generation bounded and nonempty" `Quick test_generate_bounded;
    Alcotest.test_case "generated programs run safely" `Quick test_generate_runs_on_oracle;
    Alcotest.test_case "mutation never empties" `Quick test_mutate_never_empty;
    Alcotest.test_case "coverage plumbing" `Quick test_cov_plumbing;
    Alcotest.test_case "triage groups similar reports" `Quick test_triage_groups_similar;
    Alcotest.test_case "triage similarity bounds" `Quick test_triage_similarity_bounds;
    Alcotest.test_case "fuzzer finds injected bug" `Quick test_fuzzer_finds_injected_bug;
    Alcotest.test_case "fuzzer silent on clean FS" `Quick test_fuzzer_clean_is_silent;
    Alcotest.test_case "fuzzer deterministic per seed" `Quick test_fuzzer_deterministic_given_seed;
  ]

let () =
  Alcotest.run "chipmunk-repro"
    [
      ("pmem", Test_pmem.suite);
      ("persist", Test_persist.suite);
      ("vfs", Test_vfs.suite);
      ("novafs", Test_novafs.suite);
      ("chipmunk", Test_chipmunk.suite);
      ("pmfs-winefs", Test_jfs.suite);
      ("splitfs-ext4dax", Test_splitfs.suite);
      ("conformance", Test_conformance.suites);
      ("blockalloc", Test_blockalloc.suite);
      ("chipmunk-units", Test_chipmunk_units.suite);
      ("ace", Test_ace.suite);
      ("fuzz", Test_fuzz.suite);
      ("catalog", Test_catalog.suite);
      ("codecs", Test_codecs.suite);
      ("crash-battery", Test_crash_battery.suite);
      ("parallel", Test_parallel.suite);
      ("vcache", Test_vcache.suite);
      ("oracle-digest", Test_oracle_digest.suite);
      ("run", Test_run.suite);
      ("shrink", Test_shrink.suite);
      ("stress", Test_stress.suite);
    ]

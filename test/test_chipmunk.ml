(* End-to-end tests of the Chipmunk pipeline on NOVA / NOVA-Fortis:
   soundness (no reports when the file system is correct) and per-bug
   regression (each injected bug from the paper's Table 1 is detected). *)

module Syscall = Vfs.Syscall

let w_creat = [ Syscall.Creat { path = "/foo"; fd_var = 0 }; Syscall.Close { fd_var = 0 } ]
let w_mkdir = [ Syscall.Mkdir { path = "/d" } ]

let w_write =
  [
    Syscall.Creat { path = "/foo"; fd_var = 0 };
    Syscall.Write { fd_var = 0; data = { seed = 1; len = 300 } };
    Syscall.Close { fd_var = 0 };
  ]

let w_link =
  [
    Syscall.Creat { path = "/foo"; fd_var = 0 };
    Syscall.Close { fd_var = 0 };
    Syscall.Link { src = "/foo"; dst = "/bar" };
  ]

let w_unlink =
  [
    Syscall.Creat { path = "/foo"; fd_var = 0 };
    Syscall.Close { fd_var = 0 };
    Syscall.Unlink { path = "/foo" };
  ]

let w_rename =
  [
    Syscall.Creat { path = "/foo"; fd_var = 0 };
    Syscall.Write { fd_var = 0; data = { seed = 2; len = 100 } };
    Syscall.Close { fd_var = 0 };
    Syscall.Rename { src = "/foo"; dst = "/bar" };
  ]

let w_rename_crossdir =
  [
    Syscall.Mkdir { path = "/d" };
    Syscall.Creat { path = "/foo"; fd_var = 0 };
    Syscall.Write { fd_var = 0; data = { seed = 7; len = 90 } };
    Syscall.Close { fd_var = 0 };
    Syscall.Rename { src = "/foo"; dst = "/d/bar" };
  ]

let w_rename_overwrite =
  [
    Syscall.Creat { path = "/a"; fd_var = 0 };
    Syscall.Write { fd_var = 0; data = { seed = 3; len = 80 } };
    Syscall.Close { fd_var = 0 };
    Syscall.Creat { path = "/b"; fd_var = 1 };
    Syscall.Write { fd_var = 1; data = { seed = 4; len = 60 } };
    Syscall.Close { fd_var = 1 };
    Syscall.Rename { src = "/a"; dst = "/b" };
  ]

let w_truncate =
  [
    Syscall.Creat { path = "/foo"; fd_var = 0 };
    Syscall.Write { fd_var = 0; data = { seed = 5; len = 400 } };
    Syscall.Truncate { path = "/foo"; size = 100 };
    Syscall.Close { fd_var = 0 };
  ]

let w_fallocate_after_churn =
  [
    Syscall.Creat { path = "/old"; fd_var = 0 };
    Syscall.Write { fd_var = 0; data = { seed = 6; len = 500 } };
    Syscall.Close { fd_var = 0 };
    Syscall.Unlink { path = "/old" };
    Syscall.Creat { path = "/foo"; fd_var = 1 };
    Syscall.Fallocate { fd_var = 1; off = 0; len = 400; keep_size = false };
    Syscall.Close { fd_var = 1 };
  ]

let w_many_creats =
  List.init 10 (fun i -> Syscall.Creat { path = Printf.sprintf "/f%d" i; fd_var = i })

let w_rmdir =
  [ Syscall.Mkdir { path = "/d" }; Syscall.Mkdir { path = "/d/e" }; Syscall.Rmdir { path = "/d/e" } ]

let all_clean_workloads =
  [
    w_creat; w_mkdir; w_write; w_link; w_unlink; w_rename; w_rename_crossdir;
    w_rename_overwrite; w_truncate; w_fallocate_after_churn; w_many_creats; w_rmdir;
  ]

let run ?(fortis = false) ?(bugs = Novafs.Bugs.none) ?opts workload =
  let config = Novafs.config ~fortis ~bugs () in
  let driver = Novafs.driver ~config () in
  Chipmunk.Harness.test_workload ?opts driver workload

let test_clean_no_reports () =
  List.iteri
    (fun i workload ->
      let r = run workload in
      (match r.Chipmunk.Harness.reports with
      | [] -> ()
      | rep :: _ ->
        Alcotest.failf "workload %d produced a false positive:\n%s" i
          (Format.asprintf "%a" Chipmunk.Report.pp rep));
      Alcotest.(check bool)
        (Printf.sprintf "workload %d checked some states" i)
        true
        (r.Chipmunk.Harness.stats.Chipmunk.Harness.crash_states > 0))
    all_clean_workloads

let test_clean_fortis_no_reports () =
  List.iteri
    (fun i workload ->
      let r = run ~fortis:true workload in
      match r.Chipmunk.Harness.reports with
      | [] -> ()
      | rep :: _ ->
        Alcotest.failf "fortis workload %d false positive:\n%s" i
          (Format.asprintf "%a" Chipmunk.Report.pp rep))
    all_clean_workloads

let expect_bug ~name ?(fortis = false) bugs workloads =
  let found =
    List.exists
      (fun w -> (run ~fortis ~bugs w).Chipmunk.Harness.reports <> [])
      workloads
  in
  if not found then Alcotest.failf "%s: no workload exposed the bug" name

let kind_found ~name ?(fortis = false) bugs workloads pred =
  let reports =
    List.concat_map (fun w -> (run ~fortis ~bugs w).Chipmunk.Harness.reports) workloads
  in
  if not (List.exists (fun r -> pred r.Chipmunk.Report.kind) reports) then
    Alcotest.failf "%s: expected report kind not found among %d report(s): %s" name
      (List.length reports)
      (String.concat "; " (List.map Chipmunk.Report.summary reports))

let test_bug1 () =
  kind_found ~name:"bug1 unmountable"
    { Novafs.Bugs.none with bug1_dentry_before_inode = true }
    [ w_creat; w_mkdir ]
    (function Chipmunk.Report.Unmountable _ -> true | _ -> false)

let test_bug2 () =
  kind_found ~name:"bug2 unreadable file"
    { Novafs.Bugs.none with bug2_unflushed_log_init = true }
    [ w_creat; w_mkdir ]
    (function Chipmunk.Report.Inaccessible _ -> true | _ -> false)

let test_bug3 () =
  kind_found ~name:"bug3 unmountable on log extension"
    { Novafs.Bugs.none with bug3_tail_before_page_init = true }
    [ w_many_creats; w_write ]
    (function Chipmunk.Report.Unmountable _ -> true | _ -> false)

let test_bug4 () =
  kind_found ~name:"bug4 rename loses file"
    { Novafs.Bugs.none with bug4_inplace_dentry_invalidate = true }
    [ w_rename ]
    (function Chipmunk.Report.Atomicity _ -> true | _ -> false)

let test_bug5 () =
  kind_found ~name:"bug5 old name persists"
    { Novafs.Bugs.none with bug5_tail_outside_journal = true }
    [ w_rename_crossdir ]
    (function Chipmunk.Report.Atomicity _ -> true | _ -> false)

let test_bug6 () =
  kind_found ~name:"bug6 link count early"
    { Novafs.Bugs.none with bug6_inplace_link_count = true }
    [ w_link ]
    (function Chipmunk.Report.Atomicity _ -> true | _ -> false)

let test_bug7 () =
  kind_found ~name:"bug7 truncate data loss"
    { Novafs.Bugs.none with bug7_eager_truncate_zero = true }
    [ w_truncate ]
    (function Chipmunk.Report.Atomicity _ -> true | _ -> false)

let test_bug8 () =
  expect_bug ~name:"bug8 fallocate stale data"
    { Novafs.Bugs.none with bug8_fallocate_publish_first = true }
    [ w_fallocate_after_churn ]

let test_bug9 () =
  kind_found ~name:"bug9 entry csum" ~fortis:true
    { Novafs.Bugs.none with bug9_nonatomic_entry_csum = true }
    [ w_unlink; w_truncate; w_rmdir ]
    (function
      | Chipmunk.Report.Inaccessible _ | Chipmunk.Report.Synchrony _
      | Chipmunk.Report.Atomicity _ ->
        true
      | _ -> false)

let test_bug10 () =
  kind_found ~name:"bug10 replica mismatch" ~fortis:true
    { Novafs.Bugs.none with bug10_replica_not_updated = true }
    [ w_link; w_unlink; w_rename ]
    (function Chipmunk.Report.Inaccessible _ -> true | _ -> false)

let test_bug11 () =
  kind_found ~name:"bug11 double free" ~fortis:true
    { Novafs.Bugs.none with bug11_replay_truncate_twice = true }
    [ w_truncate ]
    (function Chipmunk.Report.Recovery_fault _ -> true | _ -> false)

let test_bug12 () =
  kind_found ~name:"bug12 stale content csum" ~fortis:true
    { Novafs.Bugs.none with bug12_csum_after_commit = true }
    [ w_truncate ]
    (function Chipmunk.Report.Inaccessible _ -> true | _ -> false)

let test_cap_two_still_finds_rename_bug () =
  let opts = { Chipmunk.Harness.default_opts with cap = Some 2 } in
  let bugs = { Novafs.Bugs.none with bug4_inplace_dentry_invalidate = true } in
  let r = run ~bugs ~opts w_rename in
  Alcotest.(check bool) "found with cap 2" true (r.Chipmunk.Harness.reports <> [])

let test_stats_populated () =
  let r = run w_write in
  let s = r.Chipmunk.Harness.stats in
  Alcotest.(check bool) "fences seen" true (s.Chipmunk.Harness.fences > 0);
  Alcotest.(check bool) "crash points" true (s.Chipmunk.Harness.crash_points > 0);
  Alcotest.(check bool) "in-flight small" true (s.Chipmunk.Harness.max_in_flight <= 10)

let suite =
  [
    Alcotest.test_case "clean NOVA: no false positives" `Quick test_clean_no_reports;
    Alcotest.test_case "clean NOVA-Fortis: no false positives" `Quick test_clean_fortis_no_reports;
    Alcotest.test_case "bug 1: dangling dentry -> unmountable" `Quick test_bug1;
    Alcotest.test_case "bug 2: unflushed log init -> unreadable" `Quick test_bug2;
    Alcotest.test_case "bug 3: tail before page init -> unmountable" `Quick test_bug3;
    Alcotest.test_case "bug 4: in-place dentry invalidate -> file lost" `Quick test_bug4;
    Alcotest.test_case "bug 5: tail outside journal -> old name persists" `Quick test_bug5;
    Alcotest.test_case "bug 6: in-place link count" `Quick test_bug6;
    Alcotest.test_case "bug 7: eager truncate zeroing" `Quick test_bug7;
    Alcotest.test_case "bug 8: fallocate publishes stale pages" `Quick test_bug8;
    Alcotest.test_case "bug 9: non-atomic entry checksum (fortis)" `Quick test_bug9;
    Alcotest.test_case "bug 10: replica not updated (fortis)" `Quick test_bug10;
    Alcotest.test_case "bug 11: truncate replayed twice (fortis)" `Quick test_bug11;
    Alcotest.test_case "bug 12: checksum after commit (fortis)" `Quick test_bug12;
    Alcotest.test_case "cap=2 finds the rename bug" `Quick test_cap_two_still_finds_rename_bug;
    Alcotest.test_case "stats populated" `Quick test_stats_populated;
  ]

(* --- reproducer --- *)

let test_reproduce_bug () =
  let bugs = { Novafs.Bugs.none with bug4_inplace_dentry_invalidate = true } in
  let config = Novafs.config ~bugs () in
  let driver = Novafs.driver ~config () in
  let r = Chipmunk.Harness.test_workload driver w_rename in
  match r.Chipmunk.Harness.reports with
  | [] -> Alcotest.fail "no report to reproduce"
  | report :: _ ->
    Alcotest.(check bool) "report reproduces" true (Chipmunk.Reproduce.verify driver report);
    (match Chipmunk.Reproduce.crash_state driver report with
    | Error e -> Alcotest.failf "crash_state failed: %s" e
    | Ok cs ->
      (* The rebuilt image mounts (bug 4 is an atomicity bug, not an
         unmountable one) and shows the lost file. *)
      (match cs.Chipmunk.Reproduce.mount () with
      | Error e -> Alcotest.failf "mount of crash state failed: %s" e
      | Ok h ->
        let tree = Vfs.Walker.capture h in
        Alcotest.(check bool) "neither old nor new file present" true
          (Vfs.Walker.find tree "/foo" = None && Vfs.Walker.find tree "/bar" = None)))

let test_reproduce_clean_report_mismatch () =
  (* Reproducing against the wrong (fixed) file system must not confirm. *)
  let bugs = { Novafs.Bugs.none with bug4_inplace_dentry_invalidate = true } in
  let buggy = Novafs.driver ~config:(Novafs.config ~bugs ()) () in
  let fixed = Novafs.driver () in
  let r = Chipmunk.Harness.test_workload buggy w_rename in
  match r.Chipmunk.Harness.reports with
  | [] -> Alcotest.fail "no report"
  | report :: _ ->
    Alcotest.(check bool) "fixed FS does not reproduce" false
      (Chipmunk.Reproduce.verify fixed report)

let suite =
  suite
  @ [
      Alcotest.test_case "reports reproduce bit-identical crash states" `Quick test_reproduce_bug;
      Alcotest.test_case "reports do not reproduce on the fixed FS" `Quick
        test_reproduce_clean_report_mismatch;
    ]

(* --- Vinter-style read-set heuristic --- *)

let test_read_set_heuristic_tradeoff () =
  let states heur =
    List.fold_left
      (fun (found, states) (b : Catalog.t) ->
        let opts = { Chipmunk.Harness.default_opts with read_set_heuristic = heur } in
        let r = Chipmunk.Harness.test_workload ~opts (b.Catalog.driver ()) b.Catalog.trigger in
        ( (found + if r.Chipmunk.Harness.reports <> [] then 1 else 0),
          states + r.Chipmunk.Harness.stats.Chipmunk.Harness.crash_states ))
      (0, 0) Catalog.all
  in
  let found_off, states_off = states false in
  let found_on, states_on = states true in
  Alcotest.(check int) "full enumeration finds everything" 25 found_off;
  Alcotest.(check bool) "heuristic checks fewer states" true (states_on < states_off);
  (* Since the cold-base fix (hot subsets are checked both on the bare
     prefix and with the never-read units applied), the heuristic's
     state-space reduction loses no bug in the corpus. *)
  Alcotest.(check int)
    (Printf.sprintf "heuristic finds the whole corpus (found %d)" found_on)
    25 found_on

let test_read_set_heuristic_sound () =
  (* No false positives on a clean FS with the heuristic on. *)
  let opts = { Chipmunk.Harness.default_opts with read_set_heuristic = true } in
  List.iter
    (fun w ->
      match (run ~opts w).Chipmunk.Harness.reports with
      | [] -> ()
      | rep :: _ ->
        Alcotest.failf "heuristic false positive:\n%s"
          (Format.asprintf "%a" Chipmunk.Report.pp rep))
    all_clean_workloads

let suite =
  suite
  @ [
      Alcotest.test_case "read-set heuristic trade-off" `Quick test_read_set_heuristic_tradeoff;
      Alcotest.test_case "read-set heuristic soundness" `Quick test_read_set_heuristic_sound;
    ]

(* Tests for the cross-workload verdict cache and the incremental image
   digest underneath it: digest maintenance under every mutation path
   (including undo-log rollback), cache transparency (findings identical
   with the cache on or off, at any job count), the record/replay split of
   the harness, and the minimizer's trace-replay probe cache. *)

module Campaign = Chipmunk.Campaign
module Harness = Chipmunk.Harness
module Vcache = Chipmunk.Vcache
module Image = Pmem.Image
module R = Chipmunk.Report

(* --- Incremental image digest --- *)

let test_digest_matches_rehash_randomized () =
  (* A size that ends mid-line, so the partial-last-line path is exercised
     by every op that lands near the end. *)
  let size = 4096 + 13 in
  let img = Image.create ~size in
  Alcotest.(check int) "fresh image: incremental == from-scratch"
    (Image.rehash img) (Image.digest img);
  let rng = Random.State.make [| 0x51ca7 |] in
  for step = 1 to 500 do
    let off = Random.State.int rng size in
    let len = 1 + Random.State.int rng (min 200 (size - off)) in
    (match Random.State.int rng 6 with
    | 0 ->
      Image.write_string img ~off
        (String.init len (fun _ -> Char.chr (Random.State.int rng 256)))
    | 1 -> Image.fill img ~off ~len (Char.chr (Random.State.int rng 256))
    | 2 -> Image.write_u8 img ~off (Random.State.int rng 256)
    | 3 when off + 2 <= size -> Image.write_u16 img ~off (Random.State.int rng 65536)
    | 4 when off + 4 <= size -> Image.write_u32 img ~off (Random.State.bits rng)
    | 5 when off + 8 <= size -> Image.write_u64 img ~off (Random.State.bits rng)
    | _ -> Image.write_u8 img ~off (Random.State.int rng 256));
    if step mod 25 = 0 then
      Alcotest.(check int)
        (Printf.sprintf "step %d: incremental == from-scratch" step)
        (Image.rehash img) (Image.digest img)
  done;
  Alcotest.(check int) "final: incremental == from-scratch" (Image.rehash img)
    (Image.digest img)

let test_digest_content_pure () =
  (* Equal bytes imply equal digests, however they were written. *)
  let a = Image.create ~size:512 and b = Image.create ~size:512 in
  Image.write_u32 a ~off:100 0xdeadbeef;
  Image.write_string b ~off:100 "\xef\xbe\xad\xde";
  Alcotest.(check bool) "u32 == equivalent string write" true (Image.equal a b);
  Alcotest.(check int) "same digest" (Image.digest a) (Image.digest b);
  Image.write_u64 a ~off:64 0x0102030405060708;
  Image.write_string b ~off:64 "\x08\x07\x06\x05\x04\x03\x02\x01";
  Alcotest.(check int) "u64 == equivalent string write" (Image.digest a) (Image.digest b);
  (* And a detour through different intermediate contents converges. *)
  Image.fill a ~off:0 ~len:32 'x';
  Image.fill a ~off:0 ~len:32 '\000';
  Alcotest.(check int) "overwritten detour converges" (Image.digest a) (Image.digest b)

let test_digest_snapshot_restore () =
  let img = Image.create ~size:1024 in
  Image.write_string img ~off:7 "snapshot me";
  let d0 = Image.digest img in
  let snap = Image.snapshot img in
  Alcotest.(check int) "snapshot carries the digest" d0 (Image.digest snap);
  Image.fill img ~off:0 ~len:1024 '\xff';
  Alcotest.(check bool) "mutation moves the digest" true (Image.digest img <> d0);
  Image.restore img ~from:snap;
  Alcotest.(check int) "restore brings it back" d0 (Image.digest img);
  Alcotest.(check int) "and it matches a rehash" (Image.rehash img) (Image.digest img)

let test_digest_undo_rollback () =
  (* The harness relies on rollback restoring the digest exactly: the dedup
     key of state N must not be perturbed by the check of state N-1. *)
  let size = 2048 + 5 in
  let img = Image.create ~size in
  let rng = Random.State.make [| 0xf00d |] in
  for _ = 1 to 40 do
    let off = Random.State.int rng size in
    Image.write_u8 img ~off (Random.State.int rng 256)
  done;
  let d0 = Image.digest img in
  let undo = Persist.Undo.create img in
  for _ = 1 to 100 do
    let off = Random.State.int rng size in
    let len = 1 + Random.State.int rng (min 100 (size - off)) in
    Persist.Undo.write_string undo ~off
      (String.init len (fun _ -> Char.chr (Random.State.int rng 256)))
  done;
  Alcotest.(check int) "mutated digest still incremental" (Image.rehash img)
    (Image.digest img);
  Persist.Undo.rollback undo;
  Alcotest.(check int) "rollback restores the digest" d0 (Image.digest img);
  Alcotest.(check int) "restored digest matches a rehash" (Image.rehash img)
    (Image.digest img)

(* --- Vcache unit behaviour --- *)

let test_vcache_find_add_sync () =
  let c = Vcache.create () in
  let k = Vcache.key ~fs:"nova" ~image_digest:42 ~phase_digest:"abc" in
  Alcotest.(check bool) "empty cache misses" true (Vcache.find c k = None);
  Vcache.add c k [];
  Alcotest.(check bool) "consistent verdict cached as Some []" true
    (Vcache.find c k = Some []);
  Alcotest.(check int) "not yet published" 0 (Vcache.entries c);
  Vcache.sync c;
  Alcotest.(check int) "published at sync" 1 (Vcache.entries c);
  (* Another domain sees the entry only through its own sync. *)
  let seen_after_sync =
    Domain.join
      (Domain.spawn (fun () ->
           let before = Vcache.find c k in
           Vcache.sync c;
           (before, Vcache.find c k)))
  in
  Alcotest.(check bool) "fresh domain misses before sync" true
    (fst seen_after_sync = None);
  Alcotest.(check bool) "fresh domain hits after sync" true
    (snd seen_after_sync = Some [])

let test_vcache_key_separates () =
  (* The key must separate file systems and phases even at equal digests. *)
  let k1 = Vcache.key ~fs:"nova" ~image_digest:7 ~phase_digest:"p" in
  let k2 = Vcache.key ~fs:"pmfs" ~image_digest:7 ~phase_digest:"p" in
  let k3 = Vcache.key ~fs:"nova" ~image_digest:7 ~phase_digest:"q" in
  let k4 = Vcache.key ~fs:"nova" ~image_digest:8 ~phase_digest:"p" in
  let all = [ k1; k2; k3; k4 ] in
  Alcotest.(check int) "four distinct keys" 4
    (List.length (List.sort_uniq compare all))

(* --- Cache transparency: findings identical on/off, at any job count --- *)

let nova_buggy () =
  match Catalog.buggy_driver "nova" with
  | Some mk -> mk ()
  | None -> Alcotest.fail "no buggy nova driver"

let ace_slice () = Seq.take 40 (Ace.seq1 Ace.Strong)

let event_key (e : Campaign.event) =
  (e.Campaign.fingerprint, e.Campaign.workload_index, e.Campaign.workload_name)

let run_ace ~use_vcache ~jobs =
  Campaign.run
    ~exec:(Chipmunk.Run.exec ~use_vcache ~jobs ())
    (nova_buggy ()) (ace_slice ())

let test_campaign_vcache_transparent () =
  let on = run_ace ~use_vcache:true ~jobs:1 in
  let off = run_ace ~use_vcache:false ~jobs:1 in
  Alcotest.(check bool) "slice finds something" true (on.Campaign.events <> []);
  Alcotest.(check (list (triple string int string)))
    "same findings with the cache on and off"
    (List.map event_key off.Campaign.events)
    (List.map event_key on.Campaign.events);
  Alcotest.(check int) "same enumerated states" off.Campaign.crash_states
    on.Campaign.crash_states;
  Alcotest.(check int) "same crash points" off.Campaign.crash_points
    on.Campaign.crash_points;
  Alcotest.(check int) "cache off never hits" 0 off.Campaign.vcache_hits;
  Alcotest.(check bool)
    (Printf.sprintf "cache on hits across workloads (%d of %d states)"
       on.Campaign.vcache_hits on.Campaign.crash_states)
    true (on.Campaign.vcache_hits > 0)

let test_campaign_vcache_parallel_deterministic () =
  let j1 = run_ace ~use_vcache:true ~jobs:1 in
  let j4 = run_ace ~use_vcache:true ~jobs:4 in
  Alcotest.(check (list (triple string int string)))
    "jobs=1 and jobs=4 agree finding-for-finding"
    (List.map event_key j1.Campaign.events)
    (List.map event_key j4.Campaign.events);
  Alcotest.(check int) "same workload count" j1.Campaign.workloads_run
    j4.Campaign.workloads_run;
  Alcotest.(check int) "same crash states" j1.Campaign.crash_states j4.Campaign.crash_states;
  Alcotest.(check int) "same dedup hits" j1.Campaign.dedup_hits j4.Campaign.dedup_hits

let test_harness_vcache_second_run_hits () =
  (* Two identical workloads through one cache: the second is answered
     almost entirely from the first's verdicts, with identical reports. *)
  let b =
    match List.find_opt (fun (b : Catalog.t) -> b.Catalog.fs = "NOVA") Catalog.all with
    | Some b -> b
    | None -> Alcotest.fail "no NOVA bug in the catalog"
  in
  let driver = b.Catalog.driver () in
  let vcache = Vcache.create () in
  let r1 = Harness.test_workload ~vcache driver b.Catalog.trigger in
  let r2 = Harness.test_workload ~vcache driver b.Catalog.trigger in
  Alcotest.(check (list string)) "same reports both times"
    (List.map R.fingerprint r1.Harness.reports)
    (List.map R.fingerprint r2.Harness.reports)
    ;
  Alcotest.(check bool)
    (Printf.sprintf "second run served from the cache (%d hits)"
       r2.Harness.stats.Harness.vcache_hits)
    true (r2.Harness.stats.Harness.vcache_hits > 0);
  Alcotest.(check bool) "cache holds published entries" true (Vcache.entries vcache > 0)

(* --- record / replay_recorded split --- *)

let test_replay_recorded_equals_test_workload () =
  List.iter
    (fun (b : Catalog.t) ->
      let driver = b.Catalog.driver () in
      let direct = Harness.test_workload driver b.Catalog.trigger in
      let recording = Harness.record driver b.Catalog.trigger in
      let replayed = Harness.replay_recorded driver recording in
      let again = Harness.replay_recorded driver recording in
      Alcotest.(check (list string))
        (Printf.sprintf "bug %d (%s): replay_recorded == test_workload" b.Catalog.bug_no
           b.Catalog.fs)
        (List.map R.fingerprint direct.Harness.reports)
        (List.map R.fingerprint replayed.Harness.reports);
      Alcotest.(check (list string))
        (Printf.sprintf "bug %d (%s): recording reusable" b.Catalog.bug_no b.Catalog.fs)
        (List.map R.fingerprint replayed.Harness.reports)
        (List.map R.fingerprint again.Harness.reports))
    (List.filteri (fun i _ -> i < 6) Catalog.all)

(* --- Minimizer trace-replay probe cache --- *)

let test_minimize_replay_probe_hits () =
  let b =
    match List.find_opt (fun (b : Catalog.t) -> b.Catalog.bug_no = 4) Catalog.all with
    | Some b -> b
    | None -> Alcotest.fail "no catalogued bug 4"
  in
  let driver = b.Catalog.driver () in
  let rep =
    match (Harness.test_workload driver b.Catalog.trigger).Harness.reports with
    | r :: _ -> r
    | [] -> Alcotest.fail "bug 4 trigger found nothing"
  in
  match Shrink.Minimize.run driver rep with
  | Error e -> Alcotest.fail e
  | Ok o ->
    let s = o.Shrink.Minimize.stats in
    Alcotest.(check string) "fingerprint preserved" (R.fingerprint rep)
      (R.fingerprint o.Shrink.Minimize.report);
    Alcotest.(check bool)
      (Printf.sprintf "some probes served by trace replay (%d hits, %d recordings)"
         s.Shrink.Minimize.replay_probe_hits s.Shrink.Minimize.harness_runs)
      true
      (s.Shrink.Minimize.replay_probe_hits > 0)

let suite =
  [
    Alcotest.test_case "digest: incremental == rehash under random writes" `Quick
      test_digest_matches_rehash_randomized;
    Alcotest.test_case "digest: pure function of the bytes" `Quick test_digest_content_pure;
    Alcotest.test_case "digest: snapshot/restore preserve it" `Quick
      test_digest_snapshot_restore;
    Alcotest.test_case "digest: undo rollback restores it exactly" `Quick
      test_digest_undo_rollback;
    Alcotest.test_case "vcache: find/add/sync across domains" `Quick test_vcache_find_add_sync;
    Alcotest.test_case "vcache: key separates fs/phase/digest" `Quick test_vcache_key_separates;
    Alcotest.test_case "campaign: findings identical with vcache on/off" `Quick
      test_campaign_vcache_transparent;
    Alcotest.test_case "campaign: vcache keeps jobs=1 == jobs=4" `Quick
      test_campaign_vcache_parallel_deterministic;
    Alcotest.test_case "harness: repeated workload served from cache" `Quick
      test_harness_vcache_second_run_hits;
    Alcotest.test_case "harness: replay_recorded == test_workload" `Quick
      test_replay_recorded_equals_test_workload;
    Alcotest.test_case "minimize: probes served by trace replay" `Quick
      test_minimize_replay_probe_hits;
  ]

(* The oracle's incrementally maintained tree digests (the [Pmem.Image]
   digest==rehash pattern applied to the oracle tree): after every syscall of
   every workload — including error-returning calls and fd-based calls on
   renamed/unlinked/hard-linked paths — the digest patched from Memfs's
   dirty-path set must equal a from-scratch [Oracle.redigest] of the
   boundary tree. Plus collision regressions for every [equal_node] field
   and a pin of the serialization-mode verdict-cache keys against the
   historical rendering. *)

module Types = Vfs.Types
module Syscall = Vfs.Syscall
module Walker = Vfs.Walker
module Oracle = Chipmunk.Oracle
module Checker = Chipmunk.Checker
module Vcache = Chipmunk.Vcache

let d i = { Syscall.seed = i; len = 8 + (i mod 50) }

let check_incremental name calls =
  let o = Oracle.run calls in
  for i = 0 to Oracle.n_calls o do
    let inc = Oracle.digest o i and scratch = Oracle.redigest o i in
    if inc <> scratch then
      Alcotest.failf "%s: boundary %d: incremental %x <> redigest %x" name i inc
        scratch
  done

(* Hand-built workloads covering the cases where deriving changed paths from
   syscall arguments would go wrong — the dirty set must come from inode
   back-links instead. *)
let fixed : (string * Syscall.t list) list =
  [
    ( "fd-write-after-rename",
      [
        Creat { path = "/f"; fd_var = 0 };
        Write { fd_var = 0; data = d 1 };
        Rename { src = "/f"; dst = "/g" };
        Write { fd_var = 0; data = d 2 };
        Fsync { fd_var = 0 };
        Close { fd_var = 0 };
      ] );
    ( "fd-write-after-unlink-orphan",
      [
        Creat { path = "/f"; fd_var = 0 };
        Write { fd_var = 0; data = d 3 };
        Unlink { path = "/f" };
        Write { fd_var = 0; data = d 4 };
        Close { fd_var = 0 };
      ] );
    ( "hardlink-alias-write",
      [
        Creat { path = "/f"; fd_var = 0 };
        Link { src = "/f"; dst = "/g" };
        Write { fd_var = 0; data = d 5 };
        Unlink { path = "/f" };
        Write { fd_var = 0; data = d 6 };
        Close { fd_var = 0 };
      ] );
    ( "rename-overwrite-hardlinked-target",
      [
        Creat { path = "/a"; fd_var = 0 };
        Write { fd_var = 0; data = d 7 };
        Close { fd_var = 0 };
        Creat { path = "/b"; fd_var = 1 };
        Write { fd_var = 1; data = d 8 };
        Close { fd_var = 1 };
        Link { src = "/b"; dst = "/c" };
        Rename { src = "/a"; dst = "/b" };
      ] );
    ( "dir-rename-subtree",
      [
        Mkdir { path = "/d" };
        Mkdir { path = "/d/sub" };
        Creat { path = "/d/sub/f"; fd_var = 0 };
        Write { fd_var = 0; data = d 9 };
        Close { fd_var = 0 };
        Mkdir { path = "/e" };
        Rename { src = "/d"; dst = "/e/d2" };
        Truncate { path = "/e/d2/sub/f"; size = 3 };
      ] );
    ( "error-returning-calls",
      [
        Mkdir { path = "/d" };
        Mkdir { path = "/d" };
        Unlink { path = "/missing" };
        Rename { src = "/missing"; dst = "/x" };
        Open { path = "/missing"; flags = [ Types.O_WRONLY ]; fd_var = 0 };
        Truncate { path = "/d"; size = 0 };
        Rmdir { path = "/missing" };
        Removexattr { path = "/d"; name = "nope" };
        Mkdir { path = "/d2" };
      ] );
    ( "xattrs-and-allocation",
      [
        Creat { path = "/f"; fd_var = 0 };
        Setxattr { path = "/f"; name = "user.a"; value = "1" };
        Setxattr { path = "/f"; name = "user.b"; value = "2" };
        Removexattr { path = "/f"; name = "user.a" };
        Truncate { path = "/f"; size = 100 };
        Fallocate { fd_var = 0; off = 10; len = 200; keep_size = false };
        Fallocate { fd_var = 0; off = 10; len = 900; keep_size = true };
        Close { fd_var = 0 };
      ] );
    ( "open-trunc-then-remove",
      [
        Creat { path = "/f"; fd_var = 0 };
        Write { fd_var = 0; data = d 10 };
        Close { fd_var = 0 };
        Open { path = "/f"; flags = [ Types.O_WRONLY; Types.O_TRUNC ]; fd_var = 1 };
        Pwrite { fd_var = 1; off = 5; data = d 11 };
        Close { fd_var = 1 };
        Remove { path = "/f" };
      ] );
  ]

let test_fixed () =
  List.iter (fun (name, calls) -> check_incremental name calls) fixed

let test_random_helpers () =
  for seed = 1 to 40 do
    let rng = Random.State.make [| 0xd16e57; seed |] in
    let calls = Helpers.random_workload ~rng ~len:30 in
    check_incremental (Printf.sprintf "helpers-seed-%d" seed) calls
  done

let test_random_fuzzer () =
  for seed = 1 to 25 do
    let rng = Random.State.make [| 0xf022; seed |] in
    let calls = Fuzz.Prog.generate rng ~max_len:20 in
    check_incremental (Printf.sprintf "fuzz-seed-%d" seed) calls
  done

let test_ace () =
  let slice s = List.of_seq (Seq.take 30 s) in
  List.iter
    (fun (name, calls) -> check_incremental ("ace-" ^ name) calls)
    (slice (Ace.seq1 Ace.Strong) @ slice (Ace.seq2 Ace.Strong))

(* --- collision regressions: every [equal_node] field must reach the
   digest, so phase trees differing only in that field key differently --- *)

let reg path content =
  {
    Walker.path;
    kind = Some Types.Reg;
    size = String.length content;
    nlink = 1;
    content = Some content;
    entries = None;
    xattrs = [];
    error = None;
  }

let test_collision_nodes () =
  let base = reg "/f" "abc" in
  let differs what n =
    if Walker.hash_node base = Walker.hash_node n then
      Alcotest.failf "node hash ignores %s" what;
    if Walker.digest [ base ] = Walker.digest [ n ] then
      Alcotest.failf "tree digest ignores %s" what
  in
  differs "xattrs" { base with xattrs = [ ("user.a", "1") ] };
  differs "nlink" { base with nlink = 2 };
  differs "error" { base with error = Some "stat: EIO" };
  differs "path" { base with path = "/g" };
  differs "content" { base with content = Some "abd" }

(* End-to-end: two workloads whose final trees differ only in xattr values
   (identical call text at the compared phase) digest differently. *)
let test_collision_xattr_phase () =
  let w v =
    [
      Syscall.Creat { path = "/f"; fd_var = 0 };
      Syscall.Close { fd_var = 0 };
      Syscall.Setxattr { path = "/f"; name = "user.k"; value = v };
      Syscall.Mkdir { path = "/d" };
    ]
  in
  let wa = w "1" and wb = w "2" in
  let oa = Oracle.run wa and ob = Oracle.run wb in
  let texts w = Array.of_list (List.map Syscall.to_string w) in
  (* The phase After 3 keys on the identical "mkdir /d" text plus the post
     tree, which differs only in the xattr value. *)
  Alcotest.(check string)
    "compared call text identical" (texts wa).(3) (texts wb).(3);
  if
    Vcache.phase_digest oa ~calls:(texts wa) (Checker.After 3)
    = Vcache.phase_digest ob ~calls:(texts wb) (Checker.After 3)
  then Alcotest.fail "phase digest ignores xattr-only tree difference"

(* Two workloads converging on trees identical except for nlink: one file
   hard-linked twice vs two files with the same content. *)
let test_collision_nlink_phase () =
  let wa =
    [
      Syscall.Creat { path = "/f"; fd_var = 0 };
      Syscall.Write { fd_var = 0; data = d 20 };
      Syscall.Close { fd_var = 0 };
      Syscall.Link { src = "/f"; dst = "/g" };
    ]
  and wb =
    [
      Syscall.Creat { path = "/f"; fd_var = 0 };
      Syscall.Write { fd_var = 0; data = d 20 };
      Syscall.Close { fd_var = 0 };
      Syscall.Creat { path = "/g"; fd_var = 1 };
      Syscall.Write { fd_var = 1; data = d 20 };
      Syscall.Close { fd_var = 1 };
    ]
  in
  let oa = Oracle.run wa and ob = Oracle.run wb in
  let fa = Oracle.final oa and fb = Oracle.final ob in
  let content t p = Option.bind (Walker.find t p) (fun n -> n.Walker.content) in
  Alcotest.(check bool)
    "same content at /f and /g" true
    (content fa "/f" = content fb "/f" && content fa "/g" = content fb "/g");
  if Oracle.digest oa (Oracle.n_calls oa) = Oracle.digest ob (Oracle.n_calls ob)
  then Alcotest.fail "tree digest ignores nlink-only difference"

(* --- serialization-mode keys pinned against the historical rendering
   (whole-tree serialization + per-call List.nth_opt lookup, MD5) --- *)

let old_phase_digest oracle ~workload (phase : Checker.phase) =
  let buf = Buffer.create 512 in
  let add_tree buf tree =
    List.iter
      (fun (n : Walker.node) ->
        Buffer.add_string buf n.path;
        Buffer.add_char buf '\001';
        Buffer.add_string buf
          (match n.kind with None -> "?" | Some k -> Types.kind_to_string k);
        Buffer.add_string buf (string_of_int n.size);
        Buffer.add_char buf '|';
        Buffer.add_string buf (string_of_int n.nlink);
        (match n.content with
        | None -> Buffer.add_char buf '\002'
        | Some c ->
          Buffer.add_char buf '=';
          Buffer.add_string buf c);
        (match n.entries with
        | None -> Buffer.add_char buf '\003'
        | Some es ->
          List.iter
            (fun e ->
              Buffer.add_char buf ';';
              Buffer.add_string buf e)
            es);
        List.iter
          (fun (k, v) ->
            Buffer.add_char buf '\004';
            Buffer.add_string buf k;
            Buffer.add_char buf '=';
            Buffer.add_string buf v)
          n.xattrs;
        (match n.error with
        | None -> ()
        | Some e ->
          Buffer.add_char buf '!';
          Buffer.add_string buf e);
        Buffer.add_char buf '\n')
      tree
  in
  let add_call buf workload i =
    Buffer.add_string buf
      (match List.nth_opt workload i with
      | Some c -> Syscall.to_string c
      | None -> "?");
    Buffer.add_char buf '\n'
  in
  (match phase with
  | Checker.Initial ->
    Buffer.add_string buf "I\n";
    add_tree buf (Oracle.pre oracle 0)
  | Checker.During i ->
    Buffer.add_string buf "D ";
    add_call buf workload i;
    add_tree buf (Oracle.pre oracle i);
    Buffer.add_string buf "--\n";
    add_tree buf (Oracle.post oracle i)
  | Checker.After i ->
    Buffer.add_string buf "A ";
    add_call buf workload i;
    (match Oracle.target oracle i with
    | None -> ()
    | Some p ->
      Buffer.add_string buf p;
      Buffer.add_char buf '\n');
    add_tree buf (Oracle.post oracle i));
  Digest.to_hex (Digest.string (Buffer.contents buf))

let test_serialized_pin () =
  List.iter
    (fun (name, calls) ->
      let o = Oracle.run calls in
      let texts = Array.of_list (List.map Syscall.to_string calls) in
      let phases =
        Checker.Initial
        :: List.concat
             (List.init (Oracle.n_calls o) (fun i ->
                  [ Checker.During i; Checker.After i ]))
      in
      List.iter
        (fun phase ->
          Alcotest.(check string)
            (name ^ ": serialized key matches historical rendering")
            (old_phase_digest o ~workload:calls phase)
            (Vcache.phase_digest_serialized o ~calls:texts phase))
        phases)
    fixed

let suite =
  [
    Alcotest.test_case "incremental==redigest: aliasing fixtures" `Quick test_fixed;
    Alcotest.test_case "incremental==redigest: random workloads" `Quick
      test_random_helpers;
    Alcotest.test_case "incremental==redigest: fuzzer programs" `Quick
      test_random_fuzzer;
    Alcotest.test_case "incremental==redigest: ace slices" `Quick test_ace;
    Alcotest.test_case "collisions: every equal_node field hashed" `Quick
      test_collision_nodes;
    Alcotest.test_case "collisions: xattr-only phase trees" `Quick
      test_collision_xattr_phase;
    Alcotest.test_case "collisions: nlink-only trees" `Quick
      test_collision_nlink_phase;
    Alcotest.test_case "serialized keys pinned to old rendering" `Quick
      test_serialized_pin;
  ]

(* Tests for the unified Chipmunk.Run execution API: budget cap
   interactions, the shared single-workload entry point, the campaign
   budget synonyms, and the sharded fuzzer's cross-job determinism
   contract (jobs=1 and jobs=N with the same seed report identical
   findings). *)

module Run = Chipmunk.Run

(* --- Run.budget / out_of_budget --- *)

let out b ?(execs = 0) ?(seconds = 0.0) ?(findings = 0) ?(workloads = 0) () =
  Run.out_of_budget b ~execs ~seconds ~findings ~workloads

let test_budget_unlimited () =
  Alcotest.(check bool) "unlimited never stops" false
    (out Run.unlimited ~execs:1_000_000 ~seconds:1e9 ~findings:1000 ~workloads:1_000_000 ())

let test_budget_findings_cap_before_exec_cap () =
  (* Both caps set; the findings cap is reached first. *)
  let b = Run.budget ~max_execs:100 ~stop_after_findings:2 () in
  Alcotest.(check bool) "under both caps" false (out b ~execs:50 ~findings:1 ());
  Alcotest.(check bool) "findings cap fires at 2" true (out b ~execs:50 ~findings:2 ());
  Alcotest.(check bool) "exec cap alone also fires" true (out b ~execs:100 ~findings:0 ())

let test_budget_exec_cap_before_findings_cap () =
  (* Same caps, reached in the other order. *)
  let b = Run.budget ~max_execs:100 ~stop_after_findings:2 () in
  Alcotest.(check bool) "exec cap fires first" true (out b ~execs:100 ~findings:1 ());
  Alcotest.(check bool) "execs past the cap still out" true (out b ~execs:150 ~findings:0 ())

let test_budget_seconds_and_workloads () =
  let b = Run.budget ~max_seconds:10.0 ~max_workloads:5 () in
  Alcotest.(check bool) "under" false (out b ~seconds:9.9 ~workloads:4 ());
  Alcotest.(check bool) "time cap" true (out b ~seconds:10.0 ~workloads:0 ());
  Alcotest.(check bool) "workload cap" true (out b ~seconds:0.0 ~workloads:5 ())

let test_exec_effective_jobs () =
  Alcotest.(check int) "explicit jobs" 3 (Run.effective_jobs (Run.exec ~jobs:3 ()));
  Alcotest.(check bool) "jobs=0 resolves to >= 1" true
    (Run.effective_jobs (Run.exec ~jobs:0 ()) >= 1);
  Alcotest.(check int) "default is one worker" 1 (Run.effective_jobs Run.default_exec)

(* --- Run.workload --- *)

let bug4_driver () =
  let bugs = { Novafs.Bugs.none with bug4_inplace_dentry_invalidate = true } in
  Novafs.driver ~config:(Novafs.config ~bugs ()) ()

let test_run_workload () =
  (* The shared entry point is Harness.test_workload with the exec record's
     opts/minimize applied. *)
  let b = List.find (fun (b : Catalog.t) -> b.Catalog.bug_no = 4) Catalog.all in
  let exec = Run.exec ~opts:{ Chipmunk.Harness.default_opts with cap = Some 2 } () in
  let r = Run.workload ~exec (b.Catalog.driver ()) b.Catalog.trigger in
  Alcotest.(check bool) "finds the catalogued bug" true (r.Chipmunk.Harness.reports <> []);
  let direct =
    Chipmunk.Harness.test_workload
      ~opts:{ Chipmunk.Harness.default_opts with cap = Some 2 }
      (b.Catalog.driver ()) b.Catalog.trigger
  in
  Alcotest.(check (list string))
    "identical to calling the harness directly"
    (List.map Chipmunk.Report.fingerprint direct.Chipmunk.Harness.reports)
    (List.map Chipmunk.Report.fingerprint r.Chipmunk.Harness.reports)

(* --- Campaign on the Run records --- *)

let test_campaign_max_execs_synonym () =
  (* For a campaign, one workload is one execution: max_execs bounds
     workloads_run exactly as max_workloads does, and the tighter of the
     two wins. *)
  let r =
    Chipmunk.Campaign.run
      ~budget:(Run.budget ~max_execs:7 ())
      (Novafs.driver ()) (Ace.seq2 Ace.Strong)
  in
  Alcotest.(check int) "max_execs bounds workloads" 7 r.Chipmunk.Campaign.workloads_run;
  let r =
    Chipmunk.Campaign.run
      ~budget:(Run.budget ~max_execs:20 ~max_workloads:6 ())
      (Novafs.driver ()) (Ace.seq2 Ace.Strong)
  in
  Alcotest.(check int) "tighter cap wins" 6 r.Chipmunk.Campaign.workloads_run

(* --- Fuzzer budget interactions --- *)

let test_fuzzer_exec_cap_exact () =
  (* 48 = 1.5 epochs: the second epoch must be truncated to the cap. *)
  let config =
    Fuzz.Fuzzer.config ~rng_seed:3 ~budget:(Run.budget ~max_execs:48 ()) ()
  in
  let r = Fuzz.Fuzzer.run ~config (Novafs.driver ()) in
  Alcotest.(check int) "exactly max_execs executions" 48 r.Fuzz.Fuzzer.execs

let test_fuzzer_findings_cap () =
  let config =
    Fuzz.Fuzzer.config ~rng_seed:11
      ~budget:(Run.budget ~max_execs:2000 ~stop_after_findings:1 ())
      ()
  in
  let r = Fuzz.Fuzzer.run ~config (bug4_driver ()) in
  Alcotest.(check int) "stops at one finding" 1 (List.length r.Fuzz.Fuzzer.events);
  Alcotest.(check bool) "did not use the whole exec budget" true (r.Fuzz.Fuzzer.execs < 2000)

(* --- Cross-job determinism (the tentpole contract) --- *)

let fuzz_at jobs =
  let config =
    Fuzz.Fuzzer.config ~rng_seed:11
      ~budget:(Run.budget ~max_execs:256 ())
      ~exec:(Run.exec ~opts:{ Chipmunk.Harness.default_opts with cap = Some 2 } ~jobs ())
      ()
  in
  Fuzz.Fuzzer.run ~config (bug4_driver ())

let event_key (e : Fuzz.Fuzzer.event) = (e.Fuzz.Fuzzer.fingerprint, e.Fuzz.Fuzzer.at_exec)

let test_fuzzer_jobs_deterministic () =
  let r1 = fuzz_at 1 in
  let r4 = fuzz_at 4 in
  Alcotest.(check bool) "found something" true (r1.Fuzz.Fuzzer.events <> []);
  Alcotest.(check (list (pair string int)))
    "identical fingerprints and at_exec attributions"
    (List.map event_key r1.Fuzz.Fuzzer.events)
    (List.map event_key r4.Fuzz.Fuzzer.events)
    ;
  Alcotest.(check int) "same exec count" r1.Fuzz.Fuzzer.execs r4.Fuzz.Fuzzer.execs;
  Alcotest.(check int) "same crash states" r1.Fuzz.Fuzzer.crash_states
    r4.Fuzz.Fuzzer.crash_states;
  Alcotest.(check int) "same coverage" r1.Fuzz.Fuzzer.coverage r4.Fuzz.Fuzzer.coverage;
  Alcotest.(check int) "same corpus" r1.Fuzz.Fuzzer.corpus_size r4.Fuzz.Fuzzer.corpus_size

let suite =
  [
    Alcotest.test_case "budget: unlimited never stops" `Quick test_budget_unlimited;
    Alcotest.test_case "budget: findings cap before exec cap" `Quick
      test_budget_findings_cap_before_exec_cap;
    Alcotest.test_case "budget: exec cap before findings cap" `Quick
      test_budget_exec_cap_before_findings_cap;
    Alcotest.test_case "budget: seconds and workload caps" `Quick
      test_budget_seconds_and_workloads;
    Alcotest.test_case "exec: effective_jobs resolution" `Quick test_exec_effective_jobs;
    Alcotest.test_case "workload: shared harness entry point" `Quick test_run_workload;
    Alcotest.test_case "campaign: max_execs is a workload synonym" `Quick
      test_campaign_max_execs_synonym;
    Alcotest.test_case "fuzzer: exec cap exact mid-epoch" `Quick test_fuzzer_exec_cap_exact;
    Alcotest.test_case "fuzzer: findings cap stops the campaign" `Quick
      test_fuzzer_findings_cap;
    Alcotest.test_case "fuzzer: jobs=1 == jobs=4 per seed" `Quick
      test_fuzzer_jobs_deterministic;
  ]

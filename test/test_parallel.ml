(* Tests for the performance layer: the domain pool, parallel campaigns
   being bit-identical to sequential ones, the crash-state dedup cache
   changing no detected report, and the read-set heuristic's cold-unit base
   (the fix for hot subsets being constructed on the wrong image). *)

module Campaign = Chipmunk.Campaign
module Harness = Chipmunk.Harness
module Pool = Chipmunk.Pool

(* --- Pool --- *)

let test_pool_map_ordered () =
  let inputs = List.init 100 Fun.id in
  let out = Pool.map ~jobs:4 (fun x -> x * x) (List.to_seq inputs) in
  Alcotest.(check int) "all tasks ran" 100 (List.length out);
  List.iteri
    (fun k (i, x, y) ->
      Alcotest.(check int) "index order" k i;
      Alcotest.(check int) "input preserved" k x;
      Alcotest.(check int) "output matches" (k * k) y)
    out

let test_pool_sequential_fallback () =
  let out = Pool.map ~jobs:1 (fun x -> x + 1) (List.to_seq [ 10; 20; 30 ]) in
  Alcotest.(check (list (pair int int)))
    "jobs=1 identical semantics"
    [ (0, 11); (1, 21); (2, 31) ]
    (List.map (fun (i, _, y) -> (i, y)) out)

let test_pool_stop_prefix () =
  (* Once [stop] flips, no new tasks dispatch; completed indices form a
     contiguous prefix. *)
  let stopped = ref false in
  let out =
    Pool.map ~jobs:3
      ~stop:(fun () -> !stopped)
      ~on_result:(fun i _ -> if i >= 5 then stopped := true)
      (fun x -> x)
      (Seq.init 1000 Fun.id)
  in
  let n = List.length out in
  Alcotest.(check bool) "stopped early" true (n < 1000);
  List.iteri (fun k (i, _, _) -> Alcotest.(check int) "contiguous prefix" k i) out

let test_pool_exception_propagates () =
  Alcotest.check_raises "worker exception re-raised" (Failure "boom") (fun () ->
      ignore
        (Pool.map ~jobs:2
           (fun x -> if x = 7 then failwith "boom" else x)
           (Seq.init 50 Fun.id)))

let test_pool_lazy_seq () =
  (* The sequence is forced at most once per element, even across domains. *)
  let forced = Atomic.make 0 in
  let seq =
    Seq.init 64 (fun i ->
        Atomic.incr forced;
        i)
  in
  let out = Pool.map ~jobs:4 (fun x -> x) seq in
  Alcotest.(check int) "every element seen" 64 (List.length out);
  Alcotest.(check int) "each element forced once" 64 (Atomic.get forced)

(* --- Parallel campaigns are deterministic --- *)

let catalog_suite () =
  Catalog.all
  |> List.map (fun (b : Catalog.t) ->
         (Printf.sprintf "bug-%02d-%s" b.Catalog.bug_no b.Catalog.fs, b.Catalog.trigger))
  |> List.to_seq

let nova_buggy () =
  match Catalog.buggy_driver "nova" with
  | Some mk -> mk ()
  | None -> Alcotest.fail "no buggy nova driver"

let event_key (e : Campaign.event) = (e.fingerprint, e.workload_index, e.workload_name)

let test_parallel_matches_sequential () =
  let driver = nova_buggy () in
  let seq_r = Campaign.run driver (catalog_suite ()) in
  let par_r =
    Campaign.run ~exec:(Chipmunk.Run.exec ~jobs:4 ()) driver (catalog_suite ())
  in
  Alcotest.(check bool) "found something" true (seq_r.Campaign.events <> []);
  Alcotest.(check (list (triple string int string)))
    "same fingerprints, workload indices and names, in discovery order"
    (List.map event_key seq_r.Campaign.events)
    (List.map event_key par_r.Campaign.events);
  Alcotest.(check int) "same workload count" seq_r.Campaign.workloads_run
    par_r.Campaign.workloads_run;
  Alcotest.(check int) "same crash states" seq_r.Campaign.crash_states
    par_r.Campaign.crash_states;
  Alcotest.(check int) "same crash points" seq_r.Campaign.crash_points
    par_r.Campaign.crash_points;
  Alcotest.(check int) "same dedup hits" seq_r.Campaign.dedup_hits par_r.Campaign.dedup_hits

let test_parallel_repeatable () =
  (* Two parallel runs with different job counts agree with each other. *)
  let driver = nova_buggy () in
  let r2 = Campaign.run ~exec:(Chipmunk.Run.exec ~jobs:2 ()) driver (catalog_suite ()) in
  let r4 = Campaign.run ~exec:(Chipmunk.Run.exec ~jobs:4 ()) driver (catalog_suite ()) in
  Alcotest.(check (list (triple string int string)))
    "jobs=2 and jobs=4 agree"
    (List.map event_key r2.Campaign.events)
    (List.map event_key r4.Campaign.events)

let test_keep_sizes () =
  let driver = nova_buggy () in
  let suite () = Seq.take 3 (catalog_suite ()) in
  let with_sizes = Campaign.run driver (suite ()) in
  let without =
    Campaign.run ~exec:(Chipmunk.Run.exec ~keep_sizes:false ()) driver (suite ())
  in
  Alcotest.(check bool) "sizes retained by default" true (with_sizes.Campaign.in_flight_sizes <> []);
  Alcotest.(check int)
    "one sample per crash point"
    with_sizes.Campaign.crash_points
    (List.length with_sizes.Campaign.in_flight_sizes);
  Alcotest.(check (list int)) "dropped on request" [] without.Campaign.in_flight_sizes

(* --- Crash-state dedup cache --- *)

let test_dedup_equivalent_reports () =
  let total_hits = ref 0 in
  List.iter
    (fun (b : Catalog.t) ->
      let run dedup =
        let opts = { Harness.default_opts with dedup_states = dedup } in
        Harness.test_workload ~opts (b.Catalog.driver ()) b.Catalog.trigger
      in
      let on = run true and off = run false in
      Alcotest.(check (list string))
        (Printf.sprintf "bug %d (%s): same reports with cache on and off" b.Catalog.bug_no
           b.Catalog.fs)
        (List.map Chipmunk.Report.fingerprint off.Harness.reports)
        (List.map Chipmunk.Report.fingerprint on.Harness.reports);
      Alcotest.(check int)
        "cache does not change the enumerated state count" off.Harness.stats.Harness.crash_states
        on.Harness.stats.Harness.crash_states;
      Alcotest.(check int) "cache off never skips" 0 off.Harness.stats.Harness.dedup_hits;
      total_hits := !total_hits + on.Harness.stats.Harness.dedup_hits)
    Catalog.all;
  Alcotest.(check bool)
    (Printf.sprintf "nonzero hit count over the catalog (%d hits)" !total_hits)
    true (!total_hits > 0)

let test_dedup_skips_equal_states () =
  (* A workload whose trailing stores rewrite bytes already on media: the
     subsets differing only in those no-op writes collapse to one image. *)
  let w =
    [
      Vfs.Syscall.Creat { path = "/a"; fd_var = 0 };
      Vfs.Syscall.Write { fd_var = 0; data = { seed = 5; len = 256 } };
      Vfs.Syscall.Close { fd_var = 0 };
    ]
  in
  let r = Harness.test_workload (Novafs.driver ()) w in
  Alcotest.(check bool) "clean workload" true (r.Harness.reports = []);
  Alcotest.(check bool)
    (Printf.sprintf "some duplicate crash states skipped (%d of %d)"
       r.Harness.stats.Harness.dedup_hits r.Harness.stats.Harness.crash_states)
    true
    (r.Harness.stats.Harness.dedup_hits > 0)

(* --- Effective delta (the dedup key) --- *)

let unit ~seq parts =
  { Chipmunk.Coalesce.seq; parts; kind = Persist.Trace.Nt; func = "memcpy_nt"; syscall = None }

let read_of_image img off len = Pmem.Image.read img ~off ~len

let test_effective_delta_drops_noop_writes () =
  let img = Pmem.Image.create ~size:256 in
  Pmem.Image.write_string img ~off:16 "hello";
  let units = [ unit ~seq:0 [ (16, "hello") ]; unit ~seq:1 [ (32, "world") ] ] in
  Alcotest.(check (list (pair int string)))
    "only the write that changes the image survives"
    [ (32, "world") ]
    (Chipmunk.Coalesce.effective_delta ~read:(read_of_image img) units)

let test_effective_delta_overlap_last_writer_wins () =
  let img = Pmem.Image.create ~size:256 in
  let units = [ unit ~seq:0 [ (10, "aaaa") ]; unit ~seq:1 [ (12, "bb") ] ] in
  Alcotest.(check bool) "units overlap" true (Chipmunk.Coalesce.overlapping units);
  Alcotest.(check (list (pair int string)))
    "byte-accurate replay of the overlap"
    [ (10, "aabb") ]
    (Chipmunk.Coalesce.effective_delta ~read:(read_of_image img) units);
  (* The overlapping pair and its net effect written directly must agree. *)
  Alcotest.(check string)
    "same key as the collapsed write"
    (Chipmunk.Coalesce.delta_key [ (10, "aabb") ])
    (Chipmunk.Coalesce.delta_key
       (Chipmunk.Coalesce.effective_delta ~read:(read_of_image img) units))

let test_effective_delta_empty_is_prefix () =
  let img = Pmem.Image.create ~size:64 in
  Pmem.Image.write_string img ~off:0 "same";
  let units = [ unit ~seq:0 [ (0, "same") ] ] in
  Alcotest.(check (list (pair int string)))
    "an all-no-op subset has the empty delta" []
    (Chipmunk.Coalesce.effective_delta ~read:(read_of_image img) units);
  Alcotest.(check string) "and the empty key"
    (Chipmunk.Coalesce.delta_key [])
    (Chipmunk.Coalesce.delta_key (Chipmunk.Coalesce.effective_delta ~read:(read_of_image img) units))

(* --- Read-set heuristic: cold units applied with the prefix --- *)

let test_read_set_cold_base_regression () =
  (* Before the cold-base fix, hot subsets were constructed on the bare
     prefix only, so damage in units recovery never reads (bug 3's log
     extension page) could never surface. With the fix every catalogued
     bug is found under the heuristic. *)
  let opts = { Harness.default_opts with read_set_heuristic = true } in
  List.iter
    (fun (b : Catalog.t) ->
      let r = Harness.test_workload ~opts (b.Catalog.driver ()) b.Catalog.trigger in
      Alcotest.(check bool)
        (Printf.sprintf "bug %d (%s) found under the read-set heuristic" b.Catalog.bug_no
           b.Catalog.fs)
        true (r.Harness.reports <> []))
    Catalog.all

let suite =
  [
    Alcotest.test_case "pool: map returns index order" `Quick test_pool_map_ordered;
    Alcotest.test_case "pool: jobs=1 sequential fallback" `Quick test_pool_sequential_fallback;
    Alcotest.test_case "pool: stop gives a contiguous prefix" `Quick test_pool_stop_prefix;
    Alcotest.test_case "pool: exceptions propagate" `Quick test_pool_exception_propagates;
    Alcotest.test_case "pool: sequence forced once per element" `Quick test_pool_lazy_seq;
    Alcotest.test_case "campaign: parallel == sequential" `Quick test_parallel_matches_sequential;
    Alcotest.test_case "campaign: parallel repeatable across job counts" `Quick
      test_parallel_repeatable;
    Alcotest.test_case "campaign: keep_sizes controls retention" `Quick test_keep_sizes;
    Alcotest.test_case "dedup cache: reports identical on/off" `Quick
      test_dedup_equivalent_reports;
    Alcotest.test_case "dedup cache: duplicate states skipped" `Quick
      test_dedup_skips_equal_states;
    Alcotest.test_case "effective delta: no-op writes dropped" `Quick
      test_effective_delta_drops_noop_writes;
    Alcotest.test_case "effective delta: overlaps replayed per byte" `Quick
      test_effective_delta_overlap_last_writer_wins;
    Alcotest.test_case "effective delta: empty delta is the prefix" `Quick
      test_effective_delta_empty_is_prefix;
    Alcotest.test_case "read-set heuristic: cold units applied with prefix" `Quick
      test_read_set_cold_base_regression;
  ]

(* Unit tests for the Chipmunk core pieces: coalescing, reports, the oracle
   and the campaign runner. *)

module Trace = Persist.Trace
module S = Vfs.Syscall

(* --- Coalesce --- *)

let store ~seq ~addr ~data ?(kind = Trace.Nt) ?(func = "memcpy_nt") () =
  { Trace.seq; addr; data; kind; func }

let add vec s ~syscall =
  Chipmunk.Coalesce.add ~coalesce:true ~data_threshold:64 vec s ~syscall

let test_coalesce_contiguous () =
  let vec = add [] (store ~seq:0 ~addr:100 ~data:"ab" ()) ~syscall:(Some 0) in
  let vec = add vec (store ~seq:1 ~addr:102 ~data:"cd" ()) ~syscall:(Some 0) in
  Alcotest.(check int) "fused" 1 (List.length vec);
  let u = List.hd vec in
  Alcotest.(check int) "bytes" 4 (Chipmunk.Coalesce.bytes u);
  Alcotest.(check (pair int int)) "span" (100, 104) (Chipmunk.Coalesce.span u)

let test_coalesce_not_across_syscalls () =
  let vec = add [] (store ~seq:0 ~addr:100 ~data:"ab" ()) ~syscall:(Some 0) in
  let vec = add vec (store ~seq:1 ~addr:102 ~data:"cd" ()) ~syscall:(Some 1) in
  Alcotest.(check int) "kept apart" 2 (List.length vec)

let test_coalesce_not_disjoint_small () =
  let vec = add [] (store ~seq:0 ~addr:100 ~data:"ab" ()) ~syscall:(Some 0) in
  let vec = add vec (store ~seq:1 ~addr:500 ~data:"cd" ()) ~syscall:(Some 0) in
  Alcotest.(check int) "disjoint small writes stay separate" 2 (List.length vec)

let test_coalesce_bulk_heuristic () =
  (* Two large non-adjacent nt stores from the same syscall (data pages of
     one file write) fuse under the bulk heuristic. *)
  let big = String.make 128 'x' in
  let vec = add [] (store ~seq:0 ~addr:1000 ~data:big ()) ~syscall:(Some 2) in
  let vec = add vec (store ~seq:1 ~addr:5000 ~data:big ()) ~syscall:(Some 2) in
  Alcotest.(check int) "bulk fused" 1 (List.length vec);
  Alcotest.(check int) "both parts" 2 (List.length (List.hd vec).Chipmunk.Coalesce.parts)

let test_coalesce_kind_mismatch () =
  let vec = add [] (store ~seq:0 ~addr:100 ~data:"ab" ()) ~syscall:(Some 0) in
  let vec =
    add vec (store ~seq:1 ~addr:102 ~data:"cd" ~kind:Trace.Flushed_line ~func:"flush_buffer" ())
      ~syscall:(Some 0)
  in
  Alcotest.(check int) "different kinds stay separate" 2 (List.length vec)

let test_coalesce_disabled () =
  let big = String.make 128 'x' in
  let vec =
    Chipmunk.Coalesce.add ~coalesce:false ~data_threshold:64 []
      (store ~seq:0 ~addr:1000 ~data:big ())
      ~syscall:(Some 0)
  in
  let vec =
    Chipmunk.Coalesce.add ~coalesce:false ~data_threshold:64 vec
      (store ~seq:1 ~addr:1128 ~data:big ())
      ~syscall:(Some 0)
  in
  Alcotest.(check int) "no fusion when disabled" 2 (List.length vec)

(* --- Report fingerprints --- *)

let mk_report ?(fs = "nova") ?(during = Some 1) kind =
  {
    Chipmunk.Report.fs;
    workload = [ S.Creat { path = "/x"; fd_var = 0 }; S.Rename { src = "/x"; dst = "/y" } ];
    crash_point =
      {
        Chipmunk.Report.fence_no = 3;
        during_syscall = during;
        after_syscall = Some 0;
        subset = [ 7 ];
        in_flight = 2;
      };
    kind;
  }

let test_fingerprint_stable_across_numbers () =
  let a = mk_report (Chipmunk.Report.Unmountable "bad tail 123") in
  let b = mk_report (Chipmunk.Report.Unmountable "bad tail 456") in
  Alcotest.(check string) "numbers normalized" (Chipmunk.Report.fingerprint a)
    (Chipmunk.Report.fingerprint b)

let test_fingerprint_distinguishes_kind () =
  let a = mk_report (Chipmunk.Report.Unmountable "x") in
  let b = mk_report (Chipmunk.Report.Unusable "x") in
  Alcotest.(check bool) "kinds differ" false
    (Chipmunk.Report.fingerprint a = Chipmunk.Report.fingerprint b)

let test_fingerprint_distinguishes_syscall () =
  let a = mk_report ~during:(Some 0) (Chipmunk.Report.Unmountable "x") in
  let b = mk_report ~during:(Some 1) (Chipmunk.Report.Unmountable "x") in
  Alcotest.(check bool) "creat vs rename context" false
    (Chipmunk.Report.fingerprint a = Chipmunk.Report.fingerprint b)

let test_report_render () =
  let r =
    mk_report (Chipmunk.Report.Atomicity { syscall = "rename /x /y"; diffs = [ "missing: /y" ] })
  in
  let text = Format.asprintf "%a" Chipmunk.Report.pp r in
  List.iter
    (fun needle ->
      if
        not
          (let n = String.length needle and m = String.length text in
           let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
           go 0)
      then Alcotest.failf "report misses %S:\n%s" needle text)
    [ "BUG REPORT"; "rename"; "missing: /y"; "fingerprint"; "workload" ]

(* --- Oracle --- *)

let test_oracle_trees () =
  let calls =
    [
      S.Mkdir { path = "/d" };
      S.Creat { path = "/d/f"; fd_var = 0 };
      S.Write { fd_var = 0; data = { seed = 3; len = 10 } };
      S.Close { fd_var = 0 };
    ]
  in
  let o = Chipmunk.Oracle.run calls in
  Alcotest.(check int) "call count" 4 (Chipmunk.Oracle.n_calls o);
  Alcotest.(check int) "initial tree is just root" 1 (List.length (Chipmunk.Oracle.pre o 0));
  Alcotest.(check int) "after mkdir" 2 (List.length (Chipmunk.Oracle.post o 0));
  Alcotest.(check int) "after creat" 3 (List.length (Chipmunk.Oracle.post o 1));
  Alcotest.(check bool) "post k = pre k+1" true
    (Vfs.Walker.equal (Chipmunk.Oracle.post o 0) (Chipmunk.Oracle.pre o 1));
  (match Vfs.Walker.find (Chipmunk.Oracle.final o) "/d/f" with
  | Some n -> Alcotest.(check int) "final size" 10 n.Vfs.Walker.size
  | None -> Alcotest.fail "file missing from final tree");
  Alcotest.(check int) "write ret" 10 (Chipmunk.Oracle.ret o 2)

let test_oracle_targets () =
  let calls =
    [
      S.Creat { path = "/f"; fd_var = 0 };
      S.Write { fd_var = 0; data = { seed = 1; len = 5 } };
      S.Rename { src = "/f"; dst = "/g" };
      S.Fsync { fd_var = 0 };
      S.Close { fd_var = 0 };
      S.Sync;
    ]
  in
  let o = Chipmunk.Oracle.run calls in
  Alcotest.(check (option string)) "write target" (Some "/f") (Chipmunk.Oracle.target o 1);
  Alcotest.(check (option string)) "fsync follows rename" (Some "/g")
    (Chipmunk.Oracle.target o 3);
  Alcotest.(check (option string)) "sync has no target" None (Chipmunk.Oracle.target o 5)

(* --- Campaign --- *)

let test_campaign_stop_after_findings () =
  let bugs = { Novafs.Bugs.none with bug4_inplace_dentry_invalidate = true } in
  let driver = Novafs.driver ~config:(Novafs.config ~bugs ()) () in
  let r =
    Chipmunk.Campaign.run
      ~budget:(Chipmunk.Run.budget ~stop_after_findings:1 ())
      driver (Ace.seq2 Ace.Strong)
  in
  Alcotest.(check int) "stopped at first" 1 (List.length r.Chipmunk.Campaign.events);
  Alcotest.(check bool) "did not run the whole suite" true
    (r.Chipmunk.Campaign.workloads_run < Ace.count (Ace.seq2 Ace.Strong))

let test_campaign_max_workloads () =
  let r =
    Chipmunk.Campaign.run
      ~budget:(Chipmunk.Run.budget ~max_workloads:10 ())
      (Novafs.driver ()) (Ace.seq2 Ace.Strong)
  in
  Alcotest.(check int) "bounded" 10 r.Chipmunk.Campaign.workloads_run;
  Alcotest.(check (list Alcotest.reject)) "clean" [] (List.map (fun _ -> ()) r.Chipmunk.Campaign.events)

let test_campaign_dedups_across_workloads () =
  let bugs = { Novafs.Bugs.none with bug2_unflushed_log_init = true } in
  let driver = Novafs.driver ~config:(Novafs.config ~bugs ()) () in
  let r =
    Chipmunk.Campaign.run
      ~budget:(Chipmunk.Run.budget ~max_workloads:30 ())
      driver (Ace.seq1 Ace.Strong)
  in
  let fps = List.map (fun e -> e.Chipmunk.Campaign.fingerprint) r.Chipmunk.Campaign.events in
  Alcotest.(check int) "fingerprints unique" (List.length fps)
    (List.length (List.sort_uniq compare fps))

let suite =
  [
    Alcotest.test_case "coalesce contiguous stores" `Quick test_coalesce_contiguous;
    Alcotest.test_case "no coalescing across syscalls" `Quick test_coalesce_not_across_syscalls;
    Alcotest.test_case "disjoint small writes separate" `Quick test_coalesce_not_disjoint_small;
    Alcotest.test_case "bulk-data heuristic" `Quick test_coalesce_bulk_heuristic;
    Alcotest.test_case "kind mismatch separates" `Quick test_coalesce_kind_mismatch;
    Alcotest.test_case "coalescing can be disabled" `Quick test_coalesce_disabled;
    Alcotest.test_case "fingerprint normalizes numbers" `Quick test_fingerprint_stable_across_numbers;
    Alcotest.test_case "fingerprint keyed by kind" `Quick test_fingerprint_distinguishes_kind;
    Alcotest.test_case "fingerprint keyed by syscall" `Quick test_fingerprint_distinguishes_syscall;
    Alcotest.test_case "report rendering" `Quick test_report_render;
    Alcotest.test_case "oracle tree snapshots" `Quick test_oracle_trees;
    Alcotest.test_case "oracle fd targets follow renames" `Quick test_oracle_targets;
    Alcotest.test_case "campaign stops after findings" `Quick test_campaign_stop_after_findings;
    Alcotest.test_case "campaign workload bound" `Quick test_campaign_max_workloads;
    Alcotest.test_case "campaign dedup" `Quick test_campaign_dedups_across_workloads;
  ]

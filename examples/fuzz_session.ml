(* Gray-box fuzzing session: the Syzkaller-style front end explores long,
   irregular workloads guided by coverage points in the file system code,
   then triages the flood of reports into clusters — the paper's
   "thorough, long-running testing" mode.

   Run with:  dune exec examples/fuzz_session.exe *)

let () =
  let fs = "winefs" in
  let driver = (Option.get (Catalog.buggy_driver fs)) () in
  Printf.printf "fuzzing %s with its catalogued bugs armed...\n%!" fs;
  let config =
    Fuzz.Fuzzer.config ~rng_seed:2024
      ~budget:(Chipmunk.Run.budget ~max_execs:1500 ~max_seconds:30.0 ())
      ()
  in
  let r = Fuzz.Fuzzer.run ~config driver in
  Printf.printf "executions:     %d\n" r.Fuzz.Fuzzer.execs;
  Printf.printf "crash states:   %d\n" r.Fuzz.Fuzzer.crash_states;
  Printf.printf "coverage:       %d points\n" r.Fuzz.Fuzzer.coverage;
  Printf.printf "seed corpus:    %d programs\n" r.Fuzz.Fuzzer.corpus_size;
  Printf.printf "unique reports: %d\n" (List.length r.Fuzz.Fuzzer.events);
  Printf.printf "elapsed:        %.2fs\n\n" r.Fuzz.Fuzzer.elapsed;

  (* The triage dashboard: lexical clustering folds near-duplicate reports
     (many crash states of the same root cause) into one line each. *)
  Printf.printf "triage dashboard (%d clusters):\n" (List.length r.Fuzz.Fuzzer.clusters);
  List.iteri
    (fun i (c : Fuzz.Triage.cluster) ->
      Printf.printf "  #%d  x%-4d %s\n" i (List.length c.Fuzz.Triage.members)
        (Chipmunk.Report.summary c.Fuzz.Triage.representative))
    r.Fuzz.Fuzzer.clusters;

  (* Each finding comes with the workload that triggered it, ready to be
     replayed as a regression test. *)
  match r.Fuzz.Fuzzer.events with
  | [] -> print_endline "\nno findings (unexpected for a buggy file system)"
  | e :: _ ->
    Printf.printf "\nfirst finding (at execution %d, %.2fs in):\n" e.Fuzz.Fuzzer.at_exec
      e.Fuzz.Fuzzer.elapsed;
    Format.printf "%a" Chipmunk.Report.pp e.Fuzz.Fuzzer.report
